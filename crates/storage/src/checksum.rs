//! CRC-32 (IEEE 802.3) checksums for durable artifacts.
//!
//! Every durable byte this crate writes — WAL records, checkpoint bodies and
//! data pages — carries a CRC-32 so that torn or bit-flipped artifacts are
//! *detected* at read time instead of silently mis-mining.  The polynomial is
//! the ubiquitous reflected IEEE one (`0xEDB88320`), table-driven, byte at a
//! time: plenty fast for page-sized inputs and entirely dependency-free.

/// The 256-entry lookup table for the reflected IEEE polynomial, built at
/// compile time so the checksum has zero runtime setup cost.
const CRC32_TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32 state for checksumming data that arrives in pieces
/// (e.g. a checkpoint body streamed out field by field).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finishes the checksum and returns the digest.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut inc = Crc32::new();
        inc.update(&data[..10]);
        inc.update(&data[10..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data = vec![0u8; 4096];
        data[17] = 0x42;
        let clean = crc32(&data);
        data[17] ^= 0x01;
        assert_ne!(clean, crc32(&data));
    }
}
