//! A minimal fixed-size-page file, the unit of on-disk storage.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use fsm_types::{FsmError, Result};

use crate::checksum::{crc32, Crc32};

/// A file divided into fixed-size pages, addressed by page index.
///
/// This is intentionally the simplest storage engine that exhibits the I/O
/// pattern the paper's disk-resident structures rely on: sequential appends
/// while a batch streams in, and sequential scans while mining.  Pages are
/// written and read whole; short writes are zero-padded to the page size.
///
/// # Integrity and durability
///
/// Every page write also records a CRC-32 of the (padded) page in a sidecar
/// file `<path>.crc` (4 bytes per page, same index order).  Reads verify the
/// checksum and fail with [`FsmError::CorruptArtifact`] on mismatch, so a torn
/// or bit-flipped page is detected instead of silently mis-mined.  The sidecar
/// — rather than a per-page trailer — keeps the full page size available as
/// payload, so none of the chunked-row arithmetic layered on top changes.
///
/// Writes are buffered by the operating system until [`PagedFile::sync_all`]
/// is called; callers that need durability (the WAL/checkpoint machinery) must
/// sync explicitly and can audit that they did via [`PagedFile::fsyncs`].
#[derive(Debug)]
pub struct PagedFile {
    file: File,
    checksums: File,
    path: PathBuf,
    page_size: usize,
    num_pages: usize,
    bytes_written: u64,
    bytes_read: u64,
    fsyncs: u64,
    zero_page_crc: u32,
}

impl PagedFile {
    /// Default page size (4 KiB) used by the disk-backed structures.
    pub const DEFAULT_PAGE_SIZE: usize = 4096;

    /// Creates a paged file at `path`, erroring if the path already exists.
    ///
    /// Refusing to clobber an existing file is a durability guard: silently
    /// truncating would destroy pages a previous (possibly crashed) process
    /// wrote.  Callers that genuinely want to reuse a path must either remove
    /// the file first or opt in via [`PagedFile::create_overwrite`].
    pub fn create(path: impl AsRef<Path>, page_size: usize) -> Result<Self> {
        Self::create_inner(path.as_ref(), page_size, false)
    }

    /// Creates a paged file at `path`, explicitly truncating any existing
    /// file (and its checksum sidecar).
    pub fn create_overwrite(path: impl AsRef<Path>, page_size: usize) -> Result<Self> {
        Self::create_inner(path.as_ref(), page_size, true)
    }

    fn create_inner(path: &Path, page_size: usize, overwrite: bool) -> Result<Self> {
        if page_size == 0 {
            return Err(FsmError::config("page size must be non-zero"));
        }
        let path = path.to_path_buf();
        let mut options = OpenOptions::new();
        options.read(true).write(true);
        if overwrite {
            options.create(true).truncate(true);
        } else {
            options.create_new(true);
        }
        let file = options
            .open(&path)
            .map_err(|err| annotate(err, "create paged file", &path))?;
        let sidecar = Self::checksum_path(&path);
        // The sidecar is always truncated: with `create_new` semantics the
        // data file is fresh, so any sidecar lying around is stale.
        let checksums = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&sidecar)
            .map_err(|err| annotate(err, "create checksum sidecar", &sidecar))?;
        Ok(Self {
            file,
            checksums,
            path,
            page_size,
            num_pages: 0,
            bytes_written: 0,
            bytes_read: 0,
            fsyncs: 0,
            zero_page_crc: crc32(&vec![0u8; page_size]),
        })
    }

    /// Opens an existing paged file (and its checksum sidecar) for recovery.
    ///
    /// The page count is derived from the file length, which must be an exact
    /// multiple of `page_size`; the sidecar must hold exactly one checksum per
    /// page.  Page contents are *not* verified here — verification happens on
    /// read, or eagerly via [`PagedFile::verify_all_pages`].
    pub fn open_existing(path: impl AsRef<Path>, page_size: usize) -> Result<Self> {
        if page_size == 0 {
            return Err(FsmError::config("page size must be non-zero"));
        }
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|err| annotate(err, "open paged file", &path))?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(FsmError::corrupt_artifact(
                artifact_name(&path),
                format!("length {len} is not a multiple of the page size {page_size}"),
            ));
        }
        let num_pages = (len / page_size as u64) as usize;
        let sidecar = Self::checksum_path(&path);
        let checksums = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&sidecar)
            .map_err(|err| annotate(err, "open checksum sidecar", &sidecar))?;
        let sidecar_len = checksums.metadata()?.len();
        if sidecar_len != num_pages as u64 * 4 {
            return Err(FsmError::corrupt_artifact(
                artifact_name(&sidecar),
                format!(
                    "sidecar holds {sidecar_len} bytes but {num_pages} pages need {}",
                    num_pages as u64 * 4
                ),
            ));
        }
        Ok(Self {
            file,
            checksums,
            path,
            page_size,
            num_pages,
            bytes_written: 0,
            bytes_read: 0,
            fsyncs: 0,
            zero_page_crc: crc32(&vec![0u8; page_size]),
        })
    }

    /// Path of the checksum sidecar accompanying a paged file at `path`.
    pub fn checksum_path(path: &Path) -> PathBuf {
        let mut name = path.as_os_str().to_os_string();
        name.push(".crc");
        PathBuf::from(name)
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages written so far.
    #[inline]
    pub fn num_pages(&self) -> usize {
        self.num_pages
    }

    /// Total payload bytes handed to the operating system so far.
    ///
    /// Counts data pages only; the 4-byte sidecar checksums are bookkeeping,
    /// not payload, and are excluded so the counter keeps matching
    /// [`PagedFile::on_disk_bytes`].
    #[inline]
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total bytes read back so far.
    #[inline]
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Number of `fsync` system calls issued via [`PagedFile::sync_all`].
    #[inline]
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// On-disk footprint in bytes (pages × page size).
    pub fn on_disk_bytes(&self) -> u64 {
        // Widen before multiplying: the product can exceed `usize` on 32-bit
        // targets long before either factor does.
        self.num_pages as u64 * self.page_size as u64
    }

    /// Appends `data` as a new page and returns its index.
    ///
    /// `data` must not exceed the page size; shorter payloads are zero padded.
    pub fn append_page(&mut self, data: &[u8]) -> Result<usize> {
        self.write_page(self.num_pages, data)
    }

    /// Writes `data` at page `index`, extending the file if needed.
    ///
    /// Writing past the current end materialises the intervening pages as
    /// explicit zero pages: they are handed to the operating system and
    /// counted in [`PagedFile::bytes_written`] like any other page, so
    /// [`PagedFile::on_disk_bytes`] and the write counter can never drift
    /// apart (a sparse seek would create hole pages the counter never saw,
    /// reading back as zeros indistinguishable from real data).
    pub fn write_page(&mut self, index: usize, data: &[u8]) -> Result<usize> {
        if data.len() > self.page_size {
            return Err(FsmError::config(format!(
                "payload of {} bytes exceeds page size {}",
                data.len(),
                self.page_size
            )));
        }
        if index > self.num_pages {
            let zeros = vec![0u8; self.page_size];
            self.file.seek(SeekFrom::Start(
                self.num_pages as u64 * self.page_size as u64,
            ))?;
            while self.num_pages < index {
                self.file.write_all(&zeros)?;
                self.write_checksum(self.num_pages, self.zero_page_crc)?;
                self.bytes_written += self.page_size as u64;
                self.num_pages += 1;
            }
        }
        let offset = index as u64 * self.page_size as u64;
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(data)?;
        let mut crc = Crc32::new();
        crc.update(data);
        if data.len() < self.page_size {
            let padding = vec![0u8; self.page_size - data.len()];
            self.file.write_all(&padding)?;
            crc.update(&padding);
        }
        self.write_checksum(index, crc.finish())?;
        self.bytes_written += self.page_size as u64;
        self.num_pages = self.num_pages.max(index + 1);
        Ok(index)
    }

    fn write_checksum(&mut self, index: usize, crc: u32) -> Result<()> {
        self.checksums.seek(SeekFrom::Start(index as u64 * 4))?;
        self.checksums.write_all(&crc.to_le_bytes())?;
        Ok(())
    }

    /// Reads page `index` into a fresh buffer of page size, verifying its
    /// checksum against the sidecar.
    pub fn read_page(&mut self, index: usize) -> Result<Vec<u8>> {
        if index >= self.num_pages {
            return Err(FsmError::corrupt(format!(
                "page {index} out of range (file has {} pages)",
                self.num_pages
            )));
        }
        let offset = index as u64 * self.page_size as u64;
        self.file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; self.page_size];
        self.file.read_exact(&mut buf)?;
        self.bytes_read += self.page_size as u64;
        self.checksums.seek(SeekFrom::Start(index as u64 * 4))?;
        let mut stored = [0u8; 4];
        self.checksums.read_exact(&mut stored)?;
        let expected = u32::from_le_bytes(stored);
        let actual = crc32(&buf);
        if actual != expected {
            return Err(FsmError::corrupt_artifact(
                format!("page {index} of {}", artifact_name(&self.path)),
                format!("checksum mismatch (stored {expected:#010x}, computed {actual:#010x})"),
            ));
        }
        Ok(buf)
    }

    /// Reads every page once, verifying all checksums.
    ///
    /// Used by recovery to validate a checkpoint-referenced file before
    /// trusting it; the error names the first bad page.
    pub fn verify_all_pages(&mut self) -> Result<()> {
        for index in 0..self.num_pages {
            self.read_page(index)?;
        }
        Ok(())
    }

    /// Truncates the file (and its checksum sidecar) back to zero pages
    /// (used on window rebuilds).
    pub fn clear(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.checksums.set_len(0)?;
        self.num_pages = 0;
        Ok(())
    }

    /// Flushes buffered writes to the operating system.
    ///
    /// This hands the bytes to the kernel but does **not** force them to
    /// stable storage — use [`PagedFile::sync_all`] for durability.
    pub fn sync(&mut self) -> Result<()> {
        self.file.flush()?;
        Ok(())
    }

    /// Forces all written pages and checksums to stable storage (`fsync` on
    /// the data file and the sidecar), counting each system call in
    /// [`PagedFile::fsyncs`].
    pub fn sync_all(&mut self) -> Result<()> {
        self.file.sync_all()?;
        self.fsyncs += 1;
        self.checksums.sync_all()?;
        self.fsyncs += 1;
        Ok(())
    }
}

/// Last path component, used to name artifacts in corruption errors.
pub(crate) fn artifact_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// Wraps an I/O error with the operation and path that failed, so disk-path
/// failures surface as actionable messages instead of bare `os error` codes.
pub(crate) fn annotate(err: std::io::Error, op: &str, path: &Path) -> FsmError {
    FsmError::Io(std::io::Error::new(
        err.kind(),
        format!("{op} {}: {err}", path.display()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp::TempDir;

    #[test]
    fn append_and_read_roundtrip() {
        let dir = TempDir::new("paged").unwrap();
        let mut pf = PagedFile::create(dir.file("pages.bin"), 64).unwrap();
        let first = pf.append_page(b"hello").unwrap();
        let second = pf.append_page(&[7u8; 64]).unwrap();
        assert_eq!((first, second), (0, 1));
        assert_eq!(pf.num_pages(), 2);

        let page = pf.read_page(0).unwrap();
        assert_eq!(&page[..5], b"hello");
        assert!(page[5..].iter().all(|&b| b == 0), "short pages are padded");
        assert_eq!(pf.read_page(1).unwrap(), vec![7u8; 64]);
        assert_eq!(pf.on_disk_bytes(), 128);
        assert_eq!(pf.bytes_written(), 128);
        assert_eq!(pf.bytes_read(), 128);
    }

    #[test]
    fn overwrite_existing_page() {
        let dir = TempDir::new("paged").unwrap();
        let mut pf = PagedFile::create(dir.file("pages.bin"), 32).unwrap();
        pf.append_page(b"old").unwrap();
        pf.write_page(0, b"new").unwrap();
        assert_eq!(&pf.read_page(0).unwrap()[..3], b"new");
        assert_eq!(pf.num_pages(), 1);
    }

    #[test]
    fn sparse_write_extends_page_count() {
        let dir = TempDir::new("paged").unwrap();
        let mut pf = PagedFile::create(dir.file("pages.bin"), 16).unwrap();
        pf.write_page(3, b"x").unwrap();
        assert_eq!(pf.num_pages(), 4);
        // The gap pages are materialised and accounted, not silent holes:
        // every byte on_disk_bytes() reports went through bytes_written.
        assert_eq!(pf.bytes_written(), 64);
        assert_eq!(pf.on_disk_bytes(), 64);
        for page in 0..3 {
            assert_eq!(pf.read_page(page).unwrap(), vec![0u8; 16]);
        }
        assert_eq!(&pf.read_page(3).unwrap()[..1], b"x");
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let dir = TempDir::new("paged").unwrap();
        let mut pf = PagedFile::create(dir.file("pages.bin"), 8).unwrap();
        assert!(pf.append_page(&[0u8; 9]).is_err());
    }

    #[test]
    fn out_of_range_read_is_an_error() {
        let dir = TempDir::new("paged").unwrap();
        let mut pf = PagedFile::create(dir.file("pages.bin"), 8).unwrap();
        assert!(pf.read_page(0).is_err());
    }

    #[test]
    fn zero_page_size_is_rejected() {
        let dir = TempDir::new("paged").unwrap();
        assert!(PagedFile::create(dir.file("pages.bin"), 0).is_err());
    }

    #[test]
    fn clear_resets_pages() {
        let dir = TempDir::new("paged").unwrap();
        let mut pf = PagedFile::create(dir.file("pages.bin"), 8).unwrap();
        pf.append_page(b"abc").unwrap();
        pf.clear().unwrap();
        assert_eq!(pf.num_pages(), 0);
        assert!(pf.read_page(0).is_err());
        pf.sync().unwrap();
    }

    #[test]
    fn create_refuses_existing_path() {
        let dir = TempDir::new("paged").unwrap();
        let path = dir.file("pages.bin");
        let pf = PagedFile::create(&path, 8).unwrap();
        drop(pf);
        let err = PagedFile::create(&path, 8).unwrap_err();
        assert!(err.to_string().contains("create paged file"));
        // Explicit truncation is still available.
        let pf = PagedFile::create_overwrite(&path, 8).unwrap();
        assert_eq!(pf.num_pages(), 0);
    }

    #[test]
    fn sync_all_counts_fsyncs() {
        let dir = TempDir::new("paged").unwrap();
        let mut pf = PagedFile::create(dir.file("pages.bin"), 8).unwrap();
        pf.append_page(b"abc").unwrap();
        assert_eq!(pf.fsyncs(), 0);
        pf.sync_all().unwrap();
        assert_eq!(pf.fsyncs(), 2, "data file + sidecar");
    }

    #[test]
    fn open_existing_roundtrip() {
        let dir = TempDir::new("paged").unwrap();
        let path = dir.file("pages.bin");
        {
            let mut pf = PagedFile::create(&path, 16).unwrap();
            pf.append_page(b"alpha").unwrap();
            pf.append_page(b"beta").unwrap();
            pf.sync_all().unwrap();
        }
        let mut pf = PagedFile::open_existing(&path, 16).unwrap();
        assert_eq!(pf.num_pages(), 2);
        assert_eq!(&pf.read_page(0).unwrap()[..5], b"alpha");
        assert_eq!(&pf.read_page(1).unwrap()[..4], b"beta");
        pf.verify_all_pages().unwrap();
    }

    #[test]
    fn open_existing_rejects_ragged_length() {
        let dir = TempDir::new("paged").unwrap();
        let path = dir.file("pages.bin");
        {
            let mut pf = PagedFile::create(&path, 16).unwrap();
            pf.append_page(b"alpha").unwrap();
        }
        // Tear the tail of the data file: no longer a page multiple.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(9).unwrap();
        let err = PagedFile::open_existing(&path, 16).unwrap_err();
        assert!(
            err.to_string().contains("not a multiple"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn bit_flip_is_detected_on_read() {
        let dir = TempDir::new("paged").unwrap();
        let path = dir.file("pages.bin");
        {
            let mut pf = PagedFile::create(&path, 16).unwrap();
            pf.append_page(b"alpha").unwrap();
            pf.append_page(b"beta").unwrap();
            pf.sync_all().unwrap();
        }
        // Flip one bit in page 1.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[16] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();

        let mut pf = PagedFile::open_existing(&path, 16).unwrap();
        assert!(pf.read_page(0).is_ok(), "page 0 is untouched");
        let err = pf.read_page(1).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("page 1 of pages.bin") && msg.contains("checksum mismatch"),
            "error must name the bad artifact: {msg}"
        );
        assert!(pf.verify_all_pages().is_err());
    }
}
