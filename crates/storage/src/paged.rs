//! A minimal fixed-size-page file, the unit of on-disk storage.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use fsm_types::{FsmError, Result};

/// A file divided into fixed-size pages, addressed by page index.
///
/// This is intentionally the simplest storage engine that exhibits the I/O
/// pattern the paper's disk-resident structures rely on: sequential appends
/// while a batch streams in, and sequential scans while mining.  Pages are
/// written and read whole; short writes are zero-padded to the page size.
#[derive(Debug)]
pub struct PagedFile {
    file: File,
    path: PathBuf,
    page_size: usize,
    num_pages: usize,
    bytes_written: u64,
    bytes_read: u64,
}

impl PagedFile {
    /// Default page size (4 KiB) used by the disk-backed structures.
    pub const DEFAULT_PAGE_SIZE: usize = 4096;

    /// Creates (truncating) a paged file at `path`.
    pub fn create(path: impl AsRef<Path>, page_size: usize) -> Result<Self> {
        if page_size == 0 {
            return Err(FsmError::config("page size must be non-zero"));
        }
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(Self {
            file,
            path,
            page_size,
            num_pages: 0,
            bytes_written: 0,
            bytes_read: 0,
        })
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages written so far.
    #[inline]
    pub fn num_pages(&self) -> usize {
        self.num_pages
    }

    /// Total bytes handed to the operating system so far.
    #[inline]
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total bytes read back so far.
    #[inline]
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// On-disk footprint in bytes (pages × page size).
    pub fn on_disk_bytes(&self) -> u64 {
        // Widen before multiplying: the product can exceed `usize` on 32-bit
        // targets long before either factor does.
        self.num_pages as u64 * self.page_size as u64
    }

    /// Appends `data` as a new page and returns its index.
    ///
    /// `data` must not exceed the page size; shorter payloads are zero padded.
    pub fn append_page(&mut self, data: &[u8]) -> Result<usize> {
        self.write_page(self.num_pages, data)
    }

    /// Writes `data` at page `index`, extending the file if needed.
    ///
    /// Writing past the current end materialises the intervening pages as
    /// explicit zero pages: they are handed to the operating system and
    /// counted in [`PagedFile::bytes_written`] like any other page, so
    /// [`PagedFile::on_disk_bytes`] and the write counter can never drift
    /// apart (a sparse seek would create hole pages the counter never saw,
    /// reading back as zeros indistinguishable from real data).
    pub fn write_page(&mut self, index: usize, data: &[u8]) -> Result<usize> {
        if data.len() > self.page_size {
            return Err(FsmError::config(format!(
                "payload of {} bytes exceeds page size {}",
                data.len(),
                self.page_size
            )));
        }
        if index > self.num_pages {
            let zeros = vec![0u8; self.page_size];
            self.file.seek(SeekFrom::Start(
                self.num_pages as u64 * self.page_size as u64,
            ))?;
            while self.num_pages < index {
                self.file.write_all(&zeros)?;
                self.bytes_written += self.page_size as u64;
                self.num_pages += 1;
            }
        }
        let offset = index as u64 * self.page_size as u64;
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(data)?;
        if data.len() < self.page_size {
            let padding = vec![0u8; self.page_size - data.len()];
            self.file.write_all(&padding)?;
        }
        self.bytes_written += self.page_size as u64;
        self.num_pages = self.num_pages.max(index + 1);
        Ok(index)
    }

    /// Reads page `index` into a fresh buffer of page size.
    pub fn read_page(&mut self, index: usize) -> Result<Vec<u8>> {
        if index >= self.num_pages {
            return Err(FsmError::corrupt(format!(
                "page {index} out of range (file has {} pages)",
                self.num_pages
            )));
        }
        let offset = index as u64 * self.page_size as u64;
        self.file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; self.page_size];
        self.file.read_exact(&mut buf)?;
        self.bytes_read += self.page_size as u64;
        Ok(buf)
    }

    /// Truncates the file back to zero pages (used on window rebuilds).
    pub fn clear(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.num_pages = 0;
        Ok(())
    }

    /// Flushes buffered writes to the operating system.
    pub fn sync(&mut self) -> Result<()> {
        self.file.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp::TempDir;

    #[test]
    fn append_and_read_roundtrip() {
        let dir = TempDir::new("paged").unwrap();
        let mut pf = PagedFile::create(dir.file("pages.bin"), 64).unwrap();
        let first = pf.append_page(b"hello").unwrap();
        let second = pf.append_page(&[7u8; 64]).unwrap();
        assert_eq!((first, second), (0, 1));
        assert_eq!(pf.num_pages(), 2);

        let page = pf.read_page(0).unwrap();
        assert_eq!(&page[..5], b"hello");
        assert!(page[5..].iter().all(|&b| b == 0), "short pages are padded");
        assert_eq!(pf.read_page(1).unwrap(), vec![7u8; 64]);
        assert_eq!(pf.on_disk_bytes(), 128);
        assert_eq!(pf.bytes_written(), 128);
        assert_eq!(pf.bytes_read(), 128);
    }

    #[test]
    fn overwrite_existing_page() {
        let dir = TempDir::new("paged").unwrap();
        let mut pf = PagedFile::create(dir.file("pages.bin"), 32).unwrap();
        pf.append_page(b"old").unwrap();
        pf.write_page(0, b"new").unwrap();
        assert_eq!(&pf.read_page(0).unwrap()[..3], b"new");
        assert_eq!(pf.num_pages(), 1);
    }

    #[test]
    fn sparse_write_extends_page_count() {
        let dir = TempDir::new("paged").unwrap();
        let mut pf = PagedFile::create(dir.file("pages.bin"), 16).unwrap();
        pf.write_page(3, b"x").unwrap();
        assert_eq!(pf.num_pages(), 4);
        // The gap pages are materialised and accounted, not silent holes:
        // every byte on_disk_bytes() reports went through bytes_written.
        assert_eq!(pf.bytes_written(), 64);
        assert_eq!(pf.on_disk_bytes(), 64);
        for page in 0..3 {
            assert_eq!(pf.read_page(page).unwrap(), vec![0u8; 16]);
        }
        assert_eq!(&pf.read_page(3).unwrap()[..1], b"x");
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let dir = TempDir::new("paged").unwrap();
        let mut pf = PagedFile::create(dir.file("pages.bin"), 8).unwrap();
        assert!(pf.append_page(&[0u8; 9]).is_err());
    }

    #[test]
    fn out_of_range_read_is_an_error() {
        let dir = TempDir::new("paged").unwrap();
        let mut pf = PagedFile::create(dir.file("pages.bin"), 8).unwrap();
        assert!(pf.read_page(0).is_err());
    }

    #[test]
    fn zero_page_size_is_rejected() {
        let dir = TempDir::new("paged").unwrap();
        assert!(PagedFile::create(dir.file("pages.bin"), 0).is_err());
    }

    #[test]
    fn clear_resets_pages() {
        let dir = TempDir::new("paged").unwrap();
        let mut pf = PagedFile::create(dir.file("pages.bin"), 8).unwrap();
        pf.append_page(b"abc").unwrap();
        pf.clear().unwrap();
        assert_eq!(pf.num_pages(), 0);
        assert!(pf.read_page(0).is_err());
        pf.sync().unwrap();
    }
}
