//! Segment-aligned checkpoints: durable snapshots of the window metadata.
//!
//! Segments are immutable files, so a checkpoint never copies row data — it
//! serialises only the *metadata* needed to reopen them: the live segment
//! list (uid, batch id, columns, row index), the ingest-time support
//! counters, and the WAL sequence number it covers.  Checkpoint files are
//! written to a temp path, fsynced and renamed into place, so a crash during
//! checkpointing leaves either the old set of checkpoints or the old set plus
//! one complete new file — never a half-written one that parses.
//!
//! # File format
//!
//! ```text
//! ┌──────────────────┬──────────────────────────────┬──────────────┐
//! │ magic "FSMCKPT1" │ body (u64 LE fields, below)  │ crc32: u32 LE│
//! └──────────────────┴──────────────────────────────┴──────────────┘
//! ```
//!
//! The CRC covers the whole body; a single flipped bit anywhere makes
//! [`Checkpoint::load`] reject the file, and recovery falls back to the next
//! older checkpoint (whose WAL suffix is retained for exactly this reason).

use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use fsm_types::{FsmError, Result};

use crate::checksum::crc32;
use crate::paged::{annotate, artifact_name};
use crate::segment::SegmentMeta;

const MAGIC: &[u8; 8] = b"FSMCKPT1";

/// Durable metadata of one row of one segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRow {
    /// Row (edge) identifier.
    pub row: u64,
    /// First page of the row inside the segment file.
    pub first_page: u64,
    /// Byte length of the serialised row chunk.
    pub len: u64,
    /// Number of set bits the row contributes in this segment (lets recovery
    /// rebuild the per-segment support ledger without reading any chunk).
    pub ones: u64,
}

/// Durable metadata of one live segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSegment {
    /// Stable uid (names the file `seg-<uid>.pages`).
    pub uid: u64,
    /// Stream-wide id of the batch this segment captured.
    pub batch_id: u64,
    /// Window columns the segment contributes.
    pub cols: u64,
    /// Per-row metadata in ascending row order.
    pub rows: Vec<CheckpointRow>,
}

/// A complete, self-validating snapshot of the durable window metadata.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Checkpoint {
    /// WAL sequence number of the last batch this snapshot covers.
    pub last_seq: u64,
    /// The segment uid counter at snapshot time (next uid to be assigned).
    pub next_uid: u64,
    /// Size of the row domain (number of catalogued edges).
    pub num_items: u64,
    /// Window capacity in batches, recorded to reject recovery under a
    /// different configuration.
    pub window_batches: u64,
    /// Ingest-time support counter per row, `num_items` entries.
    pub supports: Vec<u64>,
    /// Live segments, oldest first.
    pub segments: Vec<CheckpointSegment>,
}

impl Checkpoint {
    /// File name a checkpoint covering WAL sequence `seq` is stored under.
    pub fn file_name(seq: u64) -> String {
        format!("checkpoint-{seq}.ckpt")
    }

    /// Writes the checkpoint into `dir` (temp file + fsync + rename),
    /// returning the final path, the encoded size in bytes, and the number of
    /// `fsync` calls issued.
    pub fn write(&self, dir: &Path) -> Result<(PathBuf, u64, u64)> {
        let bytes = self.encode();
        let path = dir.join(Self::file_name(self.last_seq));
        let tmp = dir.join(format!("{}.tmp", Self::file_name(self.last_seq)));
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|err| annotate(err, "create checkpoint temp", &tmp))?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, &path)?;
        Ok((path, bytes.len() as u64, 1))
    }

    /// Lists the checkpoint files in `dir` as `(seq, path)`, newest first.
    ///
    /// Recovery walks this list until it finds a checkpoint that loads and
    /// whose referenced segment files verify.
    pub fn candidates(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        if !dir.exists() {
            return Ok(out);
        }
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(seq) = name
                .strip_prefix("checkpoint-")
                .and_then(|rest| rest.strip_suffix(".ckpt"))
                .and_then(|seq| seq.parse::<u64>().ok())
            else {
                continue;
            };
            out.push((seq, path));
        }
        out.sort_unstable_by_key(|entry| std::cmp::Reverse(entry.0));
        Ok(out)
    }

    /// Removes all but the `keep` newest checkpoint files (and any stale
    /// `.tmp` leftovers), returning the removed paths.
    pub fn prune_keeping(dir: &Path, keep: usize) -> Result<Vec<PathBuf>> {
        let mut removed = Vec::new();
        for (_, path) in Self::candidates(dir)?.into_iter().skip(keep) {
            std::fs::remove_file(&path)?;
            removed.push(path);
        }
        if dir.exists() {
            for entry in std::fs::read_dir(dir)? {
                let path = entry?.path();
                let is_tmp = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("checkpoint-") && n.ends_with(".ckpt.tmp"));
                if is_tmp {
                    std::fs::remove_file(&path)?;
                    removed.push(path);
                }
            }
        }
        Ok(removed)
    }

    /// Loads and validates a checkpoint file.
    ///
    /// Any damage — wrong magic, truncation, a flipped bit anywhere in the
    /// body — fails with [`FsmError::CorruptArtifact`] naming the file.
    pub fn load(path: &Path) -> Result<Self> {
        let name = artifact_name(path);
        let bytes = std::fs::read(path).map_err(|err| annotate(err, "read checkpoint", path))?;
        if bytes.len() < MAGIC.len() + 4 {
            return Err(FsmError::corrupt_artifact(
                &name,
                format!("only {} bytes — too short to be a checkpoint", bytes.len()),
            ));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(FsmError::corrupt_artifact(&name, "bad magic"));
        }
        let body = &bytes[MAGIC.len()..bytes.len() - 4];
        let mut trailer = [0u8; 4];
        trailer.copy_from_slice(&bytes[bytes.len() - 4..]);
        let stored_crc = u32::from_le_bytes(trailer);
        let actual_crc = crc32(body);
        if stored_crc != actual_crc {
            return Err(FsmError::corrupt_artifact(
                &name,
                format!(
                    "checksum mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
                ),
            ));
        }
        let mut reader = FieldReader::new(body, &name);
        let last_seq = reader.u64("last_seq")?;
        let next_uid = reader.u64("next_uid")?;
        let num_items = reader.u64("num_items")?;
        let window_batches = reader.u64("window_batches")?;
        let num_supports = reader.u64("supports count")?;
        let mut supports = Vec::with_capacity(num_supports.min(1 << 20) as usize);
        for _ in 0..num_supports {
            supports.push(reader.u64("support")?);
        }
        let num_segments = reader.u64("segments count")?;
        let mut segments = Vec::with_capacity(num_segments.min(1 << 16) as usize);
        for _ in 0..num_segments {
            let uid = reader.u64("segment uid")?;
            let batch_id = reader.u64("segment batch id")?;
            let cols = reader.u64("segment cols")?;
            let num_rows = reader.u64("segment rows count")?;
            let mut rows = Vec::with_capacity(num_rows.min(1 << 20) as usize);
            for _ in 0..num_rows {
                rows.push(CheckpointRow {
                    row: reader.u64("row id")?,
                    first_page: reader.u64("row first page")?,
                    len: reader.u64("row length")?,
                    ones: reader.u64("row ones")?,
                });
            }
            segments.push(CheckpointSegment {
                uid,
                batch_id,
                cols,
                rows,
            });
        }
        reader.finish()?;
        Ok(Self {
            last_seq,
            next_uid,
            num_items,
            window_batches,
            supports,
            segments,
        })
    }

    /// Converts the segment entries into the form
    /// [`crate::SegmentedWindowStore::restore`] consumes.
    pub fn segment_metas(&self) -> Vec<SegmentMeta> {
        self.segments
            .iter()
            .map(|seg| SegmentMeta {
                uid: seg.uid,
                cols: seg.cols as usize,
                rows: seg
                    .rows
                    .iter()
                    .map(|r| (r.row as usize, r.first_page as usize, r.len as usize))
                    .collect(),
            })
            .collect()
    }

    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        let push = |v: u64, body: &mut Vec<u8>| body.extend_from_slice(&v.to_le_bytes());
        push(self.last_seq, &mut body);
        push(self.next_uid, &mut body);
        push(self.num_items, &mut body);
        push(self.window_batches, &mut body);
        push(self.supports.len() as u64, &mut body);
        for &s in &self.supports {
            push(s, &mut body);
        }
        push(self.segments.len() as u64, &mut body);
        for seg in &self.segments {
            push(seg.uid, &mut body);
            push(seg.batch_id, &mut body);
            push(seg.cols, &mut body);
            push(seg.rows.len() as u64, &mut body);
            for row in &seg.rows {
                push(row.row, &mut body);
                push(row.first_page, &mut body);
                push(row.len, &mut body);
                push(row.ones, &mut body);
            }
        }
        let mut bytes = Vec::with_capacity(MAGIC.len() + body.len() + 4);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        bytes
    }
}

/// Bounds-checked little-endian field reader over a checksummed body.
/// Shared by every CRC-framed artifact in this crate ([`Checkpoint`] and
/// [`crate::spill::Hibernation`]) so they decode under one discipline.
pub(crate) struct FieldReader<'a> {
    bytes: &'a [u8],
    offset: usize,
    artifact: &'a str,
}

impl<'a> FieldReader<'a> {
    pub(crate) fn new(bytes: &'a [u8], artifact: &'a str) -> Self {
        Self {
            bytes,
            offset: 0,
            artifact,
        }
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64> {
        let mut word = [0u8; 8];
        word.copy_from_slice(self.bytes_inner(8, what)?);
        Ok(u64::from_le_bytes(word))
    }

    /// Takes `len` raw bytes out of the body.
    pub(crate) fn bytes(&mut self, len: usize, what: &str) -> Result<&'a [u8]> {
        self.bytes_inner(len, what)
    }

    fn bytes_inner(&mut self, len: usize, what: &str) -> Result<&'a [u8]> {
        let end = self
            .offset
            .checked_add(len)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| {
                FsmError::corrupt_artifact(
                    self.artifact,
                    format!("truncated body while reading {what}"),
                )
            })?;
        let slice = &self.bytes[self.offset..end];
        self.offset = end;
        Ok(slice)
    }

    pub(crate) fn finish(&self) -> Result<()> {
        if self.offset != self.bytes.len() {
            return Err(FsmError::corrupt_artifact(
                self.artifact,
                format!(
                    "{} trailing bytes after the last field",
                    self.bytes.len() - self.offset
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp::TempDir;

    fn sample(seq: u64) -> Checkpoint {
        Checkpoint {
            last_seq: seq,
            next_uid: 4,
            num_items: 3,
            window_batches: 2,
            supports: vec![5, 0, 2],
            segments: vec![
                CheckpointSegment {
                    uid: 2,
                    batch_id: 6,
                    cols: 3,
                    rows: vec![
                        CheckpointRow {
                            row: 0,
                            first_page: 0,
                            len: 16,
                            ones: 2,
                        },
                        CheckpointRow {
                            row: 2,
                            first_page: 1,
                            len: 16,
                            ones: 1,
                        },
                    ],
                },
                CheckpointSegment {
                    uid: 3,
                    batch_id: 7,
                    cols: 1,
                    rows: vec![],
                },
            ],
        }
    }

    #[test]
    fn write_load_roundtrip() {
        let dir = TempDir::new("ckpt").unwrap();
        let ckpt = sample(9);
        let (path, bytes, fsyncs) = ckpt.write(dir.path()).unwrap();
        assert!(path.ends_with("checkpoint-9.ckpt"));
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        assert_eq!(fsyncs, 1);
        assert_eq!(Checkpoint::load(&path).unwrap(), ckpt);
        let metas = ckpt.segment_metas();
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].rows, vec![(0, 0, 16), (2, 1, 16)]);
    }

    #[test]
    fn candidates_sorted_newest_first_and_pruned() {
        let dir = TempDir::new("ckpt").unwrap();
        for seq in [3u64, 11, 7] {
            sample(seq).write(dir.path()).unwrap();
        }
        let candidates = Checkpoint::candidates(dir.path()).unwrap();
        let seqs: Vec<u64> = candidates.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![11, 7, 3]);

        let removed = Checkpoint::prune_keeping(dir.path(), 2).unwrap();
        assert_eq!(removed.len(), 1);
        let seqs: Vec<u64> = Checkpoint::candidates(dir.path())
            .unwrap()
            .iter()
            .map(|(s, _)| *s)
            .collect();
        assert_eq!(seqs, vec![11, 7]);
    }

    #[test]
    fn every_single_bit_flip_in_the_body_is_detected() {
        let dir = TempDir::new("ckpt").unwrap();
        let (path, _, _) = sample(5).write(dir.path()).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flip one bit at a sample of positions across the whole file
        // (including magic and trailing CRC).
        for pos in (0..clean.len()).step_by(7) {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            let err = Checkpoint::load(&path).unwrap_err();
            assert!(
                matches!(err, FsmError::CorruptArtifact { .. }),
                "flip at {pos} must be CorruptArtifact, got: {err}"
            );
            assert!(
                err.to_string().contains("checkpoint-5.ckpt"),
                "error must name the file: {err}"
            );
        }
        std::fs::write(&path, &clean).unwrap();
        Checkpoint::load(&path).unwrap();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let dir = TempDir::new("ckpt").unwrap();
        let (path, _, _) = sample(5).write(dir.path()).unwrap();
        let clean = std::fs::read(&path).unwrap();
        std::fs::write(&path, &clean[..clean.len() / 2]).unwrap();
        assert!(Checkpoint::load(&path).is_err());
        std::fs::write(&path, b"").unwrap();
        assert!(Checkpoint::load(&path).is_err());
    }

    #[test]
    fn prune_removes_stale_tmp_files() {
        let dir = TempDir::new("ckpt").unwrap();
        sample(4).write(dir.path()).unwrap();
        let stale = dir.path().join("checkpoint-9.ckpt.tmp");
        std::fs::write(&stale, b"half-written").unwrap();
        Checkpoint::prune_keeping(dir.path(), 2).unwrap();
        assert!(!stale.exists());
        assert_eq!(Checkpoint::candidates(dir.path()).unwrap().len(), 1);
    }
}
