//! Hibernation artifacts: full-payload spill images for non-durable windows.
//!
//! A durable tenant spills by checkpointing — its segment files and WAL
//! already live on disk, so dropping the resident state loses nothing.  A
//! *non-durable* tenant (memory backend, or a disk backend rooted in a
//! self-cleaning temp directory) has no such artifacts: spilling it means
//! serialising the actual window payload — every segment's bit chunks, the
//! batch boundaries and the ingest-time support counters — into one file the
//! tenant can be rebuilt from.  [`Hibernation`] is that file.
//!
//! # File format
//!
//! Deliberately the same framing discipline as [`crate::Checkpoint`]: a
//! magic, a body of u64 little-endian fields (chunk payloads are
//! length-prefixed [`crate::BitVec`] images), and a trailing CRC-32 over the
//! whole body.  Writes go to a temp path, fsync, then rename — a crash
//! mid-spill leaves either no artifact or one complete artifact, never a
//! half-written one that parses.  Decoding shares the checkpoint's
//! bounds-checked `FieldReader`, so any damage surfaces as
//! [`FsmError::CorruptArtifact`] naming the file.
//!
//! ```text
//! ┌──────────────────┬──────────────────────────────┬──────────────┐
//! │ magic "FSMSPIL1" │ body (u64 LE fields + chunks)│ crc32: u32 LE│
//! └──────────────────┴──────────────────────────────┴──────────────┘
//! ```
//!
//! The body is: `num_items`, `window_batches`, the support counters
//! (count-prefixed), then the live segments oldest-first — each a
//! `batch_id`, its column count, and its touched rows as
//! `(row id, chunk byte length, chunk bytes)` triples.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use fsm_types::{FsmError, Result};

use crate::checkpoint::FieldReader;
use crate::checksum::crc32;
use crate::paged::{annotate, artifact_name};

const MAGIC: &[u8; 8] = b"FSMSPIL1";

/// One touched row of one hibernated segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HibernationRow {
    /// Row (edge) identifier.
    pub row: u64,
    /// The row's bit chunk for this segment, as [`crate::BitVec::to_bytes`]
    /// output.
    pub chunk: Vec<u8>,
}

/// One hibernated window segment (= one live batch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HibernationSegment {
    /// Stream-wide id of the batch this segment captured.
    pub batch_id: u64,
    /// Window columns (transactions) the segment contributes.
    pub cols: u64,
    /// Touched rows in ascending row order.
    pub rows: Vec<HibernationRow>,
}

/// A complete, self-validating spill image of one non-durable window.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Hibernation {
    /// Size of the row domain (number of catalogued edges) at spill time.
    pub num_items: u64,
    /// Window capacity in batches, recorded to reject a thaw under a
    /// different configuration.
    pub window_batches: u64,
    /// Ingest-time support counter per row, `num_items` entries.  Redundant
    /// with the chunk payloads — a thaw recomputes them and treats any
    /// divergence as corruption the CRC happened not to catch structurally.
    pub supports: Vec<u64>,
    /// Live segments, oldest first.
    pub segments: Vec<HibernationSegment>,
}

impl Hibernation {
    /// File name every hibernation artifact is stored under (one window per
    /// spill directory).
    pub const FILE_NAME: &'static str = "window.hib";

    /// The artifact path inside a tenant's spill directory.
    pub fn artifact_path(dir: &Path) -> PathBuf {
        dir.join(Self::FILE_NAME)
    }

    /// Writes the artifact into `dir` (temp file + fsync + rename),
    /// returning the final path and the encoded size in bytes.
    pub fn write(&self, dir: &Path) -> Result<(PathBuf, u64)> {
        std::fs::create_dir_all(dir).map_err(|err| annotate(err, "create spill dir", dir))?;
        let bytes = self.encode();
        let path = Self::artifact_path(dir);
        let tmp = dir.join(format!("{}.tmp", Self::FILE_NAME));
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|err| annotate(err, "create hibernation temp", &tmp))?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, &path)?;
        Ok((path, bytes.len() as u64))
    }

    /// Loads and validates a hibernation artifact.
    ///
    /// Any damage — wrong magic, truncation, a flipped bit anywhere in the
    /// body — fails with [`FsmError::CorruptArtifact`] naming the file.
    pub fn load(path: &Path) -> Result<Self> {
        let name = artifact_name(path);
        let bytes = std::fs::read(path).map_err(|err| annotate(err, "read hibernation", path))?;
        if bytes.len() < MAGIC.len() + 4 {
            return Err(FsmError::corrupt_artifact(
                &name,
                format!(
                    "only {} bytes — too short to be a hibernation image",
                    bytes.len()
                ),
            ));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(FsmError::corrupt_artifact(&name, "bad magic"));
        }
        let body = &bytes[MAGIC.len()..bytes.len() - 4];
        let mut trailer = [0u8; 4];
        trailer.copy_from_slice(&bytes[bytes.len() - 4..]);
        let stored_crc = u32::from_le_bytes(trailer);
        let actual_crc = crc32(body);
        if stored_crc != actual_crc {
            return Err(FsmError::corrupt_artifact(
                &name,
                format!(
                    "checksum mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
                ),
            ));
        }
        let mut reader = FieldReader::new(body, &name);
        let num_items = reader.u64("num_items")?;
        let window_batches = reader.u64("window_batches")?;
        let num_supports = reader.u64("supports count")?;
        let mut supports = Vec::with_capacity(num_supports.min(1 << 20) as usize);
        for _ in 0..num_supports {
            supports.push(reader.u64("support")?);
        }
        let num_segments = reader.u64("segments count")?;
        let mut segments = Vec::with_capacity(num_segments.min(1 << 16) as usize);
        for _ in 0..num_segments {
            let batch_id = reader.u64("segment batch id")?;
            let cols = reader.u64("segment cols")?;
            let num_rows = reader.u64("segment rows count")?;
            let mut rows = Vec::with_capacity(num_rows.min(1 << 20) as usize);
            for _ in 0..num_rows {
                let row = reader.u64("row id")?;
                let len = reader.u64("row chunk length")?;
                let chunk = reader.bytes(len as usize, "row chunk bytes")?.to_vec();
                rows.push(HibernationRow { row, chunk });
            }
            segments.push(HibernationSegment {
                batch_id,
                cols,
                rows,
            });
        }
        reader.finish()?;
        Ok(Self {
            num_items,
            window_batches,
            supports,
            segments,
        })
    }

    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        let push = |v: u64, body: &mut Vec<u8>| body.extend_from_slice(&v.to_le_bytes());
        push(self.num_items, &mut body);
        push(self.window_batches, &mut body);
        push(self.supports.len() as u64, &mut body);
        for &s in &self.supports {
            push(s, &mut body);
        }
        push(self.segments.len() as u64, &mut body);
        for seg in &self.segments {
            push(seg.batch_id, &mut body);
            push(seg.cols, &mut body);
            push(seg.rows.len() as u64, &mut body);
            for row in &seg.rows {
                push(row.row, &mut body);
                push(row.chunk.len() as u64, &mut body);
                body.extend_from_slice(&row.chunk);
            }
        }
        let mut bytes = Vec::with_capacity(MAGIC.len() + body.len() + 4);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVec;
    use crate::temp::TempDir;

    fn sample() -> Hibernation {
        let chunk = |bits: &[bool]| BitVec::from_bools(bits.iter().copied()).to_bytes();
        Hibernation {
            num_items: 3,
            window_batches: 2,
            supports: vec![2, 0, 1],
            segments: vec![
                HibernationSegment {
                    batch_id: 6,
                    cols: 3,
                    rows: vec![
                        HibernationRow {
                            row: 0,
                            chunk: chunk(&[true, false, true]),
                        },
                        HibernationRow {
                            row: 2,
                            chunk: chunk(&[false, true, false]),
                        },
                    ],
                },
                HibernationSegment {
                    batch_id: 7,
                    cols: 1,
                    rows: vec![],
                },
            ],
        }
    }

    #[test]
    fn write_load_roundtrip() {
        let dir = TempDir::new("hib").unwrap();
        let hib = sample();
        let (path, bytes) = hib.write(dir.path()).unwrap();
        assert!(path.ends_with(Hibernation::FILE_NAME));
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        assert_eq!(Hibernation::load(&path).unwrap(), hib);
    }

    #[test]
    fn rewrite_replaces_the_previous_image() {
        let dir = TempDir::new("hib").unwrap();
        sample().write(dir.path()).unwrap();
        let mut newer = sample();
        newer.segments.pop();
        let (path, _) = newer.write(dir.path()).unwrap();
        assert_eq!(Hibernation::load(&path).unwrap(), newer);
    }

    #[test]
    fn every_single_bit_flip_in_the_body_is_detected() {
        let dir = TempDir::new("hib").unwrap();
        let (path, _) = sample().write(dir.path()).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for pos in (0..clean.len()).step_by(5) {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x08;
            std::fs::write(&path, &bytes).unwrap();
            let err = Hibernation::load(&path).unwrap_err();
            assert!(
                matches!(err, FsmError::CorruptArtifact { .. }),
                "flip at {pos} must be CorruptArtifact, got: {err}"
            );
            assert!(
                err.to_string().contains(Hibernation::FILE_NAME),
                "error must name the file: {err}"
            );
        }
        std::fs::write(&path, &clean).unwrap();
        Hibernation::load(&path).unwrap();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let dir = TempDir::new("hib").unwrap();
        let (path, _) = sample().write(dir.path()).unwrap();
        let clean = std::fs::read(&path).unwrap();
        std::fs::write(&path, &clean[..clean.len() / 2]).unwrap();
        assert!(Hibernation::load(&path).is_err());
        std::fs::write(&path, b"").unwrap();
        assert!(Hibernation::load(&path).is_err());
    }

    #[test]
    fn stale_tmp_is_ignored_and_replaced() {
        let dir = TempDir::new("hib").unwrap();
        let stale = dir.path().join(format!("{}.tmp", Hibernation::FILE_NAME));
        std::fs::write(&stale, b"half-written").unwrap();
        let (path, _) = sample().write(dir.path()).unwrap();
        assert_eq!(Hibernation::load(&path).unwrap(), sample());
        assert!(!stale.exists());
    }
}
