//! Process-wide chunk-cache budget arbitration for multi-tenant deployments.
//!
//! A single-tenant process sizes its decoded-chunk cache with one knob
//! ([`crate::SegmentedWindowStore::set_cache_budget`]).  A service hosting
//! many tenants cannot hand every matrix that knob independently — the sum
//! of per-tenant budgets, not any one of them, is what the box actually
//! spends.  The [`BudgetGovernor`] owns that sum: each matrix registers for
//! a [`BudgetLease`] and periodically *requests* the budget it would like;
//! the governor grants what the process-wide cap and fairness allow, and the
//! matrix applies the grant to its own cache.
//!
//! # Granting policy
//!
//! For a cap of `T` bytes shared by `n` registered members, a request is
//! granted `min(desired, max(T - other_grants, T / n))`:
//!
//! * While the cap has headroom, members get what they ask for — a lone hot
//!   tenant may use the whole cap.
//! * Under contention a requester is never starved below its **fair share**
//!   `T / n`, even if earlier grants already consumed the cap.  The sum of
//!   grants may transiently exceed `T` by at most one fair share per
//!   over-granted member; convergence is cooperative — every member
//!   re-requests at its next ingest/view boundary, and those re-requests are
//!   clamped by the same rule, shrinking the over-shares.  The governor
//!   never reaches into a member's cache: eviction stays where the pinned
//!   borrows are.
//!
//! Leases release their grant on drop, so a departing tenant's share flows
//! back to the survivors at their next request.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Process-wide cache-budget arbiter; see the [module docs](self).
///
/// Cheap to share: all state sits behind one mutex that is only touched at
/// registration and at ingest/view boundaries, never per row read.
pub struct BudgetGovernor {
    inner: Mutex<GovernorState>,
}

#[derive(Debug)]
struct GovernorState {
    total: usize,
    next_id: u64,
    members: BTreeMap<u64, Member>,
}

#[derive(Debug, Default, Clone, Copy)]
struct Member {
    desired: usize,
    granted: usize,
}

impl BudgetGovernor {
    /// Creates a governor enforcing a process-wide cap of `total_bytes`
    /// across all leases (`0` grants nobody anything — every member's cache
    /// is disabled, the paper's strictest space posture).
    pub fn new(total_bytes: usize) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(GovernorState {
                total: total_bytes,
                next_id: 0,
                members: BTreeMap::new(),
            }),
        })
    }

    /// The process-wide cap in bytes.
    pub fn total_bytes(&self) -> usize {
        self.lock().total
    }

    /// Number of currently registered leases.
    pub fn members(&self) -> usize {
        self.lock().members.len()
    }

    /// Sum of currently granted bytes across all leases.  May transiently
    /// exceed [`BudgetGovernor::total_bytes`] under contention (see the
    /// module docs); converges below it as members re-request.
    pub fn granted_bytes(&self) -> usize {
        self.lock()
            .members
            .values()
            .fold(0usize, |acc, m| acc.saturating_add(m.granted))
    }

    /// Registers a new member with no desired budget yet; call
    /// [`BudgetLease::request`] to obtain a grant.
    pub fn register(self: &Arc<Self>) -> BudgetLease {
        let id = {
            let mut state = self.lock();
            let id = state.next_id;
            state.next_id += 1;
            state.members.insert(id, Member::default());
            id
        };
        BudgetLease {
            governor: Arc::clone(self),
            id,
        }
    }

    fn request(&self, id: u64, desired: usize) -> usize {
        let mut state = self.lock();
        let total = state.total;
        let members = state.members.len().max(1);
        let fair = total / members;
        let other_granted: usize = state
            .members
            .iter()
            .filter(|(mid, _)| **mid != id)
            .fold(0usize, |acc, (_, m)| acc.saturating_add(m.granted));
        let headroom = total.saturating_sub(other_granted);
        let grant = desired.min(headroom.max(fair));
        if let Some(member) = state.members.get_mut(&id) {
            member.desired = desired;
            member.granted = grant;
        }
        grant
    }

    fn release(&self, id: u64) {
        self.lock().members.remove(&id);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GovernorState> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl std::fmt::Debug for BudgetGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock();
        f.debug_struct("BudgetGovernor")
            .field("total", &state.total)
            .field("members", &state.members.len())
            .finish()
    }
}

/// One member's handle on a [`BudgetGovernor`]; dropping it returns the
/// member's grant to the pool.
#[derive(Debug)]
pub struct BudgetLease {
    governor: Arc<BudgetGovernor>,
    id: u64,
}

impl BudgetLease {
    /// Declares this member's desired budget and returns the granted bytes
    /// under the cap-and-fairness rule (see the [module docs](self)).  Call
    /// again at natural boundaries — grants change as members come, go and
    /// re-request.
    pub fn request(&self, desired: usize) -> usize {
        self.governor.request(self.id, desired)
    }

    /// The governor this lease draws from.
    pub fn governor(&self) -> &Arc<BudgetGovernor> {
        &self.governor
    }
}

impl Drop for BudgetLease {
    fn drop(&mut self) {
        self.governor.release(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_member_gets_the_whole_cap() {
        let gov = BudgetGovernor::new(1000);
        let lease = gov.register();
        assert_eq!(lease.request(600), 600);
        assert_eq!(lease.request(5000), 1000);
        assert_eq!(gov.granted_bytes(), 1000);
    }

    #[test]
    fn contended_members_converge_to_fair_shares() {
        let gov = BudgetGovernor::new(1000);
        let a = gov.register();
        let b = gov.register();
        // A grabs everything first; B still gets its fair share.
        assert_eq!(a.request(usize::MAX), 1000);
        assert_eq!(b.request(usize::MAX), 500);
        // A's next request is clamped by B's grant: the overshoot drains.
        assert_eq!(a.request(usize::MAX), 500);
        assert_eq!(gov.granted_bytes(), 1000);
    }

    #[test]
    fn modest_requests_are_granted_in_full() {
        let gov = BudgetGovernor::new(1000);
        let a = gov.register();
        let b = gov.register();
        assert_eq!(a.request(200), 200);
        assert_eq!(b.request(700), 700);
        assert_eq!(gov.granted_bytes(), 900);
    }

    #[test]
    fn dropping_a_lease_returns_its_grant() {
        let gov = BudgetGovernor::new(1000);
        let a = gov.register();
        let b = gov.register();
        assert_eq!(a.request(usize::MAX), 1000);
        assert_eq!(b.request(usize::MAX), 500);
        drop(a);
        assert_eq!(gov.members(), 1);
        assert_eq!(b.request(usize::MAX), 1000);
    }

    #[test]
    fn zero_cap_grants_nothing() {
        let gov = BudgetGovernor::new(0);
        let lease = gov.register();
        assert_eq!(lease.request(usize::MAX), 0);
    }

    #[test]
    fn fairness_holds_for_many_members() {
        let gov = BudgetGovernor::new(900);
        let leases: Vec<_> = (0..3).map(|_| gov.register()).collect();
        assert_eq!(leases[0].request(usize::MAX), 900);
        // Latecomers each still receive total / n.
        assert_eq!(leases[1].request(usize::MAX), 300);
        assert_eq!(leases[2].request(usize::MAX), 300);
        // One cooperative round later everyone holds exactly a fair share.
        for lease in &leases {
            assert_eq!(lease.request(usize::MAX), 300);
        }
        assert_eq!(gov.granted_bytes(), 900);
    }
}
