//! A compact growable bit vector tuned for the DSMatrix access pattern.
//!
//! Each DSMatrix row is one bit per window transaction; the vertical mining
//! algorithms (§3.4 and §4 of the paper) repeatedly intersect two rows and
//! count the surviving ones, and the window slide drops a prefix of columns
//! and appends new ones.  Those three operations — `and`, `count_ones`,
//! `drop_prefix`/`push` — are the hot path of the whole system.

use std::fmt;

const WORD_BITS: usize = 64;

/// Word-lane width of the unrolled intersection kernels.
///
/// The hot kernels below process four independent `u64` lanes per iteration
/// (with a scalar tail), which is the portable idiom LLVM turns into SIMD
/// `AND` + `popcnt` sequences on every target the workspace builds for — no
/// intrinsics, no `unsafe`, nothing the shims-only build environment cannot
/// compile.  Four lanes is the sweet spot: it matches one AVX2 register (or
/// two NEON registers) and keeps the popcount accumulators independent so
/// the adds pipeline instead of serialising on one register.
const LANES: usize = 4;

/// Unrolled popcount of `a[i] & b[i]` over two equal-length word slices.
#[inline]
fn and_count_slices(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0u64; LANES];
    let mut chunks_a = a.chunks_exact(LANES);
    let mut chunks_b = b.chunks_exact(LANES);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        lanes[0] += u64::from((ca[0] & cb[0]).count_ones());
        lanes[1] += u64::from((ca[1] & cb[1]).count_ones());
        lanes[2] += u64::from((ca[2] & cb[2]).count_ones());
        lanes[3] += u64::from((ca[3] & cb[3]).count_ones());
    }
    let mut count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (&x, &y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        count += u64::from((x & y).count_ones());
    }
    count
}

/// Unrolled fused intersection `dst[i] = a[i] & b[i]` over three
/// equal-length word slices, returning the popcount of the result.
#[inline]
fn and_into_slices(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    let mut lanes = [0u64; LANES];
    let mut chunks_d = dst.chunks_exact_mut(LANES);
    let mut chunks_a = a.chunks_exact(LANES);
    let mut chunks_b = b.chunks_exact(LANES);
    for ((cd, ca), cb) in (&mut chunks_d).zip(&mut chunks_a).zip(&mut chunks_b) {
        let m0 = ca[0] & cb[0];
        let m1 = ca[1] & cb[1];
        let m2 = ca[2] & cb[2];
        let m3 = ca[3] & cb[3];
        lanes[0] += u64::from(m0.count_ones());
        lanes[1] += u64::from(m1.count_ones());
        lanes[2] += u64::from(m2.count_ones());
        lanes[3] += u64::from(m3.count_ones());
        cd[0] = m0;
        cd[1] = m1;
        cd[2] = m2;
        cd[3] = m3;
    }
    let mut count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for ((d, &x), &y) in chunks_d
        .into_remainder()
        .iter_mut()
        .zip(chunks_a.remainder())
        .zip(chunks_b.remainder())
    {
        let masked = x & y;
        count += u64::from(masked.count_ones());
        *d = masked;
    }
    count
}

/// A growable vector of bits backed by `u64` words.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Creates a bit vector from an iterator of booleans.
    pub fn from_bools<I>(bits: I) -> Self
    where
        I: IntoIterator<Item = bool>,
    {
        let mut v = Self::new();
        for b in bits {
            v.push(b);
        }
        v
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / WORD_BITS;
        let offset = self.len % WORD_BITS;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << offset;
        }
        self.len += 1;
    }

    /// Returns the bit at `index`, or `false` if `index` is out of range.
    ///
    /// Out-of-range reads returning `false` match the DSMatrix convention that
    /// a transaction simply does not contain an item it has no column bit for.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        if index >= self.len {
            return false;
        }
        let word = index / WORD_BITS;
        let offset = index % WORD_BITS;
        (self.words[word] >> offset) & 1 == 1
    }

    /// Sets the bit at `index`, growing the vector with zeros if needed.
    pub fn set(&mut self, index: usize, bit: bool) {
        if index >= self.len {
            self.resize(index + 1);
        }
        let word = index / WORD_BITS;
        let offset = index % WORD_BITS;
        if bit {
            self.words[word] |= 1u64 << offset;
        } else {
            self.words[word] &= !(1u64 << offset);
        }
    }

    /// Grows or shrinks the vector to exactly `len` bits, zero-filling new
    /// bits and clearing any bits beyond the new length.
    pub fn resize(&mut self, len: usize) {
        self.words.resize(len.div_ceil(WORD_BITS), 0);
        self.len = len;
        self.clear_tail();
    }

    /// Number of set bits — the row-sum / support count of §3.4.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// In-place intersection with `other` (`self &= other`).
    ///
    /// Bits beyond the shorter operand are treated as zero; the result length
    /// is the length of `self`.
    pub fn and_with(&mut self, other: &BitVec) {
        for (i, word) in self.words.iter_mut().enumerate() {
            *word &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Returns the intersection `self & other` as a new vector.
    pub fn and(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.and_with(other);
        out
    }

    /// Fused kernel: writes `self & other` into `out` (reusing its buffer)
    /// and returns the popcount of the result in the same pass.
    ///
    /// The result has the length of `self`, matching [`BitVec::and`].  This
    /// is the zero-allocation hot path of the vertical miners: `out` is a
    /// scratch buffer owned by the caller, so steady-state candidate
    /// extension performs no heap allocation at all.
    pub fn and_into(&self, other: &BitVec, out: &mut BitVec) -> u64 {
        out.words.clear();
        out.words.resize(self.words.len(), 0);
        let overlap = self.words.len().min(other.words.len());
        let count = and_into_slices(
            &mut out.words[..overlap],
            &self.words[..overlap],
            &other.words[..overlap],
        );
        out.len = self.len;
        count
    }

    /// Returns the union `self | other` as a new vector whose length is the
    /// maximum of the operand lengths.
    pub fn or(&self, other: &BitVec) -> BitVec {
        let (long, short) = if self.len >= other.len {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = long.clone();
        for (i, word) in short.words.iter().enumerate() {
            out.words[i] |= word;
        }
        out
    }

    /// Counts the set bits of `self & other` without materialising the result.
    pub fn and_count(&self, other: &BitVec) -> u64 {
        let overlap = self.words.len().min(other.words.len());
        and_count_slices(&self.words[..overlap], &other.words[..overlap])
    }

    /// Number of set bits with column index in `[start, end)`, clamped to the
    /// vector length.
    ///
    /// This is the per-segment support attribution primitive of the delta
    /// miner: a pattern's tidset over a snapshot view starts at column 0, so
    /// its support contribution from one window segment is exactly the
    /// popcount of the segment's column range.  Interior whole words go
    /// through the unrolled slice kernel; the two boundary words are masked
    /// individually.
    pub fn count_range(&self, start: usize, end: usize) -> u64 {
        let end = end.min(self.len);
        if start >= end {
            return 0;
        }
        let first = start / WORD_BITS;
        let last = (end - 1) / WORD_BITS;
        let head_mask = u64::MAX << (start % WORD_BITS);
        let tail_bits = end % WORD_BITS;
        let tail_mask = if tail_bits == 0 {
            u64::MAX
        } else {
            (1u64 << tail_bits) - 1
        };
        if first == last {
            return u64::from((self.words[first] & head_mask & tail_mask).count_ones());
        }
        let mut count = u64::from((self.words[first] & head_mask).count_ones());
        let interior = &self.words[first + 1..last];
        let mut lanes = [0u64; LANES];
        let mut chunks = interior.chunks_exact(LANES);
        for c in &mut chunks {
            lanes[0] += u64::from(c[0].count_ones());
            lanes[1] += u64::from(c[1].count_ones());
            lanes[2] += u64::from(c[2].count_ones());
            lanes[3] += u64::from(c[3].count_ones());
        }
        count += lanes[0] + lanes[1] + lanes[2] + lanes[3];
        for &w in chunks.remainder() {
            count += u64::from(w.count_ones());
        }
        count + u64::from((self.words[last] & tail_mask).count_ones())
    }

    /// Word-stream twin of [`BitVec::and_count`]: counts the set bits of the
    /// intersection of `self` with an operand given as a stream of 64-bit
    /// words (missing trailing words read as zero).
    ///
    /// This is how the chunk-aware kernels consume a
    /// [`crate::segment::ChunkedRow`] without materialising it.
    pub fn and_count_words<I>(&self, other: I) -> u64
    where
        I: IntoIterator<Item = u64>,
    {
        let mut stream = other.into_iter();
        let mut lanes = [0u64; LANES];
        let mut chunks = self.words.chunks_exact(LANES);
        for c in &mut chunks {
            // Pull a full block; a `None` mid-block ends the stream, and the
            // remaining lanes intersect with zero.
            let (b0, b1, b2, b3) = (stream.next(), stream.next(), stream.next(), stream.next());
            lanes[0] += u64::from((c[0] & b0.unwrap_or(0)).count_ones());
            lanes[1] += u64::from((c[1] & b1.unwrap_or(0)).count_ones());
            lanes[2] += u64::from((c[2] & b2.unwrap_or(0)).count_ones());
            lanes[3] += u64::from((c[3] & b3.unwrap_or(0)).count_ones());
            if b3.is_none() {
                return lanes.iter().sum();
            }
        }
        let mut count: u64 = lanes.iter().sum();
        for &a in chunks.remainder() {
            count += u64::from((a & stream.next().unwrap_or(0)).count_ones());
        }
        count
    }

    /// Word-stream twin of [`BitVec::and_into`]: writes the intersection of
    /// `self` with a word-stream operand into `out` (reusing its buffer) and
    /// returns the popcount of the result in the same pass.  The result has
    /// the length of `self`.
    pub fn and_into_words<I>(&self, other: I, out: &mut BitVec) -> u64
    where
        I: IntoIterator<Item = u64>,
    {
        out.words.clear();
        out.words.resize(self.words.len(), 0);
        let mut stream = other.into_iter();
        let mut lanes = [0u64; LANES];
        let mut chunks_d = out.words.chunks_exact_mut(LANES);
        let mut chunks_a = self.words.chunks_exact(LANES);
        let mut exhausted = false;
        for (cd, ca) in (&mut chunks_d).zip(&mut chunks_a) {
            let (b0, b1, b2, b3) = (stream.next(), stream.next(), stream.next(), stream.next());
            let m0 = ca[0] & b0.unwrap_or(0);
            let m1 = ca[1] & b1.unwrap_or(0);
            let m2 = ca[2] & b2.unwrap_or(0);
            let m3 = ca[3] & b3.unwrap_or(0);
            lanes[0] += u64::from(m0.count_ones());
            lanes[1] += u64::from(m1.count_ones());
            lanes[2] += u64::from(m2.count_ones());
            lanes[3] += u64::from(m3.count_ones());
            cd[0] = m0;
            cd[1] = m1;
            cd[2] = m2;
            cd[3] = m3;
            if b3.is_none() {
                exhausted = true;
                break;
            }
        }
        let mut count: u64 = lanes.iter().sum();
        if !exhausted {
            for (dst, &a) in chunks_d
                .into_remainder()
                .iter_mut()
                .zip(chunks_a.remainder())
            {
                let masked = a & stream.next().unwrap_or(0);
                count += u64::from(masked.count_ones());
                *dst = masked;
            }
        }
        out.len = self.len;
        count
    }

    /// Fused intersection of two 64-bit word streams: makes `self` the
    /// `len`-bit vector whose words are `a & b` (missing trailing words read
    /// as zero) and returns its popcount in the same pass.
    ///
    /// This is the kernel behind the chunked-row × chunked-row (and
    /// chunked × flat) intersections of the pinned disk read path, where
    /// *neither* operand exists as a flat vector — both sides stream their
    /// words out of borrowed segment chunks.
    pub fn assign_and_of_words<A, B>(&mut self, len: usize, a: A, b: B) -> u64
    where
        A: IntoIterator<Item = u64>,
        B: IntoIterator<Item = u64>,
    {
        self.words.clear();
        self.words.resize(len.div_ceil(WORD_BITS), 0);
        let mut a = a.into_iter();
        let mut b = b.into_iter();
        let mut lanes = [0u64; LANES];
        let mut chunks = self.words.chunks_exact_mut(LANES);
        for cd in &mut chunks {
            let m0 = a.next().unwrap_or(0) & b.next().unwrap_or(0);
            let m1 = a.next().unwrap_or(0) & b.next().unwrap_or(0);
            let m2 = a.next().unwrap_or(0) & b.next().unwrap_or(0);
            let m3 = a.next().unwrap_or(0) & b.next().unwrap_or(0);
            lanes[0] += u64::from(m0.count_ones());
            lanes[1] += u64::from(m1.count_ones());
            lanes[2] += u64::from(m2.count_ones());
            lanes[3] += u64::from(m3.count_ones());
            cd[0] = m0;
            cd[1] = m1;
            cd[2] = m2;
            cd[3] = m3;
        }
        let mut count: u64 = lanes.iter().sum();
        for dst in chunks.into_remainder() {
            let masked = a.next().unwrap_or(0) & b.next().unwrap_or(0);
            count += u64::from(masked.count_ones());
            *dst = masked;
        }
        self.len = len;
        self.clear_tail();
        count
    }

    /// Drops the first `n` bits, shifting the remainder towards index 0.
    ///
    /// A general in-place prefix-drop primitive (word-by-word, reusing the
    /// existing buffer).  It implemented the window slide when rows were
    /// stored flat — "shifting all columns from Cols 4–6 to Cols 1–3" in the
    /// paper's Example 1 — before the segmented store made slides
    /// append/unlink operations; it is retained (and still benchmarked in
    /// `bitvec_kernels`) for consumers that maintain their own flat rows.
    pub fn drop_prefix(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        if n >= self.len {
            self.words.clear();
            self.len = 0;
            return;
        }
        let new_len = self.len - n;
        let word_shift = n / WORD_BITS;
        let bit_shift = n % WORD_BITS;
        let new_words = new_len.div_ceil(WORD_BITS);
        if bit_shift == 0 {
            self.words.copy_within(word_shift.., 0);
        } else {
            for i in 0..new_words {
                let lo = self.words[i + word_shift];
                let hi = self.words.get(i + word_shift + 1).copied().unwrap_or(0);
                self.words[i] = (lo >> bit_shift) | (hi << (WORD_BITS - bit_shift));
            }
        }
        self.words.truncate(new_words);
        self.len = new_len;
        self.clear_tail();
    }

    /// Appends every bit of `other` after the current contents, preserving
    /// order (`self = self ++ other`).
    ///
    /// This is the row-assembly primitive of the segmented window store: a
    /// row of the live window is the concatenation of its per-batch segments,
    /// and this routine splices one segment onto the row word-by-word (two
    /// shifts and an OR per word) instead of bit-by-bit.
    pub fn extend_from_bitvec(&mut self, other: &BitVec) {
        if other.len == 0 {
            return;
        }
        let shift = self.len % WORD_BITS;
        if shift == 0 {
            self.words.extend_from_slice(&other.words);
            self.len += other.len;
            return;
        }
        self.words.reserve(other.words.len());
        for &word in &other.words {
            // Low bits fill the free space of the current last word (which
            // exists: shift != 0 implies a non-empty vector); high bits
            // spill into a fresh word.
            if let Some(last) = self.words.last_mut() {
                *last |= word << shift;
            }
            self.words.push(word >> (WORD_BITS - shift));
        }
        self.len += other.len;
        self.words.truncate(self.len.div_ceil(WORD_BITS));
        self.clear_tail();
    }

    /// Clears every bit in `[start, end)` without changing the length.
    ///
    /// This is the lazy-eviction primitive of the incremental row cache: when
    /// the window slides, the evicted batch's bits are zeroed in place (word
    /// masks, no shifting) and the physical prefix is only compacted with
    /// [`BitVec::drop_prefix`] once enough dead columns have accumulated.
    pub fn clear_range(&mut self, start: usize, end: usize) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        let first_word = start / WORD_BITS;
        let last_word = (end - 1) / WORD_BITS;
        let head_mask = !(u64::MAX << (start % WORD_BITS));
        let tail_bits = end % WORD_BITS;
        let tail_mask = if tail_bits == 0 {
            0
        } else {
            u64::MAX << tail_bits
        };
        if first_word == last_word {
            self.words[first_word] &= head_mask | tail_mask;
            return;
        }
        self.words[first_word] &= head_mask;
        for word in &mut self.words[first_word + 1..last_word] {
            *word = 0;
        }
        self.words[last_word] &= tail_mask;
    }

    /// The backing 64-bit words (little-endian within each word; bits past
    /// [`BitVec::len`] are always zero).
    ///
    /// Exposed so chunk-level readers ([`crate::segment::ChunkedRow`]) can
    /// stream a row's words without materialising a flat copy.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let base = wi * WORD_BITS;
            let len = self.len;
            let mut w = word;
            std::iter::from_fn(move || {
                while w != 0 {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    let idx = base + bit;
                    if idx < len {
                        return Some(idx);
                    }
                }
                None
            })
        })
    }

    /// Serialises the vector into a compact byte representation (little-endian
    /// length header followed by the words).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.words.len() * 8);
        self.write_bytes(&mut out);
        out
    }

    /// Serialises into `out`, clearing and reusing its buffer (the
    /// allocation-free counterpart of [`BitVec::to_bytes`] used when the
    /// DSMatrix re-serialises every row on a window slide).
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(8 + self.words.len() * 8);
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        for word in &self.words {
            out.extend_from_slice(&word.to_le_bytes());
        }
    }

    /// Reconstructs a vector from [`BitVec::to_bytes`] output.
    ///
    /// Returns `None` if the buffer is truncated or malformed.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut v = Self::new();
        v.read_bytes(bytes).then_some(v)
    }

    /// Deserialises [`BitVec::to_bytes`] output into `self`, reusing the
    /// existing word buffer (the allocation-free counterpart of
    /// [`BitVec::from_bytes`], and the read-side twin of
    /// [`BitVec::write_bytes`]).
    ///
    /// Returns `false` — leaving `self` empty — if the buffer is truncated
    /// or malformed.
    pub fn read_bytes(&mut self, bytes: &[u8]) -> bool {
        self.words.clear();
        self.len = 0;
        if bytes.len() < 8 {
            return false;
        }
        let Ok(header) = bytes[..8].try_into() else {
            return false;
        };
        let len = u64::from_le_bytes(header) as usize;
        let expected_words = len.div_ceil(WORD_BITS);
        let body = &bytes[8..];
        if body.len() != expected_words * 8 {
            return false;
        }
        self.words.extend(body.chunks_exact(8).map(|c| {
            let mut word = [0u8; 8];
            word.copy_from_slice(c);
            u64::from_le_bytes(word)
        }));
        self.len = len;
        self.clear_tail();
        true
    }

    /// Heap bytes used by the word buffer (for memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// Clears bits past `len` in the last word so that equality and popcounts
    /// never observe stale garbage.
    fn clear_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bools(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(pattern: &str) -> BitVec {
        BitVec::from_bools(pattern.chars().map(|c| c == '1'))
    }

    #[test]
    fn push_get_and_len() {
        let v = bv("101100");
        assert_eq!(v.len(), 6);
        assert!(v.get(0));
        assert!(!v.get(1));
        assert!(v.get(3));
        assert!(!v.get(100), "out of range reads are false");
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn set_grows_and_clears() {
        let mut v = BitVec::new();
        v.set(70, true);
        assert_eq!(v.len(), 71);
        assert!(v.get(70));
        v.set(70, false);
        assert!(!v.get(70));
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn intersection_matches_paper_example_5() {
        // Row a = 111110, Row c = 101111 ⇒ a∧c = 101110 with 4 ones.
        let a = bv("111110");
        let c = bv("101111");
        let ac = a.and(&c);
        assert_eq!(format!("{ac:?}"), "BitVec[101110]");
        assert_eq!(ac.count_ones(), 4);
        assert_eq!(a.and_count(&c), 4);
        // Row d = 110011 ⇒ a∧d = 110010 with 3 ones.
        let d = bv("110011");
        assert_eq!(a.and_count(&d), 3);
        // Row f = 110110 ⇒ a∧f = 110110 with 4 ones.
        let f = bv("110110");
        assert_eq!(a.and_count(&f), 4);
    }

    #[test]
    fn and_into_matches_and_and_reuses_the_buffer() {
        let a = bv("111110");
        let c = bv("101111");
        let mut scratch = BitVec::new();
        let count = a.and_into(&c, &mut scratch);
        assert_eq!(scratch, a.and(&c));
        assert_eq!(count, 4);
        // Second use reuses the buffer (and resizes correctly downwards).
        let short = bv("10");
        let count = short.and_into(&c, &mut scratch);
        assert_eq!(scratch, short.and(&c));
        assert_eq!(count, 1);
        assert_eq!(scratch.len(), 2);
        // Longer result than the buffer previously held.
        let long = bv(&"1".repeat(200));
        let count = long.and_into(&long.clone(), &mut scratch);
        assert_eq!(count, 200);
        assert_eq!(scratch.len(), 200);
    }

    #[test]
    fn assign_and_of_words_matches_and_into() {
        let a = bv(&"110".repeat(50));
        let b = bv(&"101".repeat(50));
        let mut expected = BitVec::new();
        let want = a.and_into(&b, &mut expected);
        let mut out = BitVec::new();
        let count = out.assign_and_of_words(
            a.len(),
            a.as_words().iter().copied(),
            b.as_words().iter().copied(),
        );
        assert_eq!(out, expected);
        assert_eq!(count, want);
        // Short streams zero-fill; the result keeps the requested length.
        let count = out.assign_and_of_words(130, a.as_words().iter().copied(), [u64::MAX]);
        assert_eq!(out.len(), 130);
        assert_eq!(count, a.as_words()[0].count_ones() as u64);
    }

    /// Deterministic pseudo-random vector for kernel agreement tests: long
    /// enough to exercise the 4-word unrolled blocks, with a length that
    /// leaves a scalar tail.
    fn lcg_bits(seed: u64, len: usize) -> BitVec {
        let mut state = seed | 1;
        BitVec::from_bools((0..len).map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) & 1 == 1
        }))
    }

    #[test]
    fn unrolled_kernels_match_naive_references_across_lengths() {
        // Lengths straddle every unroll boundary: sub-word, one block,
        // block + tail, many blocks + tail.
        for (la, lb) in [(0, 64), (63, 65), (256, 256), (257, 510), (700, 383)] {
            let a = lcg_bits(la as u64 + 1, la);
            let b = lcg_bits(lb as u64 + 2, lb);
            let naive: u64 = (0..la.min(lb)).filter(|&i| a.get(i) && b.get(i)).count() as u64;
            assert_eq!(a.and_count(&b), naive, "and_count {la}x{lb}");
            assert_eq!(a.and_count_words(b.as_words().iter().copied()), naive);
            let mut out = BitVec::new();
            assert_eq!(a.and_into(&b, &mut out), naive, "and_into {la}x{lb}");
            assert_eq!(out, a.and(&b));
            let mut streamed = BitVec::new();
            assert_eq!(
                a.and_into_words(b.as_words().iter().copied(), &mut streamed),
                naive
            );
            assert_eq!(streamed, out);
            let mut assigned = BitVec::new();
            let count = assigned.assign_and_of_words(
                la.min(lb),
                a.as_words().iter().copied(),
                b.as_words().iter().copied(),
            );
            assert_eq!(count, naive, "assign_and_of_words {la}x{lb}");
        }
    }

    #[test]
    fn count_range_matches_a_bit_loop() {
        let v = lcg_bits(42, 517);
        for (start, end) in [
            (0, 0),
            (0, 517),
            (0, 64),
            (1, 63),
            (63, 65),
            (64, 128),
            (100, 101),
            (130, 517),
            (200, 9999),
            (517, 600),
            (30, 30),
            (40, 12),
        ] {
            let naive = (start..end.min(517)).filter(|&i| v.get(i)).count() as u64;
            assert_eq!(v.count_range(start, end), naive, "range {start}..{end}");
        }
    }

    #[test]
    fn and_with_handles_shorter_operand() {
        let mut a = bv("1111");
        let b = bv("10");
        a.and_with(&b);
        assert_eq!(format!("{a:?}"), "BitVec[1000]");
    }

    #[test]
    fn or_takes_longest_length() {
        let a = bv("101");
        let b = bv("01011");
        let o = a.or(&b);
        assert_eq!(format!("{o:?}"), "BitVec[11111]");
        assert_eq!(o.len(), 5);
        assert_eq!(o.count_ones(), 5);
    }

    #[test]
    fn drop_prefix_small() {
        // Window slide of Example 1: keep the last three columns.
        let mut row_a = bv("011111");
        row_a.drop_prefix(3);
        assert_eq!(format!("{row_a:?}"), "BitVec[111]");
        let mut row_b = bv("000001");
        row_b.drop_prefix(3);
        assert_eq!(format!("{row_b:?}"), "BitVec[001]");
    }

    #[test]
    fn drop_prefix_across_word_boundaries() {
        let mut v = BitVec::zeros(200);
        v.set(0, true);
        v.set(67, true);
        v.set(130, true);
        v.set(199, true);
        v.drop_prefix(65);
        assert_eq!(v.len(), 135);
        assert!(v.get(2)); // was 67
        assert!(v.get(65)); // was 130
        assert!(v.get(134)); // was 199
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn drop_prefix_edge_cases() {
        let mut v = bv("1011");
        v.drop_prefix(0);
        assert_eq!(v.len(), 4);
        v.drop_prefix(10);
        assert!(v.is_empty());
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn clear_range_matches_a_set_loop() {
        let cases = [
            (0usize, 0usize),
            (0, 3),
            (2, 6),
            (0, 64),
            (1, 64),
            (63, 65),
            (64, 128),
            (10, 150),
            (100, 100),
            (190, 400),
        ];
        for (start, end) in cases {
            let mut fast = BitVec::from_bools((0..200).map(|i| i % 3 != 0));
            let mut slow = fast.clone();
            fast.clear_range(start, end);
            for i in start..end.min(200) {
                slow.set(i, false);
            }
            assert_eq!(fast, slow, "range [{start}, {end})");
            assert_eq!(fast.len(), 200);
        }
    }

    #[test]
    fn iter_ones_yields_ascending_indices() {
        let mut v = BitVec::zeros(150);
        for idx in [0, 1, 63, 64, 127, 149] {
            v.set(idx, true);
        }
        let ones: Vec<usize> = v.iter_ones().collect();
        assert_eq!(ones, vec![0, 1, 63, 64, 127, 149]);
    }

    #[test]
    fn extend_from_bitvec_matches_push_loop() {
        let patterns = [
            "",
            "1",
            "0110",
            &"10".repeat(40),
            &"1".repeat(63),
            &"01".repeat(64),
            &"001".repeat(50),
        ];
        for left in patterns {
            for right in patterns {
                let mut fast = bv(left);
                fast.extend_from_bitvec(&bv(right));
                let mut slow = bv(left);
                for c in right.chars() {
                    slow.push(c == '1');
                }
                assert_eq!(fast, slow, "left {left:?} right {right:?}");
                assert_eq!(fast.len(), left.len() + right.len());
            }
        }
    }

    #[test]
    fn extend_from_bitvec_keeps_tail_clean() {
        // A dirty tail would corrupt popcounts and equality; splice at a
        // non-word-aligned boundary and check the invariants.
        let mut v = bv("101");
        v.extend_from_bitvec(&bv(&"1".repeat(130)));
        assert_eq!(v.count_ones(), 132);
        let mut w = v.clone();
        w.resize(v.len());
        assert_eq!(v, w);
    }

    #[test]
    fn roundtrip_bytes() {
        for pattern in ["", "1", "10110", &"101".repeat(50)] {
            let v = bv(pattern);
            let back = BitVec::from_bytes(&v.to_bytes()).unwrap();
            assert_eq!(v, back, "pattern {pattern}");
        }
    }

    #[test]
    fn write_bytes_reuses_buffers_and_roundtrips() {
        let mut buf = Vec::new();
        for pattern in ["", "1", "10110", &"011".repeat(40)] {
            let v = bv(pattern);
            v.write_bytes(&mut buf);
            assert_eq!(buf, v.to_bytes(), "pattern {pattern}");
            assert_eq!(BitVec::from_bytes(&buf).unwrap(), v);
        }
    }

    #[test]
    fn from_bytes_rejects_malformed_input() {
        assert!(BitVec::from_bytes(&[1, 2, 3]).is_none());
        let mut bytes = bv("1111").to_bytes();
        bytes.pop();
        assert!(BitVec::from_bytes(&bytes).is_none());
    }

    #[test]
    fn zeros_and_resize() {
        let mut v = BitVec::zeros(10);
        assert_eq!(v.len(), 10);
        assert_eq!(v.count_ones(), 0);
        v.set(9, true);
        v.resize(5);
        assert_eq!(v.len(), 5);
        assert_eq!(v.count_ones(), 0, "truncated bits must not linger");
        v.resize(80);
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn heap_bytes_accounts_for_words() {
        let v = BitVec::zeros(1024);
        assert!(v.heap_bytes() >= 1024 / 8);
    }
}
