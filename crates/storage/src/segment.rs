//! An append-friendly, window-aligned row store: one immutable segment per
//! batch.
//!
//! The DSMatrix conceptually extends every row by one bit per incoming
//! transaction and drops a prefix of every row when the window slides.  Doing
//! that literally rewrites `O(rows × window columns)` cells on every slide.
//! This store instead keeps the window as a queue of **batch segments**: each
//! ingested batch becomes one immutable segment holding, for every row that
//! has at least one set bit in the batch, that row's bit chunk for the
//! batch's columns.  A window slide is then
//!
//! * **append** one new segment (cost: only the rows the batch touches), and
//! * **drop** the oldest segment (cost: one file/map removal),
//!
//! so capture cost is `O(rows touched by the new batch + evicted columns)`
//! and unevicted row prefixes are never rewritten.
//!
//! # Read surface
//!
//! The write side has always been incremental; this module also keeps the
//! *read* side from paying full-window cost:
//!
//! * On the memory backend, segments hold decoded [`BitVec`] chunks, so
//!   readers can borrow a row's per-segment chunks **zero-copy**
//!   ([`SegmentedWindowStore::chunked_row`], returning a [`ChunkedRow`]) or a
//!   single segment's chunks directly
//!   ([`SegmentedWindowStore::segment_chunks`]).  A [`ChunkedRow`] streams
//!   the logical row's 64-bit words across segment boundaries with zero-fill
//!   for segments that never saw the row, and the chunk-aware kernels
//!   [`BitVec::and_count_chunked`] / [`BitVec::and_into_chunked`] consume
//!   that stream without materialising the row.
//! * On the disk backends chunk reads go through a budgeted decoded-chunk
//!   cache ([`crate::ChunkCache`],
//!   [`SegmentedWindowStore::set_cache_budget`]): segments are immutable, so
//!   cached chunks stay valid until their segment is popped, and with a
//!   budget covering the touched working set a steady-state scan re-fetches
//!   only the pages a window slide invalidated.  Disk rows can be read two
//!   ways: **pinned borrows** ([`SegmentedWindowStore::pin_row_chunks`] +
//!   [`SegmentedWindowStore::pinned_chunked_row`]) pin a row's chunks in the
//!   cache for the duration of a mine and lend them out as a [`ChunkedRow`]
//!   — no flat copy at all; every `push_segment`/`pop_segment` releases the
//!   pins, and a stale-generation borrow is refused — while
//!   [`SegmentedWindowStore::assemble_row`] eagerly concatenates the chunks
//!   into a flat row ([`BitVec::extend_from_bitvec`]), the fallback when a
//!   row's chunks do not fit the pin budget.  Page fetches and cache hits
//!   are counted in [`ReadIoStats`] ([`SegmentedWindowStore::io_stats`]); a
//!   zero budget (the default) disables the cache and reproduces fully-eager
//!   reads byte for byte.
//! * [`SegmentedWindowStore::generation`] is a monotonic counter bumped by
//!   every segment append or drop, so cached derivations of the window (the
//!   DSMatrix row cache) can tag themselves with the store state they
//!   reflect.
//!
//! Every write is counted in [`CaptureStats`], which is how the benchmark
//! harness (and the slide-cost tests) assert the incremental behaviour
//! instead of merely hoping for it.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::bitvec::BitVec;
use crate::chunkcache::{ChunkCache, ChunkCacheStats};
use crate::rowstore::{RowStore, StorageBackend};
use crate::temp::TempDir;
use fsm_types::{FsmError, Result};

const WORD_BITS: usize = 64;

/// Pages a row of `len` serialised bytes occupies (what one uncached read of
/// it fetches from the paged file).
fn pages_for(len: usize, page_size: usize) -> u64 {
    len.div_ceil(page_size) as u64
}

/// Cumulative capture-cost counters of a [`SegmentedWindowStore`].
///
/// `words_written` is the number of 64-bit words (including the 8-byte row
/// headers) serialised into the store since it was opened.  Differencing the
/// counter across two `push_segment` calls gives the exact write cost of one
/// window slide — the quantity the incremental design keeps proportional to
/// the entering batch rather than to the whole window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureStats {
    /// 64-bit words serialised into the store (row payloads + headers).
    pub words_written: u64,
    /// Individual row chunks written.
    pub rows_written: u64,
    /// Segments appended (one per ingested batch).
    pub segments_written: u64,
    /// Segments dropped by window eviction.
    pub segments_dropped: u64,
}

/// Cumulative read-side I/O counters of a [`SegmentedWindowStore`]'s disk
/// backends (always zero on the memory backend, whose chunks are borrowed).
///
/// `pages_read` counts the paged-file fetches chunk reads performed;
/// differencing it across a mine call measures that call's disk read
/// amplification the same way [`CaptureStats::words_written`] measures write
/// amplification.  With a [`ChunkCache`] budget covering the touched working
/// set, steady-state reads hit the cache and the per-mine page count drops to
/// the chunks a window slide invalidated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadIoStats {
    /// Disk pages fetched by chunk reads (cache misses and uncached reads).
    pub pages_read: u64,
    /// Chunk reads served from the decoded-chunk cache.
    pub cache_hits: u64,
    /// Chunk reads an *enabled* cache failed to serve (and therefore went to
    /// the paged file).  Always zero when the cache is disabled (budget 0):
    /// uncached reads show up only in `pages_read`.
    pub cache_misses: u64,
}

/// Durable metadata of one live segment, as recorded by a checkpoint and
/// consumed by [`SegmentedWindowStore::restore`].
///
/// Segment files are immutable once written, so this — the uid, the column
/// count and the row index — is all a checkpoint has to persist; the row
/// payloads stay where they are.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Stable uid of the segment (names its file `seg-<uid>.pages`).
    pub uid: u64,
    /// Number of window columns the segment contributes.
    pub cols: usize,
    /// Row index entries `(row id, first page, byte length)`.
    pub rows: Vec<(usize, usize, usize)>,
}

/// Lists the segment files (`seg-<uid>.pages`) in `dir` as `(uid, path)`
/// pairs.  Checksum sidecars are not listed; they travel with their file.
pub fn scan_segment_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(uid) = name
            .strip_prefix("seg-")
            .and_then(|rest| rest.strip_suffix(".pages"))
            .and_then(|uid| uid.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((uid, path));
    }
    out.sort_unstable();
    Ok(out)
}

/// Removes a segment file and its checksum sidecar (a missing sidecar is
/// tolerated: a crash can land between creating the two).
pub fn remove_segment_file(path: &Path) -> Result<()> {
    std::fs::remove_file(path)?;
    let sidecar = crate::paged::PagedFile::checksum_path(path);
    match std::fs::remove_file(&sidecar) {
        Ok(()) => Ok(()),
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(err) => Err(err.into()),
    }
}

/// One immutable, fully-decoded window segment, shareable across threads.
///
/// This is the unit an epoch snapshot holds: every live segment of the window
/// is published as an `Arc<EpochSegment>`, so readers keep the segment's data
/// alive for exactly as long as they reference it — a window slide drops the
/// *store's* `Arc` (and, on the disk backends, unlinks the backing file), but
/// the decoded rows survive until the last snapshot referencing the epoch is
/// dropped.  Segments are immutable once built, so sharing needs no locks:
/// `EpochSegment` is `Send + Sync` by construction.
///
/// On the memory backend the live segments *are* `EpochSegment`s (snapshots
/// are free `Arc` clones); on the disk backends a segment is decoded into
/// this form once, on the first snapshot that covers it, and memoised for
/// every later epoch (see [`SegmentedWindowStore::epoch_segment`]).
#[derive(Debug)]
pub struct EpochSegment {
    /// Stable uid of the segment (never reused; matches the chunk-cache key).
    uid: u64,
    /// Number of window columns (transactions) the segment contributes.
    cols: usize,
    /// Row chunks of the segment; rows without a set bit are absent.
    rows: BTreeMap<usize, BitVec>,
}

impl EpochSegment {
    /// The segment's stable uid (never reused across the store's lifetime).
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Number of window columns the segment contributes.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the chunk of row `id`, or `None` if the segment never saw the
    /// row (its span reads as zeros).
    pub fn chunk(&self, id: usize) -> Option<&BitVec> {
        self.rows.get(&id)
    }

    /// Iterates the `(row id, chunk)` pairs in ascending row order.
    pub fn rows(&self) -> impl Iterator<Item = (usize, &BitVec)> {
        self.rows.iter().map(|(id, chunk)| (*id, chunk))
    }

    /// Number of rows the segment holds a chunk for.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Heap bytes of the decoded chunks (shared across every epoch that
    /// references the segment, not per snapshot).
    pub fn heap_bytes(&self) -> usize {
        self.rows
            .values()
            .map(|chunk| chunk.heap_bytes() + std::mem::size_of::<usize>() * 2)
            .sum()
    }
}

enum SegmentRows {
    /// Memory backend: decoded chunks, borrowable zero-copy and shared with
    /// epoch snapshots via `Arc`.
    Memory(Arc<EpochSegment>),
    /// Disk backends: serialised chunks in a paged file, plus the memoised
    /// decoded form the first covering snapshot produced (segments are
    /// immutable, so the memo can never go stale).
    Disk {
        store: RowStore,
        decoded: Option<Arc<EpochSegment>>,
    },
}

struct Segment {
    /// Stable uid of this segment (the chunk-cache key; never reused).
    id: u64,
    /// Number of window columns (transactions) this segment contributes.
    cols: usize,
    /// Row chunks of the segment; rows without a set bit are absent.
    rows: SegmentRows,
    /// Backing file to delete on eviction (disk backends only).
    path: Option<PathBuf>,
}

enum Placement {
    Memory,
    Disk {
        dir: PathBuf,
        /// Keeps the self-cleaning directory alive for `DiskTemp`.
        _tempdir: Option<TempDir>,
    },
}

/// A queue of per-batch row segments backing one sliding window.
///
/// All three [`StorageBackend`]s are supported: `Memory` keeps segments as
/// decoded chunk maps (zero-copy readable), the disk backends write one paged
/// file per segment (so eviction is one `unlink`, never a rewrite of
/// surviving data).
pub struct SegmentedWindowStore {
    placement: Placement,
    segments: VecDeque<Segment>,
    next_id: u64,
    page_size: usize,
    stats: CaptureStats,
    generation: u64,
    /// Reusable (de)serialisation buffer for row chunks.
    buf: Vec<u8>,
    /// Reusable decoded chunk for [`SegmentedWindowStore::assemble_row`].
    chunk: BitVec,
    /// Budgeted decoded-chunk cache over the disk segments (disabled — and
    /// never consulted — with a zero budget or on the memory backend).
    cache: ChunkCache,
    /// Disk pages fetched by chunk reads so far.
    pages_read: u64,
    /// Segment uids pinned so far for the row currently being pinned
    /// (reused across [`SegmentedWindowStore::pin_row_chunks`] calls so a
    /// full-window pin pass performs no steady-state allocation).
    pin_scratch: Vec<u64>,
}

impl SegmentedWindowStore {
    /// Page size of the per-segment files.  Segments hold per-batch chunks
    /// (much smaller than whole-window rows), so the pages are smaller than
    /// [`crate::PagedFile::DEFAULT_PAGE_SIZE`].
    pub const SEGMENT_PAGE_SIZE: usize = 1024;

    /// Opens a store with the given backend.
    pub fn open(backend: StorageBackend) -> Result<Self> {
        let placement = match backend {
            StorageBackend::Memory => Placement::Memory,
            StorageBackend::DiskTemp => {
                let tempdir = TempDir::new("segstore")?;
                Placement::Disk {
                    dir: tempdir.path().to_path_buf(),
                    _tempdir: Some(tempdir),
                }
            }
            StorageBackend::DiskAt(path) => {
                std::fs::create_dir_all(&path)?;
                // Opening a fresh store at an explicit path is an explicit
                // truncation of whatever a previous run left there: stale
                // segment files would collide with the uids this store is
                // about to assign.  Recovery goes through
                // [`SegmentedWindowStore::restore`] instead, which *keeps*
                // referenced files.
                for (_, stale) in scan_segment_files(&path)? {
                    remove_segment_file(&stale)?;
                }
                Placement::Disk {
                    dir: path,
                    _tempdir: None,
                }
            }
        };
        Ok(Self {
            placement,
            segments: VecDeque::new(),
            next_id: 0,
            page_size: Self::SEGMENT_PAGE_SIZE,
            stats: CaptureStats::default(),
            generation: 0,
            buf: Vec::new(),
            chunk: BitVec::new(),
            cache: ChunkCache::new(0),
            pages_read: 0,
            pin_scratch: Vec::new(),
        })
    }

    /// Sets the decoded-chunk cache budget in bytes (`0` disables caching,
    /// reproducing fully-eager disk reads).  Shrinking the budget evicts
    /// immediately.  The memory backend ignores the budget: its chunks are
    /// already resident and borrowed zero-copy.
    pub fn set_cache_budget(&mut self, budget_bytes: usize) {
        if self.is_memory_resident() {
            return;
        }
        self.cache.set_budget(budget_bytes);
    }

    /// The configured decoded-chunk cache budget in bytes.
    pub fn cache_budget(&self) -> usize {
        self.cache.budget_bytes()
    }

    /// The chunk cache's cumulative hit/miss/eviction counters.
    pub fn cache_stats(&self) -> ChunkCacheStats {
        self.cache.stats()
    }

    /// The cumulative read-side I/O counters (see [`ReadIoStats`]).
    pub fn io_stats(&self) -> ReadIoStats {
        let cache = self.cache.stats();
        ReadIoStats {
            pages_read: self.pages_read,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
        }
    }

    /// Returns `true` if segment payloads live in main memory.
    pub fn is_memory_resident(&self) -> bool {
        matches!(self.placement, Placement::Memory)
    }

    /// Number of live segments (batches in the window).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total number of columns across all live segments.
    pub fn num_cols(&self) -> usize {
        self.segments.iter().map(|s| s.cols).sum()
    }

    /// Monotonic counter bumped by every [`SegmentedWindowStore::push_segment`]
    /// and [`SegmentedWindowStore::pop_segment`].
    ///
    /// Readers that cache a derivation of the window (assembled rows, support
    /// counters) tag the cache with the generation it was computed at; a
    /// mismatch means the window changed underneath them.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The cumulative capture-cost counters.
    pub fn stats(&self) -> CaptureStats {
        self.stats
    }

    /// Appends one segment of `cols` columns whose touched rows are given as
    /// `(row id, bit chunk)` pairs.  Chunks must be exactly `cols` bits long.
    ///
    /// This is the only write path of the store; its cost — and the counter
    /// increments it performs — are proportional to the chunks passed in,
    /// never to data already stored.
    pub fn push_segment<'a, I>(&mut self, cols: usize, rows: I) -> Result<()>
    where
        I: IntoIterator<Item = (usize, &'a BitVec)>,
    {
        // The window is changing: outstanding chunk pins belong to the old
        // generation and must not outlive it.  (Epoch snapshots are immune:
        // they own `Arc`s into the segments, not cache pins.)
        self.cache.release_pins();
        let id = self.next_id;
        self.next_id += 1;
        let (segment_rows, path) = match &self.placement {
            Placement::Memory => {
                let mut map = BTreeMap::new();
                for (row, chunk) in rows {
                    debug_assert_eq!(chunk.len(), cols, "row chunk must span the segment");
                    self.stats.rows_written += 1;
                    // One header word plus the payload words — identical for
                    // both backends so the slide-cost tables are
                    // backend-independent.
                    self.stats.words_written += 1 + chunk.len().div_ceil(WORD_BITS) as u64;
                    map.insert(row, chunk.clone());
                }
                let segment = EpochSegment {
                    uid: id,
                    cols,
                    rows: map,
                };
                (SegmentRows::Memory(Arc::new(segment)), None)
            }
            Placement::Disk { dir, .. } => {
                let path = dir.join(format!("seg-{id}.pages"));
                let mut store =
                    RowStore::with_page_size(StorageBackend::DiskAt(path.clone()), self.page_size)?;
                for (row, chunk) in rows {
                    debug_assert_eq!(chunk.len(), cols, "row chunk must span the segment");
                    chunk.write_bytes(&mut self.buf);
                    store.put_row(row, &self.buf)?;
                    self.stats.rows_written += 1;
                    self.stats.words_written += 1 + chunk.len().div_ceil(WORD_BITS) as u64;
                }
                (
                    SegmentRows::Disk {
                        store,
                        decoded: None,
                    },
                    Some(path),
                )
            }
        };
        self.stats.segments_written += 1;
        self.generation += 1;
        self.segments.push_back(Segment {
            id,
            cols,
            rows: segment_rows,
            path,
        });
        Ok(())
    }

    /// Drops the oldest segment, returning how many columns left with it.
    ///
    /// Surviving segments are untouched: for the disk backends this is one
    /// file removal, not a compaction rewrite.
    pub fn pop_segment(&mut self) -> Result<usize> {
        let segment = self
            .segments
            .pop_front()
            .ok_or_else(|| FsmError::corrupt("pop_segment on an empty window"))?;
        let cols = segment.cols;
        let path = segment.path.clone();
        // The window is changing: pins of the old generation are void, and
        // the popped segment's cached chunks can never be read again (its
        // uid is not reused, and the window columns it covered are gone).
        self.cache.release_pins();
        self.cache.invalidate_segment(segment.id);
        // Close the row store (drops its file handle) before unlinking.
        drop(segment);
        if let Some(path) = path {
            remove_segment_file(&path)?;
        }
        self.stats.segments_dropped += 1;
        self.generation += 1;
        Ok(cols)
    }

    /// Drops the oldest segment like [`SegmentedWindowStore::pop_segment`],
    /// but *keeps its backing file on disk*, returning `(columns, uid, path)`.
    ///
    /// Durable windows evict through this path: an evicted segment's file may
    /// still be referenced by a retained checkpoint, so its removal must be
    /// deferred until the next checkpoint proves it unreferenced.  The caller
    /// owns the returned path and is responsible for eventually unlinking it
    /// (via [`remove_segment_file`]).
    pub fn pop_segment_detached(&mut self) -> Result<(usize, Option<(u64, PathBuf)>)> {
        let segment = self
            .segments
            .pop_front()
            .ok_or_else(|| FsmError::corrupt("pop_segment on an empty window"))?;
        let cols = segment.cols;
        let uid = segment.id;
        let path = segment.path.clone();
        self.cache.release_pins();
        self.cache.invalidate_segment(uid);
        drop(segment);
        self.stats.segments_dropped += 1;
        self.generation += 1;
        Ok((cols, path.map(|p| (uid, p))))
    }

    /// Restores a disk-backed store from checkpointed segment metadata.
    ///
    /// Every entry of `metas` must name a segment file `seg-<uid>.pages` in
    /// `dir` (verified checksummed pages; contents validated lazily on read
    /// or eagerly via [`SegmentedWindowStore::verify_segments`]).  Segment
    /// files with a uid at or above `next_id` are crash leftovers — they were
    /// created by batches the checkpoint does not cover, and WAL replay will
    /// re-create them — so they are removed here.  Unreferenced files *below*
    /// `next_id` may belong to an older retained checkpoint and are left for
    /// the caller to garbage-collect once a new checkpoint commits.
    pub fn restore(dir: PathBuf, metas: &[SegmentMeta], next_id: u64) -> Result<Self> {
        std::fs::create_dir_all(&dir)?;
        for (uid, stale) in scan_segment_files(&dir)? {
            if uid >= next_id {
                remove_segment_file(&stale)?;
            }
        }
        let mut segments = VecDeque::with_capacity(metas.len());
        for meta in metas {
            if meta.uid >= next_id {
                return Err(FsmError::corrupt(format!(
                    "checkpointed segment uid {} is not below next uid {next_id}",
                    meta.uid
                )));
            }
            let path = dir.join(format!("seg-{}.pages", meta.uid));
            let store = RowStore::open_existing(
                path.clone(),
                Self::SEGMENT_PAGE_SIZE,
                meta.rows.iter().copied(),
            )?;
            segments.push_back(Segment {
                id: meta.uid,
                cols: meta.cols,
                rows: SegmentRows::Disk {
                    store,
                    decoded: None,
                },
                path: Some(path),
            });
        }
        Ok(Self {
            placement: Placement::Disk {
                dir,
                _tempdir: None,
            },
            segments,
            next_id,
            page_size: Self::SEGMENT_PAGE_SIZE,
            stats: CaptureStats::default(),
            generation: 0,
            buf: Vec::new(),
            chunk: BitVec::new(),
            cache: ChunkCache::new(0),
            pages_read: 0,
            pin_scratch: Vec::new(),
        })
    }

    /// Exports the live segments as checkpoint metadata, oldest first.
    ///
    /// Returns `None` on the memory backend, which has no durable form.
    pub fn segment_metas(&self) -> Option<Vec<SegmentMeta>> {
        self.segments
            .iter()
            .map(|segment| match &segment.rows {
                SegmentRows::Memory(_) => None,
                SegmentRows::Disk { store, .. } => Some(SegmentMeta {
                    uid: segment.id,
                    cols: segment.cols,
                    rows: store.row_entries()?,
                }),
            })
            .collect()
    }

    /// Verifies the page checksums of every live segment file.  The error
    /// names the first corrupt page and its file.
    pub fn verify_segments(&mut self) -> Result<()> {
        for segment in &mut self.segments {
            if let SegmentRows::Disk { store, .. } = &mut segment.rows {
                store.verify_pages()?;
            }
        }
        Ok(())
    }

    /// Forces every live segment with uid `>= min_uid` to stable storage,
    /// returning the number of `fsync` system calls issued.
    ///
    /// Checkpointing calls this with the watermark of the last checkpoint:
    /// older segments were already synced then and are immutable, so only the
    /// files created since need an `fsync`.
    pub fn sync_segments(&mut self, min_uid: u64) -> Result<u64> {
        let mut fsyncs = 0;
        for segment in &mut self.segments {
            if segment.id < min_uid {
                continue;
            }
            if let SegmentRows::Disk { store, .. } = &mut segment.rows {
                fsyncs += store.sync_all()?;
            }
        }
        Ok(fsyncs)
    }

    /// The uid the next pushed segment will receive (never reused).
    pub fn next_segment_id(&self) -> u64 {
        self.next_id
    }

    /// Uids of the live segments, oldest first.
    pub fn live_uids(&self) -> Vec<u64> {
        self.segments.iter().map(|s| s.id).collect()
    }

    /// Materialises row `id` of the live window into `out` (cleared first):
    /// the concatenation of the row's chunk in every live segment, with
    /// zero-fill where a segment never saw the row.  The result is always
    /// exactly [`SegmentedWindowStore::num_cols`] bits long.
    ///
    /// This is the eager read path; memory-backend readers that only need to
    /// scan or intersect the row should prefer the zero-copy
    /// [`SegmentedWindowStore::chunked_row`].
    pub fn assemble_row(&mut self, id: usize, out: &mut BitVec) -> Result<()> {
        out.resize(0);
        // Split borrows: the queue, the byte buffer, the decoded chunk and
        // the cache are disjoint fields reused across calls, so a scan over
        // many rows performs no steady-state allocation.
        let Self {
            segments,
            buf,
            chunk,
            cache,
            pages_read,
            page_size,
            ..
        } = self;
        for segment in segments.iter_mut() {
            match &mut segment.rows {
                SegmentRows::Memory(seg) => match seg.chunk(id) {
                    Some(chunk) => out.extend_from_bitvec(chunk),
                    None => out.resize(out.len() + segment.cols),
                },
                SegmentRows::Disk { store, .. } => {
                    if store.contains_row(id) {
                        if let Some(cached) = cache.get(segment.id, id) {
                            out.extend_from_bitvec(cached);
                            continue;
                        }
                        store.get_row_into(id, buf)?;
                        *pages_read += pages_for(buf.len(), *page_size);
                        if !chunk.read_bytes(buf) {
                            return Err(FsmError::corrupt(format!(
                                "row {id} chunk failed to deserialise"
                            )));
                        }
                        cache.insert(segment.id, id, chunk);
                        out.extend_from_bitvec(chunk);
                    } else {
                        out.resize(out.len() + segment.cols);
                    }
                }
            }
        }
        Ok(())
    }

    /// Borrows row `id` as a zero-copy [`ChunkedRow`] over the live segments.
    ///
    /// Returns `None` on the disk backends, whose chunks are not
    /// memory-resident — callers fall back to
    /// [`SegmentedWindowStore::assemble_row`].
    pub fn chunked_row(&self, id: usize) -> Option<ChunkedRow<'_>> {
        if !self.is_memory_resident() {
            return None;
        }
        let mut parts = Vec::with_capacity(self.segments.len());
        let mut len = 0;
        for segment in &self.segments {
            let chunk = match &segment.rows {
                SegmentRows::Memory(seg) => seg.chunk(id),
                SegmentRows::Disk { .. } => {
                    unreachable!("memory placement holds memory segments")
                }
            };
            len += segment.cols;
            parts.push((segment.cols, chunk));
        }
        Some(ChunkedRow { parts, len })
    }

    /// Pins row `id`'s chunks in the decoded-chunk cache for the duration of
    /// a mine: every live segment that holds the row has its chunk fetched
    /// (on a cache miss) and shielded from eviction until the pins are
    /// released — by [`SegmentedWindowStore::release_pins`], or automatically
    /// by the next `push_segment`/`pop_segment` (a window slide invalidates
    /// borrows).
    ///
    /// Returns `Ok(true)` when every chunk of the row is pinned, after which
    /// [`SegmentedWindowStore::pinned_chunked_row`] can borrow the row
    /// zero-copy.  Returns `Ok(false)` — unpinning whatever this call pinned,
    /// so other rows can use the budget — when the row's chunks do not fit
    /// the remaining pin budget (or on the memory backend / with a disabled
    /// cache, where the pinned path does not apply); the caller falls back to
    /// eager assembly for that row.
    pub fn pin_row_chunks(&mut self, id: usize) -> Result<bool> {
        if self.is_memory_resident() || !self.cache.is_enabled() {
            return Ok(false);
        }
        let Self {
            segments,
            buf,
            chunk,
            cache,
            pages_read,
            page_size,
            pin_scratch,
            ..
        } = self;
        pin_scratch.clear();
        for segment in segments.iter_mut() {
            let SegmentRows::Disk { store, .. } = &mut segment.rows else {
                unreachable!("disk placement holds disk segments");
            };
            if !store.contains_row(id) {
                continue;
            }
            if cache.pin(segment.id, id) {
                pin_scratch.push(segment.id);
                continue;
            }
            if cache.peek(segment.id, id).is_some() {
                // Cached but unpinnable: the pin budget is exhausted, so the
                // row cannot be pinned whole — give up without touching the
                // disk (the chunk stays warm for the eager fallback).
                for &seg in pin_scratch.iter() {
                    cache.unpin(seg, id);
                }
                return Ok(false);
            }
            store.get_row_into(id, buf)?;
            *pages_read += pages_for(buf.len(), *page_size);
            if !chunk.read_bytes(buf) {
                return Err(FsmError::corrupt(format!(
                    "row {id} chunk failed to deserialise"
                )));
            }
            if cache.insert_pinned(segment.id, id, chunk) {
                pin_scratch.push(segment.id);
            } else {
                // Keep the freshly-decoded chunk warm (unpinned) for the
                // eager fallback, and hand this row's partial pins back.
                cache.insert(segment.id, id, chunk);
                for &seg in pin_scratch.iter() {
                    cache.unpin(seg, id);
                }
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Borrows row `id` as a zero-copy [`ChunkedRow`] over the chunks a
    /// successful [`SegmentedWindowStore::pin_row_chunks`] pinned.
    ///
    /// `pinned_at` must be the store [`SegmentedWindowStore::generation`] the
    /// pins were taken under; a mismatch means the window slid underneath the
    /// borrow (slides release every pin) and is reported as corruption rather
    /// than serving stale chunks.
    ///
    /// Each borrow allocates the row's part list — O(live segments) pointer
    /// pairs, once per row per mine, same as the memory backend's
    /// [`SegmentedWindowStore::chunked_row`].  The chunks themselves are
    /// never copied; a reusable arena would need the parts to outlive the
    /// `&self` borrow they capture, which safe Rust cannot express here.
    pub fn pinned_chunked_row(&self, id: usize, pinned_at: u64) -> Result<ChunkedRow<'_>> {
        if self.generation != pinned_at {
            return Err(FsmError::corrupt(format!(
                "pinned row {id} borrowed at generation {pinned_at}, window is at {}",
                self.generation
            )));
        }
        let mut parts = Vec::with_capacity(self.segments.len());
        for segment in &self.segments {
            let chunk = match &segment.rows {
                SegmentRows::Memory(seg) => seg.chunk(id),
                SegmentRows::Disk { store, .. } => {
                    if store.contains_row(id) {
                        Some(self.cache.peek(segment.id, id).ok_or_else(|| {
                            FsmError::corrupt(format!(
                                "pinned chunk of row {id} missing from the cache"
                            ))
                        })?)
                    } else {
                        None
                    }
                }
            };
            parts.push((segment.cols, chunk));
        }
        Ok(ChunkedRow::from_parts(parts))
    }

    /// Releases every chunk pin taken by
    /// [`SegmentedWindowStore::pin_row_chunks`].  The chunks stay cached —
    /// the next mine re-pins them without touching the disk — they merely
    /// become evictable again.
    pub fn release_pins(&mut self) {
        self.cache.release_pins();
    }

    /// Publishes segment `seg` (0 = oldest live) as a shared
    /// [`EpochSegment`] handle — the building block of an epoch snapshot.
    ///
    /// On the memory backend this is a free `Arc` clone of the live segment.
    /// On the disk backends the segment is decoded in full on the first call
    /// (chunks warm in the [`ChunkCache`] are served from it and counted as
    /// hits; cold chunks pay their page fetches) and the decoded form is
    /// memoised on the segment, so in the steady state a new epoch only
    /// decodes the segment the latest slide appended.  The decoded rows are
    /// *owned by the returned handle*, not pinned in the shared cache:
    /// budget changes, slides and pin churn on the writer side can never
    /// invalidate them, and the memory is reclaimed when the store drops the
    /// segment (window slide) *and* the last snapshot referencing it is
    /// dropped.
    pub fn epoch_segment(&mut self, seg: usize) -> Result<Arc<EpochSegment>> {
        let Self {
            segments,
            buf,
            chunk,
            cache,
            pages_read,
            page_size,
            ..
        } = self;
        let segment = segments
            .get_mut(seg)
            .ok_or_else(|| FsmError::corrupt(format!("segment {seg} out of range")))?;
        let uid = segment.id;
        let cols = segment.cols;
        match &mut segment.rows {
            SegmentRows::Memory(seg) => Ok(Arc::clone(seg)),
            SegmentRows::Disk { store, decoded } => {
                if let Some(seg) = decoded {
                    return Ok(Arc::clone(seg));
                }
                let ids: Vec<usize> = store.row_ids().collect();
                let mut rows = BTreeMap::new();
                for id in ids {
                    if let Some(cached) = cache.get(uid, id) {
                        rows.insert(id, cached.clone());
                        continue;
                    }
                    store.get_row_into(id, buf)?;
                    *pages_read += pages_for(buf.len(), *page_size);
                    if !chunk.read_bytes(buf) {
                        return Err(FsmError::corrupt(format!(
                            "row {id} chunk failed to deserialise"
                        )));
                    }
                    rows.insert(id, chunk.clone());
                }
                let segment = Arc::new(EpochSegment { uid, cols, rows });
                *decoded = Some(Arc::clone(&segment));
                Ok(segment)
            }
        }
    }

    /// Number of columns contributed by segment `seg` (0 = oldest live).
    pub fn segment_cols(&self, seg: usize) -> Option<usize> {
        self.segments.get(seg).map(|s| s.cols)
    }

    /// Borrows the `(row id, chunk)` pairs of segment `seg` in ascending row
    /// order — the zero-copy way to scan one batch's touched rows.
    ///
    /// Returns `None` on the disk backends (use
    /// [`SegmentedWindowStore::segment_row_ids`] +
    /// [`SegmentedWindowStore::read_segment_chunk`] there) or if `seg` is out
    /// of range.
    pub fn segment_chunks(
        &self,
        seg: usize,
    ) -> Option<impl Iterator<Item = (usize, &BitVec)> + '_> {
        match &self.segments.get(seg)?.rows {
            SegmentRows::Memory(segment) => Some(segment.rows()),
            SegmentRows::Disk { .. } => None,
        }
    }

    /// The row ids segment `seg` holds a chunk for, in ascending order (works
    /// on every backend; for disk segments this reads only the in-memory
    /// index).
    pub fn segment_row_ids(&self, seg: usize) -> Option<Vec<usize>> {
        match &self.segments.get(seg)?.rows {
            SegmentRows::Memory(segment) => Some(segment.rows().map(|(id, _)| id).collect()),
            SegmentRows::Disk { store, .. } => Some(store.row_ids().collect()),
        }
    }

    /// Reads the chunk of row `id` in segment `seg` into `out` (cleared
    /// first).  Returns `Ok(false)` — leaving `out` empty — if the segment
    /// never saw the row.
    pub fn read_segment_chunk(&mut self, seg: usize, id: usize, out: &mut BitVec) -> Result<bool> {
        let Self {
            segments,
            buf,
            cache,
            pages_read,
            page_size,
            ..
        } = self;
        let segment = segments
            .get_mut(seg)
            .ok_or_else(|| FsmError::corrupt(format!("segment {seg} out of range")))?;
        out.resize(0);
        match &mut segment.rows {
            SegmentRows::Memory(seg) => match seg.chunk(id) {
                Some(chunk) => {
                    out.extend_from_bitvec(chunk);
                    Ok(true)
                }
                None => Ok(false),
            },
            SegmentRows::Disk { store, .. } => {
                if !store.contains_row(id) {
                    return Ok(false);
                }
                if let Some(cached) = cache.get(segment.id, id) {
                    out.extend_from_bitvec(cached);
                    return Ok(true);
                }
                store.get_row_into(id, buf)?;
                *pages_read += pages_for(buf.len(), *page_size);
                if !out.read_bytes(buf) {
                    return Err(FsmError::corrupt(format!(
                        "row {id} chunk failed to deserialise"
                    )));
                }
                cache.insert(segment.id, id, out);
                Ok(true)
            }
        }
    }

    /// Maps a live-window column to `(segment index, column offset within the
    /// segment)`.  Returns `None` when `col` is past the window.
    pub fn locate_column(&self, col: usize) -> Option<(usize, usize)> {
        let mut start = 0;
        for (seg, segment) in self.segments.iter().enumerate() {
            if col < start + segment.cols {
                return Some((seg, col - start));
            }
            start += segment.cols;
        }
        None
    }

    /// Bytes held in main memory: for the memory backend the payloads, for
    /// the disk backends the per-segment row indexes plus whatever the
    /// decoded-chunk cache currently pins (bounded by its budget).
    pub fn resident_bytes(&self) -> usize {
        self.cache.used_bytes()
            + self
                .segments
                .iter()
                .map(|s| {
                    let rows = match &s.rows {
                        SegmentRows::Memory(segment) => segment.heap_bytes(),
                        SegmentRows::Disk { store, decoded } => {
                            store.resident_bytes()
                                + decoded.as_ref().map_or(0, |seg| seg.heap_bytes())
                        }
                    };
                    rows + std::mem::size_of::<Segment>()
                })
                .sum::<usize>()
    }

    /// Bytes held on disk across all live segments (zero for the memory
    /// backend).
    pub fn on_disk_bytes(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| match &s.rows {
                SegmentRows::Memory(_) => 0,
                SegmentRows::Disk { store, .. } => store.on_disk_bytes(),
            })
            .sum()
    }
}

impl std::fmt::Debug for SegmentedWindowStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentedWindowStore")
            .field(
                "backend",
                &if self.is_memory_resident() {
                    "memory"
                } else {
                    "disk"
                },
            )
            .field("segments", &self.segments.len())
            .field("cols", &self.num_cols())
            .finish()
    }
}

/// A zero-copy view of one logical window row: the row's per-segment chunks
/// borrowed in window order, with absent chunks standing for all-zero spans.
///
/// The row's flat bit string is the concatenation of the parts; the cursor
/// returned by [`ChunkedRow::words`] streams that string as 64-bit words
/// (stitching across misaligned segment boundaries) so kernels can consume
/// the row without ever materialising it.
#[derive(Debug, Clone)]
pub struct ChunkedRow<'a> {
    /// `(columns, chunk)` per live segment; `None` = the segment never saw
    /// this row (reads as zeros).
    parts: Vec<(usize, Option<&'a BitVec>)>,
    len: usize,
}

impl<'a> ChunkedRow<'a> {
    /// Builds a chunked row from `(columns, chunk)` parts (exposed for tests
    /// and for readers that gather chunks themselves).
    pub fn from_parts(parts: Vec<(usize, Option<&'a BitVec>)>) -> Self {
        let len = parts.iter().map(|(cols, _)| cols).sum();
        if cfg!(debug_assertions) {
            for (cols, chunk) in &parts {
                if let Some(chunk) = chunk {
                    debug_assert_eq!(chunk.len(), *cols, "chunk must span its segment");
                }
            }
        }
        Self { parts, len }
    }

    /// Number of bits (live-window columns) the row spans.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the row spans no columns.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap bytes of the chunks the row borrows (shared with their owner —
    /// the segment map or the chunk cache — not copied per row).
    pub fn heap_bytes(&self) -> usize {
        self.parts
            .iter()
            .filter_map(|(_, chunk)| chunk.as_ref())
            .map(|chunk| chunk.heap_bytes())
            .sum()
    }

    /// Number of set bits — per-chunk popcounts, no assembly.
    pub fn count_ones(&self) -> u64 {
        self.parts
            .iter()
            .filter_map(|(_, chunk)| chunk.as_ref())
            .map(|chunk| chunk.count_ones())
            .sum()
    }

    /// Streams the row's 64-bit words in order, zero-filling absent chunks
    /// and stitching across segment boundaries that are not word-aligned.
    pub fn words(&self) -> ChunkCursor<'a, '_> {
        ChunkCursor {
            parts: &self.parts,
            part: 0,
            word_in_part: 0,
            acc: 0,
            acc_bits: 0,
            emitted: 0,
            total_words: self.len.div_ceil(WORD_BITS),
        }
    }

    /// Materialises the row into `out` (cleared first) — the chunk-level twin
    /// of [`SegmentedWindowStore::assemble_row`].
    pub fn assemble_into(&self, out: &mut BitVec) {
        out.resize(0);
        for (cols, chunk) in &self.parts {
            match chunk {
                Some(chunk) => out.extend_from_bitvec(chunk),
                None => out.resize(out.len() + cols),
            }
        }
    }

    /// The bit at position `idx` of the logical row (`false` out of range,
    /// matching [`BitVec::get`]).  Walks the part list, so it costs
    /// O(segments) — fine for the column-sparse projection loop, not for a
    /// full row scan (use [`ChunkedRow::words`] there).
    pub fn get(&self, idx: usize) -> bool {
        let mut start = 0;
        for (cols, chunk) in &self.parts {
            if idx < start + cols {
                return match chunk {
                    Some(chunk) => chunk.get(idx - start),
                    None => false,
                };
            }
            start += cols;
        }
        false
    }

    /// Iterates the indices of set bits in ascending order — the chunked twin
    /// of [`BitVec::iter_ones`], offsetting each chunk's ones by its
    /// segment's start column.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        let mut start = 0;
        self.parts.iter().flat_map(move |(cols, chunk)| {
            let base = start;
            start += cols;
            chunk
                .iter()
                .flat_map(move |chunk| chunk.iter_ones().map(move |idx| base + idx))
        })
    }

    /// Chunked × chunked twin of [`BitVec::and_count`]: popcount of the
    /// intersection of two chunked rows, streaming both word cursors.
    pub fn and_count_rows(&self, other: &ChunkedRow<'_>) -> u64 {
        self.words()
            .zip(other.words())
            .map(|(a, b)| u64::from((a & b).count_ones()))
            .sum()
    }

    /// Chunked × chunked twin of [`BitVec::and_into`]: writes the
    /// intersection into `out` (reusing its buffer, result length =
    /// `self.len()`) and returns its popcount in the same pass.
    pub fn and_into_rows(&self, other: &ChunkedRow<'_>, out: &mut BitVec) -> u64 {
        out.assign_and_of_words(self.len, self.words(), other.words())
    }

    /// Chunked × flat twin of [`BitVec::and_into`] with the *chunked* operand
    /// on the left: the result takes this row's length.
    pub fn and_into_bitvec(&self, other: &BitVec, out: &mut BitVec) -> u64 {
        out.assign_and_of_words(self.len, self.words(), other.as_words().iter().copied())
    }
}

/// A borrowed window row in whichever representation the read path produced:
/// a flat [`BitVec`] (memory-backend row cache, eager disk fallback) or a
/// [`ChunkedRow`] over pinned cache chunks (the zero-assembly disk path).
///
/// The mining kernels consume rows through this enum so one miner
/// implementation covers every backend; all four operand combinations of the
/// fused AND kernels are provided, and both representations agree bit for bit
/// on every accessor (missing tail bits read as zero in both).
#[derive(Debug, Clone, Copy)]
pub enum RowRef<'a> {
    /// A flat bit-vector row.
    Flat(&'a BitVec),
    /// A row streamed out of borrowed per-segment chunks.
    Chunked(&'a ChunkedRow<'a>),
}

impl<'a> RowRef<'a> {
    /// Number of bits the row physically spans (flat rows may be stored
    /// short; missing tail bits read as zero).
    pub fn len(&self) -> usize {
        match self {
            RowRef::Flat(row) => row.len(),
            RowRef::Chunked(row) => row.len(),
        }
    }

    /// Returns `true` if the row spans no bits.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bit at `idx` (`false` out of range).
    pub fn get(&self, idx: usize) -> bool {
        match self {
            RowRef::Flat(row) => row.get(idx),
            RowRef::Chunked(row) => row.get(idx),
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        match self {
            RowRef::Flat(row) => row.count_ones(),
            RowRef::Chunked(row) => row.count_ones(),
        }
    }

    /// Heap bytes of the row's backing storage (for working-set accounting;
    /// chunked rows count the pinned chunks they borrow, which are shared
    /// with the cache rather than copied per mine).
    pub fn heap_bytes(&self) -> usize {
        match self {
            RowRef::Flat(row) => row.heap_bytes(),
            RowRef::Chunked(row) => row.heap_bytes(),
        }
    }

    /// Iterates the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> Box<dyn Iterator<Item = usize> + 'a> {
        match self {
            RowRef::Flat(row) => Box::new(row.iter_ones()),
            RowRef::Chunked(row) => Box::new(row.iter_ones()),
        }
    }

    /// Fused popcount screen over any operand combination — the
    /// representation-polymorphic twin of [`BitVec::and_count`].
    pub fn and_count(&self, other: &RowRef<'_>) -> u64 {
        match (self, other) {
            (RowRef::Flat(a), RowRef::Flat(b)) => a.and_count(b),
            (RowRef::Flat(a), RowRef::Chunked(b)) => a.and_count_chunked(b),
            // AND is symmetric and missing words read as zero on both sides.
            (RowRef::Chunked(a), RowRef::Flat(b)) => b.and_count_chunked(a),
            (RowRef::Chunked(a), RowRef::Chunked(b)) => a.and_count_rows(b),
        }
    }

    /// Fused intersection over any operand combination — the
    /// representation-polymorphic twin of [`BitVec::and_into`].  The result
    /// (always a flat vector, reusing `out`'s buffer) takes `self`'s length
    /// and the popcount is returned in the same pass.
    pub fn and_into(&self, other: &RowRef<'_>, out: &mut BitVec) -> u64 {
        match (self, other) {
            (RowRef::Flat(a), RowRef::Flat(b)) => a.and_into(b, out),
            (RowRef::Flat(a), RowRef::Chunked(b)) => a.and_into_chunked(b, out),
            (RowRef::Chunked(a), RowRef::Flat(b)) => a.and_into_bitvec(b, out),
            (RowRef::Chunked(a), RowRef::Chunked(b)) => a.and_into_rows(b, out),
        }
    }

    /// Materialises the row into `out` (cleared first) — tests and one-off
    /// consumers; the mining hot path never calls this.
    pub fn assemble_into(&self, out: &mut BitVec) {
        match self {
            RowRef::Flat(row) => {
                out.resize(0);
                out.extend_from_bitvec(row);
            }
            RowRef::Chunked(row) => row.assemble_into(out),
        }
    }
}

/// Word cursor over a [`ChunkedRow`]: yields the logical row's `u64` words
/// with zero-fill, two shifts and an OR per chunk word.
pub struct ChunkCursor<'a, 'b> {
    parts: &'b [(usize, Option<&'a BitVec>)],
    part: usize,
    /// Next word to read within the current part's chunk.
    word_in_part: usize,
    /// Bits carried over from the previous part (low `acc_bits` bits valid).
    acc: u64,
    acc_bits: usize,
    emitted: usize,
    total_words: usize,
}

impl Iterator for ChunkCursor<'_, '_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.emitted >= self.total_words {
            return None;
        }
        // Fill the accumulator until it holds a whole word (or the row ends).
        while self.acc_bits < WORD_BITS && self.part < self.parts.len() {
            let (cols, chunk) = &self.parts[self.part];
            let remaining_bits = cols - self.word_in_part * WORD_BITS;
            if remaining_bits == 0 {
                self.part += 1;
                self.word_in_part = 0;
                continue;
            }
            let take = remaining_bits.min(WORD_BITS);
            let word = match chunk {
                Some(chunk) => {
                    let raw = chunk.as_words()[self.word_in_part];
                    if take == WORD_BITS {
                        raw
                    } else {
                        raw & ((1u64 << take) - 1)
                    }
                }
                None => 0,
            };
            if self.acc_bits < WORD_BITS {
                self.acc |= word << self.acc_bits;
            }
            let consumed = take.min(WORD_BITS - self.acc_bits);
            if consumed == take {
                // The whole chunk word fit; advance within the part.
                if take == WORD_BITS {
                    self.word_in_part += 1;
                } else {
                    self.part += 1;
                    self.word_in_part = 0;
                }
                self.acc_bits += take;
            } else {
                // The word straddles the output boundary: emit what fits and
                // keep the spill for the next output word.
                let out = self.acc;
                self.acc = word >> consumed;
                self.acc_bits = take - consumed;
                if take == WORD_BITS {
                    self.word_in_part += 1;
                } else {
                    self.part += 1;
                    self.word_in_part = 0;
                }
                self.emitted += 1;
                return Some(out);
            }
        }
        let out = self.acc;
        self.acc = 0;
        self.acc_bits = 0;
        self.emitted += 1;
        Some(out)
    }
}

impl BitVec {
    /// Chunk-aware twin of [`BitVec::and_count`]: counts the set bits of
    /// `self & row` where `row` is a [`ChunkedRow`], without materialising
    /// either the row or the intersection.
    pub fn and_count_chunked(&self, row: &ChunkedRow<'_>) -> u64 {
        self.and_count_words(row.words())
    }

    /// Chunk-aware twin of [`BitVec::and_into`]: writes `self & row` into
    /// `out` (reusing its buffer) and returns the popcount of the result in
    /// the same pass.  The result has the length of `self`.
    pub fn and_into_chunked(&self, row: &ChunkedRow<'_>, out: &mut BitVec) -> u64 {
        self.and_into_words(row.words(), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(pattern: &str) -> BitVec {
        BitVec::from_bools(pattern.chars().map(|c| c == '1'))
    }

    fn backends() -> Vec<StorageBackend> {
        vec![StorageBackend::Memory, StorageBackend::DiskTemp]
    }

    #[test]
    fn rows_assemble_across_segments_with_zero_fill() {
        for backend in backends() {
            let mut store = SegmentedWindowStore::open(backend).unwrap();
            let chunk_a = bv("101");
            let chunk_b = bv("11");
            store.push_segment(3, [(0, &chunk_a)]).unwrap();
            store.push_segment(2, [(1, &chunk_b)]).unwrap();
            assert_eq!(store.num_cols(), 5);
            assert_eq!(store.num_segments(), 2);

            let mut row = BitVec::new();
            store.assemble_row(0, &mut row).unwrap();
            assert_eq!(format!("{row:?}"), "BitVec[10100]");
            store.assemble_row(1, &mut row).unwrap();
            assert_eq!(format!("{row:?}"), "BitVec[00011]");
            store.assemble_row(7, &mut row).unwrap();
            assert_eq!(row.len(), 5);
            assert_eq!(row.count_ones(), 0);
        }
    }

    #[test]
    fn pop_segment_drops_the_oldest_columns() {
        for backend in backends() {
            let mut store = SegmentedWindowStore::open(backend).unwrap();
            store.push_segment(3, [(0, &bv("111"))]).unwrap();
            store.push_segment(2, [(0, &bv("01"))]).unwrap();
            assert_eq!(store.pop_segment().unwrap(), 3);
            assert_eq!(store.num_cols(), 2);
            let mut row = BitVec::new();
            store.assemble_row(0, &mut row).unwrap();
            assert_eq!(format!("{row:?}"), "BitVec[01]");
            assert_eq!(store.stats().segments_dropped, 1);
        }
        let mut empty = SegmentedWindowStore::open(StorageBackend::Memory).unwrap();
        assert!(empty.pop_segment().is_err());
    }

    #[test]
    fn generation_bumps_on_push_and_pop() {
        let mut store = SegmentedWindowStore::open(StorageBackend::Memory).unwrap();
        assert_eq!(store.generation(), 0);
        store.push_segment(2, [(0, &bv("11"))]).unwrap();
        assert_eq!(store.generation(), 1);
        store.push_segment(1, [(0, &bv("1"))]).unwrap();
        assert_eq!(store.generation(), 2);
        store.pop_segment().unwrap();
        assert_eq!(store.generation(), 3);
    }

    #[test]
    fn chunked_row_streams_the_assembled_words() {
        let mut store = SegmentedWindowStore::open(StorageBackend::Memory).unwrap();
        // Misaligned segment widths to exercise the stitching: 3 + 70 + 64.
        let wide = bv(&"10".repeat(35));
        store
            .push_segment(3, [(0, &bv("101")), (1, &bv("011"))])
            .unwrap();
        store.push_segment(70, [(0, &wide)]).unwrap();
        store.push_segment(64, [(1, &bv(&"1".repeat(64)))]).unwrap();

        for id in [0usize, 1, 9] {
            let mut flat = BitVec::new();
            store.assemble_row(id, &mut flat).unwrap();
            let chunked = store.chunked_row(id).unwrap();
            assert_eq!(chunked.len(), flat.len(), "row {id}");
            assert_eq!(chunked.count_ones(), flat.count_ones(), "row {id}");
            let streamed: Vec<u64> = chunked.words().collect();
            assert_eq!(streamed, flat.as_words(), "row {id}");
            let mut reassembled = BitVec::new();
            chunked.assemble_into(&mut reassembled);
            assert_eq!(reassembled, flat, "row {id}");
        }
    }

    #[test]
    fn chunked_kernels_match_flat_kernels() {
        let mut store = SegmentedWindowStore::open(StorageBackend::Memory).unwrap();
        store
            .push_segment(3, [(0, &bv("101")), (1, &bv("011"))])
            .unwrap();
        store
            .push_segment(70, [(0, &bv(&"10".repeat(35)))])
            .unwrap();
        store.push_segment(5, [(1, &bv("11011"))]).unwrap();

        let mut flat0 = BitVec::new();
        store.assemble_row(0, &mut flat0).unwrap();
        let chunked1 = store.chunked_row(1).unwrap();
        let mut flat1 = BitVec::new();
        chunked1.assemble_into(&mut flat1);

        assert_eq!(flat0.and_count_chunked(&chunked1), flat0.and_count(&flat1));
        let mut out = BitVec::new();
        let count = flat0.and_into_chunked(&chunked1, &mut out);
        assert_eq!(out, flat0.and(&flat1));
        assert_eq!(count, out.count_ones());
    }

    #[test]
    fn chunked_row_is_absent_on_disk_backends() {
        let mut store = SegmentedWindowStore::open(StorageBackend::DiskTemp).unwrap();
        store.push_segment(2, [(0, &bv("10"))]).unwrap();
        assert!(store.chunked_row(0).is_none());
        assert!(store.segment_chunks(0).is_none());
        // The index-level accessors still work.
        assert_eq!(store.segment_row_ids(0).unwrap(), vec![0]);
        let mut chunk = BitVec::new();
        assert!(store.read_segment_chunk(0, 0, &mut chunk).unwrap());
        assert_eq!(format!("{chunk:?}"), "BitVec[10]");
        assert!(!store.read_segment_chunk(0, 9, &mut chunk).unwrap());
        assert!(store.read_segment_chunk(5, 0, &mut chunk).is_err());
    }

    #[test]
    fn segment_accessors_locate_columns_and_rows() {
        let mut store = SegmentedWindowStore::open(StorageBackend::Memory).unwrap();
        store.push_segment(3, [(4, &bv("111"))]).unwrap();
        store
            .push_segment(2, [(1, &bv("01")), (4, &bv("10"))])
            .unwrap();
        assert_eq!(store.segment_cols(0), Some(3));
        assert_eq!(store.segment_cols(1), Some(2));
        assert_eq!(store.segment_cols(2), None);
        assert_eq!(store.locate_column(0), Some((0, 0)));
        assert_eq!(store.locate_column(2), Some((0, 2)));
        assert_eq!(store.locate_column(3), Some((1, 0)));
        assert_eq!(store.locate_column(4), Some((1, 1)));
        assert_eq!(store.locate_column(5), None);
        let rows: Vec<usize> = store.segment_chunks(1).unwrap().map(|(id, _)| id).collect();
        assert_eq!(rows, vec![1, 4]);
        assert_eq!(store.segment_row_ids(1).unwrap(), vec![1, 4]);
    }

    #[test]
    fn eviction_removes_the_backing_file() {
        let mut store = SegmentedWindowStore::open(StorageBackend::DiskTemp).unwrap();
        store.push_segment(8, [(0, &bv("10101010"))]).unwrap();
        store.push_segment(8, [(1, &bv("01010101"))]).unwrap();
        let before = store.on_disk_bytes();
        assert!(before > 0);
        store.pop_segment().unwrap();
        assert!(
            store.on_disk_bytes() < before,
            "evicted segment must free its file"
        );
        assert!(!store.is_memory_resident());
        assert!(store.resident_bytes() < 4096, "only indexes stay resident");
    }

    #[test]
    fn writes_are_counted_per_chunk_not_per_window() {
        let mut store = SegmentedWindowStore::open(StorageBackend::Memory).unwrap();
        let wide = bv(&"1".repeat(128));
        store.push_segment(128, [(0, &wide), (1, &wide)]).unwrap();
        let first = store.stats();
        assert_eq!(first.rows_written, 2);
        // 128 bits = 2 words, plus 1 word of header, per row.
        assert_eq!(first.words_written, 6);

        // A tiny second segment costs a tiny number of words, regardless of
        // how much data is already stored.
        let narrow = bv("1");
        store.push_segment(1, [(5, &narrow)]).unwrap();
        let second = store.stats();
        assert_eq!(second.words_written - first.words_written, 2);
        assert_eq!(second.segments_written, 2);
    }

    #[test]
    fn empty_segments_are_legal() {
        for backend in backends() {
            let mut store = SegmentedWindowStore::open(backend).unwrap();
            store.push_segment(0, std::iter::empty()).unwrap();
            store.push_segment(2, [(0, &bv("10"))]).unwrap();
            assert_eq!(store.num_cols(), 2);
            let mut row = BitVec::new();
            store.assemble_row(0, &mut row).unwrap();
            assert_eq!(format!("{row:?}"), "BitVec[10]");
            assert_eq!(store.pop_segment().unwrap(), 0);
        }
    }

    #[test]
    fn budgeted_reads_agree_with_eager_reads() {
        // Shadow model: the same push/pop/read sequence through a disabled
        // cache (budget 0), a tight budget (constant eviction pressure) and
        // an unlimited budget must produce identical rows at every step.
        let budgets = [0usize, 700, usize::MAX];
        let mut stores: Vec<SegmentedWindowStore> = budgets
            .iter()
            .map(|&budget| {
                let mut store = SegmentedWindowStore::open(StorageBackend::DiskTemp).unwrap();
                store.set_cache_budget(budget);
                store
            })
            .collect();
        let mut rng = 0x9e3779b97f4a7c15u64;
        let mut next = move |bound: usize| {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) as usize % bound
        };
        for step in 0..24 {
            let cols = 1 + next(90);
            let chunks: Vec<(usize, BitVec)> = (0..next(6))
                .map(|_| {
                    let id = next(12);
                    let chunk = BitVec::from_bools((0..cols).map(|_| next(2) == 1));
                    (id, chunk)
                })
                .collect();
            // Deduplicate ids: push_segment stores one chunk per row.
            let mut by_id: BTreeMap<usize, BitVec> = BTreeMap::new();
            for (id, chunk) in chunks {
                by_id.insert(id, chunk);
            }
            for store in &mut stores {
                store
                    .push_segment(cols, by_id.iter().map(|(id, c)| (*id, c)))
                    .unwrap();
                if store.num_segments() > 4 {
                    store.pop_segment().unwrap();
                }
            }
            let mut reference = BitVec::new();
            let mut row = BitVec::new();
            for id in 0..12 {
                stores[0].assemble_row(id, &mut reference).unwrap();
                for store in &mut stores[1..] {
                    store.assemble_row(id, &mut row).unwrap();
                    assert_eq!(row, reference, "row {id} diverged at step {step}");
                }
            }
        }
        // The eager store hit nothing; the cached stores hit and respected
        // their budgets.
        assert_eq!(stores[0].io_stats().cache_hits, 0);
        assert!(stores[1].io_stats().cache_hits > 0);
        assert!(stores[1].cache_stats().evictions > 0, "tight budget evicts");
        assert!(stores[2].io_stats().cache_hits > stores[1].io_stats().cache_hits);
        assert!(stores[2].io_stats().pages_read < stores[0].io_stats().pages_read);
    }

    #[test]
    fn steady_state_reads_are_bounded_by_the_slide() {
        let mut store = SegmentedWindowStore::open(StorageBackend::DiskTemp).unwrap();
        store.set_cache_budget(usize::MAX);
        let rows = 8usize;
        let wide = bv(&"10".repeat(40));
        let scan = |store: &mut SegmentedWindowStore| {
            let mut row = BitVec::new();
            for id in 0..rows {
                store.assemble_row(id, &mut row).unwrap();
            }
        };
        for id in 0..4u64 {
            let _ = id;
            store
                .push_segment(80, (0..rows).map(|r| (r, &wide)))
                .unwrap();
        }
        scan(&mut store); // cold scan: every chunk is fetched once
        let cold = store.io_stats().pages_read;
        assert!(cold > 0);
        scan(&mut store); // warm scan: all hits, zero new pages
        assert_eq!(store.io_stats().pages_read, cold);

        // One slide (push + pop), then a scan: only the entering segment's
        // chunks are fetched — the incremental read bound.
        store
            .push_segment(80, (0..rows).map(|r| (r, &wide)))
            .unwrap();
        store.pop_segment().unwrap();
        scan(&mut store);
        let after_slide = store.io_stats().pages_read;
        assert_eq!(
            after_slide - cold,
            rows as u64,
            "a steady-state scan re-reads only the slide's chunks"
        );

        // Budget 0 on a fresh store: every scan pays the full window again.
        let mut eager = SegmentedWindowStore::open(StorageBackend::DiskTemp).unwrap();
        for _ in 0..4 {
            eager
                .push_segment(80, (0..rows).map(|r| (r, &wide)))
                .unwrap();
        }
        scan(&mut eager);
        let once = eager.io_stats().pages_read;
        scan(&mut eager);
        assert_eq!(eager.io_stats().pages_read, 2 * once);
        assert_eq!(eager.io_stats().cache_hits, 0);
    }

    #[test]
    fn pinned_rows_serve_borrowed_chunks_without_assembly() {
        let mut store = SegmentedWindowStore::open(StorageBackend::DiskTemp).unwrap();
        store.set_cache_budget(usize::MAX);
        // Misaligned widths to exercise the cursor stitching: 3 + 70 + 64.
        store
            .push_segment(3, [(0, &bv("101")), (1, &bv("011"))])
            .unwrap();
        store
            .push_segment(70, [(0, &bv(&"10".repeat(35)))])
            .unwrap();
        store.push_segment(64, [(1, &bv(&"1".repeat(64)))]).unwrap();
        let generation = store.generation();

        for id in [0usize, 1, 9] {
            assert!(store.pin_row_chunks(id).unwrap(), "row {id} must pin");
        }
        let pages_after_pin = store.io_stats().pages_read;
        let mut flat = BitVec::new();
        for id in [0usize, 1, 9] {
            store.assemble_row(id, &mut flat).unwrap();
            let pinned = store.pinned_chunked_row(id, generation).unwrap();
            assert_eq!(pinned.len(), flat.len(), "row {id}");
            let streamed: Vec<u64> = pinned.words().collect();
            assert_eq!(streamed, flat.as_words(), "row {id}");
            assert_eq!(
                pinned.iter_ones().collect::<Vec<_>>(),
                flat.iter_ones().collect::<Vec<_>>(),
                "row {id}"
            );
            for idx in 0..flat.len() + 2 {
                assert_eq!(pinned.get(idx), flat.get(idx), "row {id} bit {idx}");
            }
        }
        assert_eq!(
            store.io_stats().pages_read,
            pages_after_pin,
            "borrowing pinned rows must not touch the disk"
        );

        // A slide releases the pins and voids the generation: stale borrows
        // are refused instead of served.
        store.push_segment(2, [(0, &bv("11"))]).unwrap();
        assert!(store.pinned_chunked_row(0, generation).is_err());
    }

    #[test]
    fn pin_falls_back_when_the_budget_cannot_hold_the_row() {
        let mut store = SegmentedWindowStore::open(StorageBackend::DiskTemp).unwrap();
        // Room for roughly one 80-bit chunk entry (decoded payload plus the
        // cache's bookkeeping overhead): a two-segment row cannot pin whole.
        store.set_cache_budget(150);
        let wide = bv(&"10".repeat(40));
        store.push_segment(80, [(0, &wide)]).unwrap();
        store.push_segment(80, [(0, &wide)]).unwrap();
        assert!(
            !store.pin_row_chunks(0).unwrap(),
            "a row wider than the pin budget must fall back"
        );
        // The failed pin attempt must hand its partial pins back so they do
        // not clog the budget, and the eager path still reads correctly.
        let mut row = BitVec::new();
        store.assemble_row(0, &mut row).unwrap();
        assert_eq!(row.len(), 160);
        // Memory backend and disabled cache never pin.
        let mut memory = SegmentedWindowStore::open(StorageBackend::Memory).unwrap();
        memory.push_segment(2, [(0, &bv("10"))]).unwrap();
        assert!(!memory.pin_row_chunks(0).unwrap());
        let mut uncached = SegmentedWindowStore::open(StorageBackend::DiskTemp).unwrap();
        uncached.push_segment(2, [(0, &bv("10"))]).unwrap();
        assert!(!uncached.pin_row_chunks(0).unwrap());
    }

    #[test]
    fn row_ref_kernels_agree_across_representations() {
        let mut store = SegmentedWindowStore::open(StorageBackend::Memory).unwrap();
        store
            .push_segment(3, [(0, &bv("101")), (1, &bv("011"))])
            .unwrap();
        store
            .push_segment(70, [(0, &bv(&"10".repeat(35)))])
            .unwrap();
        store.push_segment(5, [(1, &bv("11011"))]).unwrap();

        let mut flat0 = BitVec::new();
        store.assemble_row(0, &mut flat0).unwrap();
        let mut flat1 = BitVec::new();
        store.assemble_row(1, &mut flat1).unwrap();
        let chunked0 = store.chunked_row(0).unwrap();
        let chunked1 = store.chunked_row(1).unwrap();

        let reference = flat0.and_count(&flat1);
        let mut expected = BitVec::new();
        flat0.and_into(&flat1, &mut expected);

        let combos = [
            (RowRef::Flat(&flat0), RowRef::Flat(&flat1)),
            (RowRef::Flat(&flat0), RowRef::Chunked(&chunked1)),
            (RowRef::Chunked(&chunked0), RowRef::Flat(&flat1)),
            (RowRef::Chunked(&chunked0), RowRef::Chunked(&chunked1)),
        ];
        for (idx, (a, b)) in combos.iter().enumerate() {
            assert_eq!(a.and_count(b), reference, "combo {idx}");
            let mut out = BitVec::new();
            let count = a.and_into(b, &mut out);
            assert_eq!(count, reference, "combo {idx}");
            assert_eq!(out, expected, "combo {idx}");
        }
        // Accessors agree between the two representations of the same row.
        let (flat, chunked) = (RowRef::Flat(&flat0), RowRef::Chunked(&chunked0));
        assert_eq!(flat.len(), chunked.len());
        assert_eq!(flat.count_ones(), chunked.count_ones());
        assert_eq!(
            flat.iter_ones().collect::<Vec<_>>(),
            chunked.iter_ones().collect::<Vec<_>>()
        );
        let mut from_chunked = BitVec::new();
        chunked.assemble_into(&mut from_chunked);
        assert_eq!(from_chunked, flat0);
    }

    #[test]
    fn memory_backend_ignores_the_cache_budget() {
        let mut store = SegmentedWindowStore::open(StorageBackend::Memory).unwrap();
        store.set_cache_budget(usize::MAX);
        assert_eq!(store.cache_budget(), 0);
        store.push_segment(2, [(0, &bv("10"))]).unwrap();
        let mut row = BitVec::new();
        store.assemble_row(0, &mut row).unwrap();
        assert_eq!(store.io_stats(), ReadIoStats::default());
    }

    #[test]
    fn epoch_segments_agree_with_assembled_rows() {
        for backend in backends() {
            let mut store = SegmentedWindowStore::open(backend).unwrap();
            // Misaligned widths to exercise every chunk shape: 3 + 70 + 64.
            store
                .push_segment(3, [(0, &bv("101")), (1, &bv("011"))])
                .unwrap();
            store
                .push_segment(70, [(0, &bv(&"10".repeat(35)))])
                .unwrap();
            store.push_segment(64, [(1, &bv(&"1".repeat(64)))]).unwrap();

            let epochs: Vec<Arc<EpochSegment>> = (0..store.num_segments())
                .map(|seg| store.epoch_segment(seg).unwrap())
                .collect();
            for id in [0usize, 1, 9] {
                let mut flat = BitVec::new();
                store.assemble_row(id, &mut flat).unwrap();
                let parts: Vec<(usize, Option<&BitVec>)> = epochs
                    .iter()
                    .map(|seg| (seg.cols(), seg.chunk(id)))
                    .collect();
                let chunked = ChunkedRow::from_parts(parts);
                assert_eq!(chunked.len(), flat.len(), "row {id}");
                let streamed: Vec<u64> = chunked.words().collect();
                assert_eq!(streamed, flat.as_words(), "row {id}");
            }
        }
    }

    #[test]
    fn disk_epoch_segments_are_memoised_and_outlive_the_slide() {
        let mut store = SegmentedWindowStore::open(StorageBackend::DiskTemp).unwrap();
        let wide = bv(&"10".repeat(40));
        store.push_segment(80, [(0, &wide), (1, &wide)]).unwrap();
        store.push_segment(80, [(0, &wide)]).unwrap();

        let first = store.epoch_segment(0).unwrap();
        let pages_after_decode = store.io_stats().pages_read;
        assert!(pages_after_decode > 0, "the first decode reads pages");
        // A second epoch over the same segment is served from the memo.
        let again = store.epoch_segment(0).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(store.io_stats().pages_read, pages_after_decode);

        // The slide drops the store's handle and unlinks the file, but the
        // snapshot's data survives until its last Arc drops.
        let weak = Arc::downgrade(&first);
        store.pop_segment().unwrap();
        assert_eq!(first.chunk(0).unwrap().len(), 80);
        assert_eq!(first.num_rows(), 2);
        drop(again);
        drop(first);
        assert!(
            weak.upgrade().is_none(),
            "the decoded segment is reclaimed with its last reader"
        );
    }

    #[test]
    fn memory_epoch_segments_share_the_live_segment() {
        let mut store = SegmentedWindowStore::open(StorageBackend::Memory).unwrap();
        store.push_segment(2, [(0, &bv("10"))]).unwrap();
        let a = store.epoch_segment(0).unwrap();
        let b = store.epoch_segment(0).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "memory snapshots are Arc clones");
        assert_eq!(a.uid(), 0);
        assert_eq!(a.cols(), 2);
        assert!(a.heap_bytes() > 0);
        assert!(store.epoch_segment(7).is_err());
    }

    #[test]
    fn budget_changes_never_touch_epoch_segment_data() {
        // The pin-lifecycle regression at the store level: `set_cache_budget`
        // (which releases every cache pin) and later slides must not disturb
        // rows owned by an epoch segment.
        let mut store = SegmentedWindowStore::open(StorageBackend::DiskTemp).unwrap();
        store.set_cache_budget(usize::MAX);
        let wide = bv(&"10".repeat(40));
        store.push_segment(80, [(0, &wide)]).unwrap();
        let epoch = store.epoch_segment(0).unwrap();
        let before = epoch.chunk(0).unwrap().clone();
        store.set_cache_budget(64);
        store.set_cache_budget(0);
        store.push_segment(80, [(0, &wide)]).unwrap();
        store.pop_segment().unwrap();
        assert_eq!(epoch.chunk(0).unwrap(), &before);
    }

    #[test]
    fn disk_at_places_segments_under_the_given_directory() {
        let dir = TempDir::new("segstore-at").unwrap();
        let root = dir.file("segments");
        let mut store = SegmentedWindowStore::open(StorageBackend::DiskAt(root.clone())).unwrap();
        store.push_segment(4, [(0, &bv("1001"))]).unwrap();
        assert!(root.join("seg-0.pages").exists());
        store.pop_segment().unwrap();
        assert!(!root.join("seg-0.pages").exists());
    }
}
