//! An append-friendly, window-aligned row store: one immutable segment per
//! batch.
//!
//! The DSMatrix conceptually extends every row by one bit per incoming
//! transaction and drops a prefix of every row when the window slides.  Doing
//! that literally rewrites `O(rows × window columns)` cells on every slide.
//! This store instead keeps the window as a queue of **batch segments**: each
//! ingested batch becomes one immutable segment holding, for every row that
//! has at least one set bit in the batch, that row's bit chunk for the
//! batch's columns.  A window slide is then
//!
//! * **append** one new segment (cost: only the rows the batch touches), and
//! * **drop** the oldest segment (cost: one file/map removal),
//!
//! so capture cost is `O(rows touched by the new batch + evicted columns)`
//! and unevicted row prefixes are never rewritten.  Rows of the live window
//! are materialised on demand by concatenating the per-segment chunks
//! ([`BitVec::extend_from_bitvec`]) with zero-fill for rows a segment never
//! mentions, which reproduces the flat-row semantics bit for bit.
//!
//! Every write is counted in [`CaptureStats`], which is how the benchmark
//! harness (and the slide-cost tests) assert the incremental behaviour
//! instead of merely hoping for it.

use std::collections::VecDeque;
use std::path::PathBuf;

use crate::bitvec::BitVec;
use crate::rowstore::{RowStore, StorageBackend};
use crate::temp::TempDir;
use fsm_types::{FsmError, Result};

/// Cumulative capture-cost counters of a [`SegmentedWindowStore`].
///
/// `words_written` is the number of 64-bit words (including the 8-byte row
/// headers) serialised into the store since it was opened.  Differencing the
/// counter across two `push_segment` calls gives the exact write cost of one
/// window slide — the quantity the incremental design keeps proportional to
/// the entering batch rather than to the whole window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureStats {
    /// 64-bit words serialised into the store (row payloads + headers).
    pub words_written: u64,
    /// Individual row chunks written.
    pub rows_written: u64,
    /// Segments appended (one per ingested batch).
    pub segments_written: u64,
    /// Segments dropped by window eviction.
    pub segments_dropped: u64,
}

struct Segment {
    /// Number of window columns (transactions) this segment contributes.
    cols: usize,
    /// Row chunks of the segment; rows without a set bit are absent.
    rows: RowStore,
    /// Backing file to delete on eviction (disk backends only).
    path: Option<PathBuf>,
}

enum Placement {
    Memory,
    Disk {
        dir: PathBuf,
        /// Keeps the self-cleaning directory alive for `DiskTemp`.
        _tempdir: Option<TempDir>,
    },
}

/// A queue of per-batch row segments backing one sliding window.
///
/// All three [`StorageBackend`]s are supported: `Memory` keeps segments in
/// maps, the disk backends write one paged file per segment (so eviction is
/// one `unlink`, never a rewrite of surviving data).
pub struct SegmentedWindowStore {
    placement: Placement,
    segments: VecDeque<Segment>,
    next_id: u64,
    page_size: usize,
    stats: CaptureStats,
    /// Reusable (de)serialisation buffer for row chunks.
    buf: Vec<u8>,
    /// Reusable decoded chunk for [`SegmentedWindowStore::assemble_row`].
    chunk: BitVec,
}

impl SegmentedWindowStore {
    /// Page size of the per-segment files.  Segments hold per-batch chunks
    /// (much smaller than whole-window rows), so the pages are smaller than
    /// [`crate::PagedFile::DEFAULT_PAGE_SIZE`].
    pub const SEGMENT_PAGE_SIZE: usize = 1024;

    /// Opens a store with the given backend.
    pub fn open(backend: StorageBackend) -> Result<Self> {
        let placement = match backend {
            StorageBackend::Memory => Placement::Memory,
            StorageBackend::DiskTemp => {
                let tempdir = TempDir::new("segstore")?;
                Placement::Disk {
                    dir: tempdir.path().to_path_buf(),
                    _tempdir: Some(tempdir),
                }
            }
            StorageBackend::DiskAt(path) => {
                std::fs::create_dir_all(&path)?;
                Placement::Disk {
                    dir: path,
                    _tempdir: None,
                }
            }
        };
        Ok(Self {
            placement,
            segments: VecDeque::new(),
            next_id: 0,
            page_size: Self::SEGMENT_PAGE_SIZE,
            stats: CaptureStats::default(),
            buf: Vec::new(),
            chunk: BitVec::new(),
        })
    }

    /// Returns `true` if segment payloads live in main memory.
    pub fn is_memory_resident(&self) -> bool {
        matches!(self.placement, Placement::Memory)
    }

    /// Number of live segments (batches in the window).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total number of columns across all live segments.
    pub fn num_cols(&self) -> usize {
        self.segments.iter().map(|s| s.cols).sum()
    }

    /// The cumulative capture-cost counters.
    pub fn stats(&self) -> CaptureStats {
        self.stats
    }

    /// Appends one segment of `cols` columns whose touched rows are given as
    /// `(row id, bit chunk)` pairs.  Chunks must be exactly `cols` bits long.
    ///
    /// This is the only write path of the store; its cost — and the counter
    /// increments it performs — are proportional to the chunks passed in,
    /// never to data already stored.
    pub fn push_segment<'a, I>(&mut self, cols: usize, rows: I) -> Result<()>
    where
        I: IntoIterator<Item = (usize, &'a BitVec)>,
    {
        let (store, path) = match &self.placement {
            Placement::Memory => (RowStore::open(StorageBackend::Memory)?, None),
            Placement::Disk { dir, .. } => {
                let path = dir.join(format!("seg-{}.pages", self.next_id));
                (
                    RowStore::with_page_size(StorageBackend::DiskAt(path.clone()), self.page_size)?,
                    Some(path),
                )
            }
        };
        self.next_id += 1;
        let mut segment = Segment {
            cols,
            rows: store,
            path,
        };
        for (id, chunk) in rows {
            debug_assert_eq!(chunk.len(), cols, "row chunk must span the segment");
            chunk.write_bytes(&mut self.buf);
            segment.rows.put_row(id, &self.buf)?;
            self.stats.rows_written += 1;
            self.stats.words_written += self.buf.len().div_ceil(8) as u64;
        }
        self.stats.segments_written += 1;
        self.segments.push_back(segment);
        Ok(())
    }

    /// Drops the oldest segment, returning how many columns left with it.
    ///
    /// Surviving segments are untouched: for the disk backends this is one
    /// file removal, not a compaction rewrite.
    pub fn pop_segment(&mut self) -> Result<usize> {
        let segment = self
            .segments
            .pop_front()
            .ok_or_else(|| FsmError::corrupt("pop_segment on an empty window"))?;
        let cols = segment.cols;
        let path = segment.path.clone();
        // Close the row store (drops its file handle) before unlinking.
        drop(segment);
        if let Some(path) = path {
            std::fs::remove_file(&path)?;
        }
        self.stats.segments_dropped += 1;
        Ok(cols)
    }

    /// Materialises row `id` of the live window into `out` (cleared first):
    /// the concatenation of the row's chunk in every live segment, with
    /// zero-fill where a segment never saw the row.  The result is always
    /// exactly [`SegmentedWindowStore::num_cols`] bits long.
    pub fn assemble_row(&mut self, id: usize, out: &mut BitVec) -> Result<()> {
        out.resize(0);
        // Split borrows: the queue, the byte buffer and the decoded chunk
        // are disjoint fields reused across calls, so a scan over many rows
        // performs no steady-state allocation.
        let Self {
            segments,
            buf,
            chunk,
            ..
        } = self;
        for segment in segments.iter_mut() {
            if segment.rows.contains_row(id) {
                segment.rows.get_row_into(id, buf)?;
                if !chunk.read_bytes(buf) {
                    return Err(FsmError::corrupt(format!(
                        "row {id} chunk failed to deserialise"
                    )));
                }
                out.extend_from_bitvec(chunk);
            } else {
                out.resize(out.len() + segment.cols);
            }
        }
        Ok(())
    }

    /// Bytes held in main memory: for the memory backend the payloads, for
    /// the disk backends only the per-segment row indexes.
    pub fn resident_bytes(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.rows.resident_bytes() + std::mem::size_of::<Segment>())
            .sum()
    }

    /// Bytes held on disk across all live segments (zero for the memory
    /// backend).
    pub fn on_disk_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.rows.on_disk_bytes()).sum()
    }
}

impl std::fmt::Debug for SegmentedWindowStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentedWindowStore")
            .field(
                "backend",
                &if self.is_memory_resident() {
                    "memory"
                } else {
                    "disk"
                },
            )
            .field("segments", &self.segments.len())
            .field("cols", &self.num_cols())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(pattern: &str) -> BitVec {
        BitVec::from_bools(pattern.chars().map(|c| c == '1'))
    }

    fn backends() -> Vec<StorageBackend> {
        vec![StorageBackend::Memory, StorageBackend::DiskTemp]
    }

    #[test]
    fn rows_assemble_across_segments_with_zero_fill() {
        for backend in backends() {
            let mut store = SegmentedWindowStore::open(backend).unwrap();
            let chunk_a = bv("101");
            let chunk_b = bv("11");
            store.push_segment(3, [(0, &chunk_a)]).unwrap();
            store.push_segment(2, [(1, &chunk_b)]).unwrap();
            assert_eq!(store.num_cols(), 5);
            assert_eq!(store.num_segments(), 2);

            let mut row = BitVec::new();
            store.assemble_row(0, &mut row).unwrap();
            assert_eq!(format!("{row:?}"), "BitVec[10100]");
            store.assemble_row(1, &mut row).unwrap();
            assert_eq!(format!("{row:?}"), "BitVec[00011]");
            store.assemble_row(7, &mut row).unwrap();
            assert_eq!(row.len(), 5);
            assert_eq!(row.count_ones(), 0);
        }
    }

    #[test]
    fn pop_segment_drops_the_oldest_columns() {
        for backend in backends() {
            let mut store = SegmentedWindowStore::open(backend).unwrap();
            store.push_segment(3, [(0, &bv("111"))]).unwrap();
            store.push_segment(2, [(0, &bv("01"))]).unwrap();
            assert_eq!(store.pop_segment().unwrap(), 3);
            assert_eq!(store.num_cols(), 2);
            let mut row = BitVec::new();
            store.assemble_row(0, &mut row).unwrap();
            assert_eq!(format!("{row:?}"), "BitVec[01]");
            assert_eq!(store.stats().segments_dropped, 1);
        }
        let mut empty = SegmentedWindowStore::open(StorageBackend::Memory).unwrap();
        assert!(empty.pop_segment().is_err());
    }

    #[test]
    fn eviction_removes_the_backing_file() {
        let mut store = SegmentedWindowStore::open(StorageBackend::DiskTemp).unwrap();
        store.push_segment(8, [(0, &bv("10101010"))]).unwrap();
        store.push_segment(8, [(1, &bv("01010101"))]).unwrap();
        let before = store.on_disk_bytes();
        assert!(before > 0);
        store.pop_segment().unwrap();
        assert!(
            store.on_disk_bytes() < before,
            "evicted segment must free its file"
        );
        assert!(!store.is_memory_resident());
        assert!(store.resident_bytes() < 4096, "only indexes stay resident");
    }

    #[test]
    fn writes_are_counted_per_chunk_not_per_window() {
        let mut store = SegmentedWindowStore::open(StorageBackend::Memory).unwrap();
        let wide = bv(&"1".repeat(128));
        store.push_segment(128, [(0, &wide), (1, &wide)]).unwrap();
        let first = store.stats();
        assert_eq!(first.rows_written, 2);
        // 128 bits = 2 words, plus 1 word of header, per row.
        assert_eq!(first.words_written, 6);

        // A tiny second segment costs a tiny number of words, regardless of
        // how much data is already stored.
        let narrow = bv("1");
        store.push_segment(1, [(5, &narrow)]).unwrap();
        let second = store.stats();
        assert_eq!(second.words_written - first.words_written, 2);
        assert_eq!(second.segments_written, 2);
    }

    #[test]
    fn empty_segments_are_legal() {
        for backend in backends() {
            let mut store = SegmentedWindowStore::open(backend).unwrap();
            store.push_segment(0, std::iter::empty()).unwrap();
            store.push_segment(2, [(0, &bv("10"))]).unwrap();
            assert_eq!(store.num_cols(), 2);
            let mut row = BitVec::new();
            store.assemble_row(0, &mut row).unwrap();
            assert_eq!(format!("{row:?}"), "BitVec[10]");
            assert_eq!(store.pop_segment().unwrap(), 0);
        }
    }

    #[test]
    fn disk_at_places_segments_under_the_given_directory() {
        let dir = TempDir::new("segstore-at").unwrap();
        let root = dir.file("segments");
        let mut store = SegmentedWindowStore::open(StorageBackend::DiskAt(root.clone())).unwrap();
        store.push_segment(4, [(0, &bv("1001"))]).unwrap();
        assert!(root.join("seg-0.pages").exists());
        store.pop_segment().unwrap();
        assert!(!root.join("seg-0.pages").exists());
    }
}
