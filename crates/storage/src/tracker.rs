//! Per-structure memory accounting for the space-efficiency experiment.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// A snapshot of the tracker state: current and peak bytes per category plus
/// the peak of the total across categories.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Current resident bytes per category.
    pub current: BTreeMap<String, u64>,
    /// Peak resident bytes per category.
    pub peak: BTreeMap<String, u64>,
    /// Peak of the summed resident bytes across all categories.
    pub total_peak: u64,
}

impl MemoryReport {
    /// Peak bytes for one category (0 if never reported).
    pub fn peak_of(&self, category: &str) -> u64 {
        self.peak.get(category).copied().unwrap_or(0)
    }

    /// Current bytes for one category (0 if never reported).
    pub fn current_of(&self, category: &str) -> u64 {
        self.current.get(category).copied().unwrap_or(0)
    }

    /// Sum of current bytes across all categories.
    pub fn total_current(&self) -> u64 {
        self.current.values().sum()
    }
}

impl fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total peak: {} bytes", self.total_peak)?;
        for (category, peak) in &self.peak {
            writeln!(
                f,
                "  {category}: peak {peak} bytes (now {})",
                self.current_of(category)
            )?;
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct TrackerState {
    current: BTreeMap<String, u64>,
    peak: BTreeMap<String, u64>,
    total_peak: u64,
}

impl TrackerState {
    fn recompute(&mut self, category: &str) {
        let value = self.current.get(category).copied().unwrap_or(0);
        let entry = self.peak.entry(category.to_string()).or_insert(0);
        *entry = (*entry).max(value);
        let total: u64 = self.current.values().sum();
        self.total_peak = self.total_peak.max(total);
    }
}

/// A cheap, cloneable gauge of resident bytes per structure category.
///
/// The mining algorithms report the size of every in-memory structure they
/// materialise (FP-trees, bit vectors, projected databases); the experiment
/// harness reads the peak per category after a run.  Estimates are logical
/// sizes (`node count × node size`), which is exactly the quantity the paper
/// compares — not allocator slack.
#[derive(Debug, Clone, Default)]
pub struct MemoryTracker {
    state: Arc<Mutex<TrackerState>>,
}

impl MemoryTracker {
    /// Creates a tracker with no recorded usage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the shared state; a poisoned lock (a panic while holding it)
    /// still yields the data, since gauges stay meaningful.
    fn state(&self) -> MutexGuard<'_, TrackerState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Sets the current resident size of `category` to an absolute value.
    pub fn set(&self, category: &str, bytes: u64) {
        let mut state = self.state();
        state.current.insert(category.to_string(), bytes);
        state.recompute(category);
    }

    /// Adds `bytes` to the current resident size of `category`.
    pub fn add(&self, category: &str, bytes: u64) {
        let mut state = self.state();
        *state.current.entry(category.to_string()).or_insert(0) += bytes;
        state.recompute(category);
    }

    /// Subtracts `bytes` from the current resident size of `category`,
    /// saturating at zero.
    pub fn sub(&self, category: &str, bytes: u64) {
        let mut state = self.state();
        let entry = state.current.entry(category.to_string()).or_insert(0);
        *entry = entry.saturating_sub(bytes);
        state.recompute(category);
    }

    /// Resets current gauges to zero (peaks are preserved).
    pub fn clear_current(&self) {
        let mut state = self.state();
        for value in state.current.values_mut() {
            *value = 0;
        }
    }

    /// Resets everything, including peaks.
    pub fn reset(&self) {
        *self.state() = TrackerState::default();
    }

    /// Takes a snapshot of the tracker state.
    pub fn report(&self) -> MemoryReport {
        let state = self.state();
        MemoryReport {
            current: state.current.clone(),
            peak: state.peak.clone(),
            total_peak: state.total_peak,
        }
    }

    /// Peak bytes observed for one category.
    pub fn peak_of(&self, category: &str) -> u64 {
        self.state().peak.get(category).copied().unwrap_or(0)
    }

    /// Peak of the summed resident bytes across all categories.
    pub fn total_peak(&self) -> u64 {
        self.state().total_peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_add_sub_update_current_and_peak() {
        let tracker = MemoryTracker::new();
        tracker.set("fp-tree", 100);
        tracker.add("fp-tree", 50);
        tracker.sub("fp-tree", 120);
        let report = tracker.report();
        assert_eq!(report.current_of("fp-tree"), 30);
        assert_eq!(report.peak_of("fp-tree"), 150);
    }

    #[test]
    fn sub_saturates_at_zero() {
        let tracker = MemoryTracker::new();
        tracker.add("bitvecs", 10);
        tracker.sub("bitvecs", 100);
        assert_eq!(tracker.report().current_of("bitvecs"), 0);
    }

    #[test]
    fn total_peak_tracks_sum_across_categories() {
        let tracker = MemoryTracker::new();
        tracker.set("a", 100);
        tracker.set("b", 200);
        tracker.set("a", 0);
        tracker.set("b", 250);
        // Peak total was 300 (100 + 200); afterwards only 250.
        assert_eq!(tracker.total_peak(), 300);
        assert_eq!(tracker.report().total_current(), 250);
    }

    #[test]
    fn clones_share_state() {
        let tracker = MemoryTracker::new();
        let clone = tracker.clone();
        clone.add("shared", 42);
        assert_eq!(tracker.peak_of("shared"), 42);
    }

    #[test]
    fn clear_current_preserves_peaks_and_reset_wipes_everything() {
        let tracker = MemoryTracker::new();
        tracker.set("x", 500);
        tracker.clear_current();
        assert_eq!(tracker.report().current_of("x"), 0);
        assert_eq!(tracker.peak_of("x"), 500);
        tracker.reset();
        assert_eq!(tracker.peak_of("x"), 0);
        assert_eq!(tracker.total_peak(), 0);
    }

    #[test]
    fn report_display_mentions_categories() {
        let tracker = MemoryTracker::new();
        tracker.set("dsmatrix", 64);
        let text = tracker.report().to_string();
        assert!(text.contains("dsmatrix"));
        assert!(text.contains("64"));
    }

    #[test]
    fn unknown_categories_read_as_zero() {
        let report = MemoryTracker::new().report();
        assert_eq!(report.peak_of("nope"), 0);
        assert_eq!(report.current_of("nope"), 0);
    }
}
