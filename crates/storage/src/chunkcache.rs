//! A budgeted cache of decoded row chunks over the disk-backed window store.
//!
//! The disk backends of [`crate::SegmentedWindowStore`] keep every segment's
//! row chunks serialised in a paged file; before this cache, *every* read of
//! a chunk paid a page fetch plus a deserialisation, so assembling the whole
//! window once per mine call cost O(window) page reads no matter how little
//! the window had changed.  [`ChunkCache`] keeps recently-decoded chunks
//! pinned in memory up to an explicit byte budget:
//!
//! * **Keying.**  Entries are keyed by `(segment uid, row id)`.  Segments are
//!   immutable once pushed, so a cached chunk can never go stale — the only
//!   invalidation event is the segment being dropped by a window slide
//!   ([`ChunkCache::invalidate_segment`]), the cache-level mirror of the
//!   store's generation bump on `push_segment`/`pop_segment`.
//! * **Budget + clock eviction.**  [`ChunkCache::insert`] charges each entry
//!   its decoded heap size plus bookkeeping overhead against the budget and
//!   runs a second-chance (clock) sweep while over it: entries touched by a
//!   [`ChunkCache::get`] since the hand last passed survive one extra round,
//!   untouched ones are evicted.  A budget of `0` disables the cache
//!   entirely, reproducing the uncached read path byte for byte.
//! * **Counters.**  Hits, misses, insertions, evictions and invalidations
//!   are tallied in [`ChunkCacheStats`], so the read-amplification tables of
//!   the benchmark harness report measured cache behaviour, not a model.
//!
//! The cache is deliberately read-through only: it fills on read misses, not
//! on segment writes, so a steady-state mine over an unchanged window region
//! re-reads exactly the pages a window slide invalidated — the incremental
//! bound the DSMatrix read path advertises.

use std::collections::{BTreeMap, VecDeque};

use crate::bitvec::BitVec;

/// Cumulative counters of a [`ChunkCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkCacheStats {
    /// Chunk reads served from the cache (no page fetch, no decode).
    pub hits: u64,
    /// Chunk reads that had to go to the paged file.
    pub misses: u64,
    /// Decoded chunks admitted into the cache.
    pub insertions: u64,
    /// Entries evicted by the clock sweep to stay within budget.
    pub evictions: u64,
    /// Entries removed because their segment left the window.
    pub invalidations: u64,
}

struct CacheEntry {
    chunk: BitVec,
    /// Budget charge of this entry (decoded heap bytes + overhead).
    bytes: usize,
    /// Second-chance bit: set on every hit, cleared when the clock hand
    /// passes, evicted when the hand finds it cleared.
    referenced: bool,
}

/// A budgeted `(segment uid, row id) → decoded chunk` cache with clock
/// eviction.  See the module docs for the design.
pub struct ChunkCache {
    budget_bytes: usize,
    used_bytes: usize,
    /// Segment uid → row id → entry.  Two levels so a window slide can drop
    /// one segment's entries without scanning the whole cache.
    entries: BTreeMap<u64, BTreeMap<usize, CacheEntry>>,
    /// Clock ring of candidate keys.  May hold keys whose entry has already
    /// been invalidated; those are skipped lazily by the sweep and compacted
    /// away once they outnumber the live slots.
    clock: VecDeque<(u64, usize)>,
    /// Ring slots whose entry has been invalidated but not yet reclaimed.
    stale_slots: usize,
    stats: ChunkCacheStats,
}

impl ChunkCache {
    /// Approximate per-entry bookkeeping charge on top of the decoded chunk's
    /// heap bytes (map nodes + clock slot).
    const ENTRY_OVERHEAD: usize =
        std::mem::size_of::<CacheEntry>() + 4 * std::mem::size_of::<(u64, usize)>();

    /// Creates a cache with the given byte budget (`0` disables caching).
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            used_bytes: 0,
            entries: BTreeMap::new(),
            clock: VecDeque::new(),
            stale_slots: 0,
            stats: ChunkCacheStats::default(),
        }
    }

    /// Returns `true` if the cache admits entries (non-zero budget).
    pub fn is_enabled(&self) -> bool {
        self.budget_bytes > 0
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Bytes currently charged against the budget.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.values().map(BTreeMap::len).sum()
    }

    /// Returns `true` if no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.values().all(BTreeMap::is_empty)
    }

    /// The cumulative hit/miss/eviction counters.
    pub fn stats(&self) -> ChunkCacheStats {
        self.stats
    }

    /// Re-budgets the cache, evicting as needed to fit the new budget.
    pub fn set_budget(&mut self, budget_bytes: usize) {
        self.budget_bytes = budget_bytes;
        if budget_bytes == 0 {
            self.clear();
        } else {
            self.evict_to_budget();
        }
    }

    /// Looks up the chunk of `(seg, row)`, marking it recently used.
    ///
    /// Callers consult the cache only for rows the segment is known to hold
    /// (absence is decided by the store's in-memory index), so every miss
    /// recorded here corresponds to a real page fetch.
    pub fn get(&mut self, seg: u64, row: usize) -> Option<&BitVec> {
        if !self.is_enabled() {
            return None;
        }
        match self.entries.get_mut(&seg).and_then(|m| m.get_mut(&row)) {
            Some(entry) => {
                entry.referenced = true;
                self.stats.hits += 1;
                Some(&entry.chunk)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Admits a freshly-decoded chunk, evicting colder entries if the budget
    /// overflows.  Chunks larger than the whole budget are not admitted.
    pub fn insert(&mut self, seg: u64, row: usize, chunk: &BitVec) {
        if !self.is_enabled() {
            return;
        }
        // Charge the clone we store, not the caller's chunk: callers pass
        // long-lived scratch buffers whose capacity stays at the widest row
        // they ever decoded, which would inflate every later charge (and
        // could wrongly refuse admission outright).
        let owned = chunk.clone();
        let bytes = owned.heap_bytes() + Self::ENTRY_OVERHEAD;
        if bytes > self.budget_bytes {
            return;
        }
        let entry = CacheEntry {
            chunk: owned,
            bytes,
            referenced: false,
        };
        let slot = self.entries.entry(seg).or_default();
        if let Some(previous) = slot.insert(row, entry) {
            // Re-insert of a key the clock already tracks: swap the charge.
            self.used_bytes -= previous.bytes;
        } else {
            self.clock.push_back((seg, row));
        }
        self.used_bytes += bytes;
        self.stats.insertions += 1;
        self.evict_to_budget();
    }

    /// Drops every entry of segment `seg` (the segment left the window).
    pub fn invalidate_segment(&mut self, seg: u64) {
        if let Some(rows) = self.entries.remove(&seg) {
            for entry in rows.values() {
                self.used_bytes -= entry.bytes;
                self.stats.invalidations += 1;
            }
            self.stale_slots += rows.len();
        }
        // Stale clock slots are skipped lazily by the sweep; compact the
        // ring once they outnumber the live slots so a long-running stream
        // whose budget never overflows (eviction never sweeps) cannot grow
        // the ring without bound.  Amortised O(1) per invalidated entry.
        if self.stale_slots > self.clock.len() / 2 {
            let entries = &self.entries;
            self.clock
                .retain(|(seg, row)| entries.get(seg).is_some_and(|m| m.contains_key(row)));
            self.stale_slots = 0;
        }
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.clock.clear();
        self.stale_slots = 0;
        self.used_bytes = 0;
    }

    /// The clock sweep: rotate the hand, giving referenced entries a second
    /// chance, until the budget holds again.
    fn evict_to_budget(&mut self) {
        while self.used_bytes > self.budget_bytes {
            let Some((seg, row)) = self.clock.pop_front() else {
                debug_assert!(false, "budget overflow with an empty clock ring");
                return;
            };
            let Some(rows) = self.entries.get_mut(&seg) else {
                self.stale_slots = self.stale_slots.saturating_sub(1);
                continue; // stale slot: segment was invalidated
            };
            let Some(entry) = rows.get_mut(&row) else {
                self.stale_slots = self.stale_slots.saturating_sub(1);
                continue; // stale slot: entry was evicted or replaced
            };
            if entry.referenced {
                entry.referenced = false;
                self.clock.push_back((seg, row));
                continue;
            }
            self.used_bytes -= entry.bytes;
            rows.remove(&row);
            self.stats.evictions += 1;
        }
    }
}

impl std::fmt::Debug for ChunkCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkCache")
            .field("budget_bytes", &self.budget_bytes)
            .field("used_bytes", &self.used_bytes)
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(bits: usize) -> BitVec {
        let mut c = BitVec::zeros(bits);
        if bits > 0 {
            c.set(0, true);
        }
        c
    }

    /// Budget that fits exactly `n` entries of `bits`-wide chunks.
    fn budget_for(n: usize, bits: usize) -> usize {
        n * (chunk(bits).heap_bytes() + ChunkCache::ENTRY_OVERHEAD)
    }

    #[test]
    fn get_after_insert_hits_and_counts() {
        let mut cache = ChunkCache::new(usize::MAX);
        assert!(cache.get(0, 1).is_none(), "cold cache misses");
        cache.insert(0, 1, &chunk(100));
        assert_eq!(cache.get(0, 1).unwrap().len(), 100);
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn zero_budget_disables_the_cache() {
        let mut cache = ChunkCache::new(0);
        assert!(!cache.is_enabled());
        cache.insert(0, 1, &chunk(10));
        assert!(cache.get(0, 1).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
        // Disabled lookups are not counted: there is no cache to miss.
        assert_eq!(cache.stats(), ChunkCacheStats::default());
    }

    #[test]
    fn eviction_keeps_the_budget() {
        let budget = budget_for(3, 64);
        let mut cache = ChunkCache::new(budget);
        for row in 0..10 {
            cache.insert(0, row, &chunk(64));
            assert!(cache.used_bytes() <= budget, "budget must hold");
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 7);
    }

    #[test]
    fn clock_gives_referenced_entries_a_second_chance() {
        let mut cache = ChunkCache::new(budget_for(2, 64));
        cache.insert(0, 0, &chunk(64)); // A
        assert!(cache.get(0, 0).is_some()); // touch A
        cache.insert(0, 1, &chunk(64)); // B (untouched)
        cache.insert(0, 2, &chunk(64)); // C → sweep: A survives, B evicted
        assert!(cache.get(0, 0).is_some(), "referenced entry survives");
        assert!(cache.get(0, 1).is_none(), "unreferenced entry is evicted");
        assert!(cache.get(0, 2).is_some());
    }

    #[test]
    fn invalidate_segment_reclaims_its_bytes() {
        let mut cache = ChunkCache::new(usize::MAX);
        cache.insert(3, 0, &chunk(64));
        cache.insert(3, 1, &chunk(64));
        cache.insert(4, 0, &chunk(64));
        let before = cache.used_bytes();
        cache.invalidate_segment(3);
        assert_eq!(cache.stats().invalidations, 2);
        assert!(cache.used_bytes() < before);
        assert!(cache.get(3, 0).is_none());
        assert!(cache.get(4, 0).is_some(), "other segments are untouched");
        // The stale clock slots are skipped without issue by later sweeps.
        cache.set_budget(budget_for(1, 64));
        assert!(cache.used_bytes() <= cache.budget_bytes());
    }

    #[test]
    fn oversized_chunks_are_not_admitted() {
        let mut cache = ChunkCache::new(64);
        cache.insert(0, 0, &chunk(100_000));
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn charge_follows_the_stored_clone_not_the_scratch_capacity() {
        // Callers pass long-lived scratch buffers whose capacity stays at
        // the widest chunk ever decoded; the budget must charge the stored
        // clone, or one wide row would poison every later admission.
        let mut scratch = chunk(100_000);
        scratch.resize(64); // len 64 bits, capacity still ~100k bits
        let mut cache = ChunkCache::new(budget_for(2, 64));
        cache.insert(0, 0, &scratch);
        assert_eq!(cache.len(), 1, "small chunk must be admitted");
        assert!(
            cache.used_bytes() <= budget_for(1, 64),
            "charge reflects the 64-bit payload, not the scratch capacity"
        );
        assert_eq!(cache.get(0, 0).unwrap().len(), 64);
    }

    #[test]
    fn reinserting_a_key_swaps_the_charge() {
        let mut cache = ChunkCache::new(usize::MAX);
        cache.insert(0, 0, &chunk(64));
        let first = cache.used_bytes();
        cache.insert(0, 0, &chunk(128));
        assert_eq!(cache.len(), 1);
        assert!(cache.used_bytes() > first);
        cache.insert(0, 0, &chunk(64));
        assert_eq!(cache.used_bytes(), first, "charge follows the live chunk");
    }

    #[test]
    fn clock_ring_stays_bounded_without_eviction_pressure() {
        // A long-running stream whose budget never overflows: eviction never
        // sweeps, so stale slots must be reclaimed by the invalidation-side
        // compaction instead.
        let mut cache = ChunkCache::new(usize::MAX);
        for seg in 0..200u64 {
            for row in 0..5 {
                cache.insert(seg, row, &chunk(64));
            }
            if seg >= 4 {
                cache.invalidate_segment(seg - 4); // 4 segments stay live
            }
        }
        assert_eq!(cache.len(), 4 * 5);
        assert!(
            cache.clock.len() <= 2 * cache.len(),
            "ring holds {} slots for {} live entries",
            cache.clock.len(),
            cache.len()
        );
    }

    #[test]
    fn set_budget_zero_clears_everything() {
        let mut cache = ChunkCache::new(usize::MAX);
        cache.insert(0, 0, &chunk(64));
        cache.set_budget(0);
        assert!(cache.is_empty());
        assert!(!cache.is_enabled());
    }
}
