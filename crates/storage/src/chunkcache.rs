//! A budgeted cache of decoded row chunks over the disk-backed window store.
//!
//! The disk backends of [`crate::SegmentedWindowStore`] keep every segment's
//! row chunks serialised in a paged file; before this cache, *every* read of
//! a chunk paid a page fetch plus a deserialisation, so assembling the whole
//! window once per mine call cost O(window) page reads no matter how little
//! the window had changed.  [`ChunkCache`] keeps recently-decoded chunks
//! pinned in memory up to an explicit byte budget:
//!
//! * **Keying.**  Entries are keyed by `(segment uid, row id)`.  Segments are
//!   immutable once pushed, so a cached chunk can never go stale — the only
//!   invalidation event is the segment being dropped by a window slide
//!   ([`ChunkCache::invalidate_segment`]), the cache-level mirror of the
//!   store's generation bump on `push_segment`/`pop_segment`.
//! * **Budget + clock eviction.**  [`ChunkCache::insert`] charges each entry
//!   its decoded heap size plus bookkeeping overhead against the budget and
//!   runs a second-chance (clock) sweep while over it: entries touched by a
//!   [`ChunkCache::get`] since the hand last passed survive one extra round,
//!   untouched ones are evicted.  A budget of `0` disables the cache
//!   entirely, reproducing the uncached read path byte for byte.
//! * **Counters.**  Hits, misses, insertions, evictions and invalidations
//!   are tallied in [`ChunkCacheStats`], so the read-amplification tables of
//!   the benchmark harness report measured cache behaviour, not a model.
//!
//! The cache is deliberately read-through only: it fills on read misses, not
//! on segment writes, so a steady-state mine over an unchanged window region
//! re-reads exactly the pages a window slide invalidated — the incremental
//! bound the DSMatrix read path advertises.

use std::collections::{BTreeMap, VecDeque};

use crate::bitvec::BitVec;

/// Cumulative counters of a [`ChunkCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkCacheStats {
    /// Chunk reads served from the cache (no page fetch, no decode).
    pub hits: u64,
    /// Chunk reads that had to go to the paged file.
    pub misses: u64,
    /// Decoded chunks admitted into the cache.
    pub insertions: u64,
    /// Entries evicted by the clock sweep to stay within budget.
    pub evictions: u64,
    /// Entries removed because their segment left the window.
    pub invalidations: u64,
}

struct CacheEntry {
    chunk: BitVec,
    /// Budget charge of this entry (decoded heap bytes + overhead).
    bytes: usize,
    /// Second-chance bit: set on every hit, cleared when the clock hand
    /// passes, evicted when the hand finds it cleared.
    referenced: bool,
    /// Pinned entries are borrowed by an in-progress mine and must not be
    /// evicted; the clock sweep rotates past them (see [`ChunkCache::pin`]).
    pinned: bool,
}

/// A budgeted `(segment uid, row id) → decoded chunk` cache with clock
/// eviction.  See the module docs for the design.
pub struct ChunkCache {
    budget_bytes: usize,
    used_bytes: usize,
    /// Segment uid → row id → entry.  Two levels so a window slide can drop
    /// one segment's entries without scanning the whole cache.
    entries: BTreeMap<u64, BTreeMap<usize, CacheEntry>>,
    /// Clock ring of candidate keys.  May hold keys whose entry has already
    /// been invalidated; those are skipped lazily by the sweep and compacted
    /// away once they outnumber the live slots.
    clock: VecDeque<(u64, usize)>,
    /// Ring slots whose entry has been invalidated but not yet reclaimed.
    stale_slots: usize,
    /// Bytes charged by pinned entries.  Invariant: `pinned_bytes <=
    /// budget_bytes` (pin admission refuses anything beyond it), so evicting
    /// every unpinned entry always gets the cache back under budget.
    ///
    /// Stale-borrow detection lives one layer up: the window store releases
    /// every pin on a generation bump and generation-checks each borrow.
    pinned_bytes: usize,
    stats: ChunkCacheStats,
}

impl ChunkCache {
    /// Approximate per-entry bookkeeping charge on top of the decoded chunk's
    /// heap bytes (map nodes + clock slot).
    const ENTRY_OVERHEAD: usize =
        std::mem::size_of::<CacheEntry>() + 4 * std::mem::size_of::<(u64, usize)>();

    /// Creates a cache with the given byte budget (`0` disables caching).
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            used_bytes: 0,
            entries: BTreeMap::new(),
            clock: VecDeque::new(),
            stale_slots: 0,
            pinned_bytes: 0,
            stats: ChunkCacheStats::default(),
        }
    }

    /// Returns `true` if the cache admits entries (non-zero budget).
    pub fn is_enabled(&self) -> bool {
        self.budget_bytes > 0
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Bytes currently charged against the budget.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.values().map(BTreeMap::len).sum()
    }

    /// Returns `true` if no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.values().all(BTreeMap::is_empty)
    }

    /// The cumulative hit/miss/eviction counters.
    pub fn stats(&self) -> ChunkCacheStats {
        self.stats
    }

    /// Re-budgets the cache, evicting as needed to fit the new budget.
    ///
    /// Re-budgeting requires `&mut`, so no chunk borrow can be outstanding;
    /// any pins are therefore released first — otherwise a shrink below the
    /// pinned charge could never get back under budget.
    pub fn set_budget(&mut self, budget_bytes: usize) {
        self.budget_bytes = budget_bytes;
        if budget_bytes == 0 {
            self.clear();
        } else {
            self.release_pins();
        }
    }

    /// Looks up the chunk of `(seg, row)`, marking it recently used.
    ///
    /// Callers consult the cache only for rows the segment is known to hold
    /// (absence is decided by the store's in-memory index), so every miss
    /// recorded here corresponds to a real page fetch.
    pub fn get(&mut self, seg: u64, row: usize) -> Option<&BitVec> {
        if !self.is_enabled() {
            return None;
        }
        match self.entries.get_mut(&seg).and_then(|m| m.get_mut(&row)) {
            Some(entry) => {
                entry.referenced = true;
                self.stats.hits += 1;
                Some(&entry.chunk)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Admits a freshly-decoded chunk, evicting colder entries if the budget
    /// overflows.  Chunks larger than the whole budget are not admitted.
    pub fn insert(&mut self, seg: u64, row: usize, chunk: &BitVec) {
        self.insert_entry(seg, row, chunk, false);
    }

    /// Admits a freshly-decoded chunk *pinned*: the entry is immune to the
    /// clock sweep until [`ChunkCache::release_pins`] runs.  Returns `false`
    /// — admitting nothing — if pinning it would push the total pinned charge
    /// past the budget (the caller falls back to eager assembly for that
    /// row); [`ChunkCache::insert`] may still admit it unpinned.
    pub fn insert_pinned(&mut self, seg: u64, row: usize, chunk: &BitVec) -> bool {
        self.insert_entry(seg, row, chunk, true)
    }

    fn insert_entry(&mut self, seg: u64, row: usize, chunk: &BitVec, pinned: bool) -> bool {
        if !self.is_enabled() {
            return false;
        }
        // Charge the clone we store, not the caller's chunk: callers pass
        // long-lived scratch buffers whose capacity stays at the widest row
        // they ever decoded, which would inflate every later charge (and
        // could wrongly refuse admission outright).
        let owned = chunk.clone();
        let bytes = owned.heap_bytes() + Self::ENTRY_OVERHEAD;
        if bytes > self.budget_bytes {
            return false;
        }
        if pinned && self.pinned_bytes + bytes > self.budget_bytes {
            // The pinned working set must stay within budget — that is what
            // guarantees eviction always terminates — so refuse the pin.
            return false;
        }
        let entry = CacheEntry {
            chunk: owned,
            bytes,
            referenced: false,
            pinned,
        };
        let slot = self.entries.entry(seg).or_default();
        if let Some(previous) = slot.insert(row, entry) {
            // Re-insert of a key the clock already tracks: swap the charge.
            self.used_bytes -= previous.bytes;
            if previous.pinned {
                self.pinned_bytes -= previous.bytes;
            }
        } else {
            self.clock.push_back((seg, row));
        }
        self.used_bytes += bytes;
        if pinned {
            self.pinned_bytes += bytes;
        }
        self.stats.insertions += 1;
        self.evict_to_budget();
        true
    }

    /// Pins the already-cached chunk of `(seg, row)` for the current pin
    /// epoch, shielding it from eviction until [`ChunkCache::release_pins`].
    /// Returns `false` (counting a miss) if the entry is absent — the caller
    /// then fetches the chunk and offers it via [`ChunkCache::insert_pinned`].
    pub fn pin(&mut self, seg: u64, row: usize) -> bool {
        if !self.is_enabled() {
            return false;
        }
        match self.entries.get_mut(&seg).and_then(|m| m.get_mut(&row)) {
            Some(entry) => {
                if !entry.pinned {
                    if self.pinned_bytes + entry.bytes > self.budget_bytes {
                        // Same admission rule as `insert_pinned`: the pinned
                        // working set never outgrows the budget.
                        self.stats.misses += 1;
                        return false;
                    }
                    entry.pinned = true;
                    self.pinned_bytes += entry.bytes;
                }
                entry.referenced = true;
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Unpins one entry (a row whose pin set could not be completed hands its
    /// partial pins back so other rows can use the budget).
    pub fn unpin(&mut self, seg: u64, row: usize) {
        if let Some(entry) = self.entries.get_mut(&seg).and_then(|m| m.get_mut(&row)) {
            if entry.pinned {
                entry.pinned = false;
                self.pinned_bytes -= entry.bytes;
            }
        }
    }

    /// Releases every pin.  The entries stay cached (that is the point — the
    /// next mine re-pins them without any page fetch); they merely become
    /// evictable again.
    pub fn release_pins(&mut self) {
        if self.pinned_bytes > 0 {
            for rows in self.entries.values_mut() {
                for entry in rows.values_mut() {
                    entry.pinned = false;
                }
            }
            self.pinned_bytes = 0;
        }
        self.evict_to_budget();
    }

    /// Bytes currently charged by pinned entries.
    pub fn pinned_bytes(&self) -> usize {
        self.pinned_bytes
    }

    /// Borrows the chunk of `(seg, row)` without touching the clock state or
    /// the hit/miss counters — the `&self` borrow surface the pinned read
    /// path serves rows from (the entry was already counted when it was
    /// pinned).
    pub fn peek(&self, seg: u64, row: usize) -> Option<&BitVec> {
        self.entries
            .get(&seg)
            .and_then(|m| m.get(&row))
            .map(|entry| &entry.chunk)
    }

    /// Drops every entry of segment `seg` (the segment left the window).
    pub fn invalidate_segment(&mut self, seg: u64) {
        if let Some(rows) = self.entries.remove(&seg) {
            for entry in rows.values() {
                self.used_bytes -= entry.bytes;
                if entry.pinned {
                    // A slide invalidates outstanding borrows (the store
                    // releases pins on every generation bump; this covers
                    // direct invalidation too): reclaim the pin charge.
                    self.pinned_bytes -= entry.bytes;
                }
                self.stats.invalidations += 1;
            }
            self.stale_slots += rows.len();
        }
        // Stale clock slots are skipped lazily by the sweep; compact the
        // ring once they outnumber the live slots so a long-running stream
        // whose budget never overflows (eviction never sweeps) cannot grow
        // the ring without bound.  Amortised O(1) per invalidated entry.
        if self.stale_slots > self.clock.len() / 2 {
            let entries = &self.entries;
            self.clock
                .retain(|(seg, row)| entries.get(seg).is_some_and(|m| m.contains_key(row)));
            self.stale_slots = 0;
        }
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.clock.clear();
        self.stale_slots = 0;
        self.used_bytes = 0;
        self.pinned_bytes = 0;
    }

    /// The clock sweep: rotate the hand, giving referenced entries a second
    /// chance, until the budget holds again.  Pinned entries only rotate —
    /// they are borrowed and must survive — which is safe because pin
    /// admission keeps `pinned_bytes <= budget_bytes`: whenever the budget
    /// overflows there is an unpinned entry to evict.
    fn evict_to_budget(&mut self) {
        while self.used_bytes > self.budget_bytes && self.used_bytes > self.pinned_bytes {
            let Some((seg, row)) = self.clock.pop_front() else {
                debug_assert!(false, "budget overflow with an empty clock ring");
                return;
            };
            let Some(rows) = self.entries.get_mut(&seg) else {
                self.stale_slots = self.stale_slots.saturating_sub(1);
                continue; // stale slot: segment was invalidated
            };
            let Some(entry) = rows.get_mut(&row) else {
                self.stale_slots = self.stale_slots.saturating_sub(1);
                continue; // stale slot: entry was evicted or replaced
            };
            if entry.pinned {
                self.clock.push_back((seg, row));
                continue;
            }
            if entry.referenced {
                entry.referenced = false;
                self.clock.push_back((seg, row));
                continue;
            }
            self.used_bytes -= entry.bytes;
            rows.remove(&row);
            self.stats.evictions += 1;
        }
    }

    /// Checks the structural invariants the shadow-model tests rely on:
    /// byte charges match the live entries, and every live entry owns exactly
    /// one clock slot (so `clock.len() == len() + stale_slots`).  Returns a
    /// description of the first violation, if any.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        let mut used = 0usize;
        let mut pinned = 0usize;
        for rows in self.entries.values() {
            for entry in rows.values() {
                used += entry.bytes;
                if entry.pinned {
                    pinned += entry.bytes;
                }
            }
        }
        if used != self.used_bytes {
            return Err(format!(
                "used_bytes drifted: counter {} vs live {}",
                self.used_bytes, used
            ));
        }
        if pinned != self.pinned_bytes {
            return Err(format!(
                "pinned_bytes drifted: counter {} vs live {}",
                self.pinned_bytes, pinned
            ));
        }
        if self.pinned_bytes > self.budget_bytes {
            return Err(format!(
                "pinned bytes {} exceed the budget {}",
                self.pinned_bytes, self.budget_bytes
            ));
        }
        if self.used_bytes > self.budget_bytes.max(self.pinned_bytes) {
            return Err(format!(
                "used bytes {} exceed the budget {}",
                self.used_bytes, self.budget_bytes
            ));
        }
        if self.clock.len() != self.len() + self.stale_slots {
            return Err(format!(
                "clock ring drifted: {} slots for {} live entries + {} stale",
                self.clock.len(),
                self.len(),
                self.stale_slots
            ));
        }
        Ok(())
    }
}

impl std::fmt::Debug for ChunkCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkCache")
            .field("budget_bytes", &self.budget_bytes)
            .field("used_bytes", &self.used_bytes)
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(bits: usize) -> BitVec {
        let mut c = BitVec::zeros(bits);
        if bits > 0 {
            c.set(0, true);
        }
        c
    }

    /// Budget that fits exactly `n` entries of `bits`-wide chunks.
    fn budget_for(n: usize, bits: usize) -> usize {
        n * (chunk(bits).heap_bytes() + ChunkCache::ENTRY_OVERHEAD)
    }

    #[test]
    fn get_after_insert_hits_and_counts() {
        let mut cache = ChunkCache::new(usize::MAX);
        assert!(cache.get(0, 1).is_none(), "cold cache misses");
        cache.insert(0, 1, &chunk(100));
        assert_eq!(cache.get(0, 1).unwrap().len(), 100);
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn zero_budget_disables_the_cache() {
        let mut cache = ChunkCache::new(0);
        assert!(!cache.is_enabled());
        cache.insert(0, 1, &chunk(10));
        assert!(cache.get(0, 1).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
        // Disabled lookups are not counted: there is no cache to miss.
        assert_eq!(cache.stats(), ChunkCacheStats::default());
    }

    #[test]
    fn eviction_keeps_the_budget() {
        let budget = budget_for(3, 64);
        let mut cache = ChunkCache::new(budget);
        for row in 0..10 {
            cache.insert(0, row, &chunk(64));
            assert!(cache.used_bytes() <= budget, "budget must hold");
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 7);
    }

    #[test]
    fn clock_gives_referenced_entries_a_second_chance() {
        let mut cache = ChunkCache::new(budget_for(2, 64));
        cache.insert(0, 0, &chunk(64)); // A
        assert!(cache.get(0, 0).is_some()); // touch A
        cache.insert(0, 1, &chunk(64)); // B (untouched)
        cache.insert(0, 2, &chunk(64)); // C → sweep: A survives, B evicted
        assert!(cache.get(0, 0).is_some(), "referenced entry survives");
        assert!(cache.get(0, 1).is_none(), "unreferenced entry is evicted");
        assert!(cache.get(0, 2).is_some());
    }

    #[test]
    fn invalidate_segment_reclaims_its_bytes() {
        let mut cache = ChunkCache::new(usize::MAX);
        cache.insert(3, 0, &chunk(64));
        cache.insert(3, 1, &chunk(64));
        cache.insert(4, 0, &chunk(64));
        let before = cache.used_bytes();
        cache.invalidate_segment(3);
        assert_eq!(cache.stats().invalidations, 2);
        assert!(cache.used_bytes() < before);
        assert!(cache.get(3, 0).is_none());
        assert!(cache.get(4, 0).is_some(), "other segments are untouched");
        // The stale clock slots are skipped without issue by later sweeps.
        cache.set_budget(budget_for(1, 64));
        assert!(cache.used_bytes() <= cache.budget_bytes());
    }

    #[test]
    fn oversized_chunks_are_not_admitted() {
        let mut cache = ChunkCache::new(64);
        cache.insert(0, 0, &chunk(100_000));
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn charge_follows_the_stored_clone_not_the_scratch_capacity() {
        // Callers pass long-lived scratch buffers whose capacity stays at
        // the widest chunk ever decoded; the budget must charge the stored
        // clone, or one wide row would poison every later admission.
        let mut scratch = chunk(100_000);
        scratch.resize(64); // len 64 bits, capacity still ~100k bits
        let mut cache = ChunkCache::new(budget_for(2, 64));
        cache.insert(0, 0, &scratch);
        assert_eq!(cache.len(), 1, "small chunk must be admitted");
        assert!(
            cache.used_bytes() <= budget_for(1, 64),
            "charge reflects the 64-bit payload, not the scratch capacity"
        );
        assert_eq!(cache.get(0, 0).unwrap().len(), 64);
    }

    #[test]
    fn reinserting_a_key_swaps_the_charge() {
        let mut cache = ChunkCache::new(usize::MAX);
        cache.insert(0, 0, &chunk(64));
        let first = cache.used_bytes();
        cache.insert(0, 0, &chunk(128));
        assert_eq!(cache.len(), 1);
        assert!(cache.used_bytes() > first);
        cache.insert(0, 0, &chunk(64));
        assert_eq!(cache.used_bytes(), first, "charge follows the live chunk");
    }

    #[test]
    fn clock_ring_stays_bounded_without_eviction_pressure() {
        // A long-running stream whose budget never overflows: eviction never
        // sweeps, so stale slots must be reclaimed by the invalidation-side
        // compaction instead.
        let mut cache = ChunkCache::new(usize::MAX);
        for seg in 0..200u64 {
            for row in 0..5 {
                cache.insert(seg, row, &chunk(64));
            }
            if seg >= 4 {
                cache.invalidate_segment(seg - 4); // 4 segments stay live
            }
        }
        assert_eq!(cache.len(), 4 * 5);
        assert!(
            cache.clock.len() <= 2 * cache.len(),
            "ring holds {} slots for {} live entries",
            cache.clock.len(),
            cache.len()
        );
    }

    #[test]
    fn set_budget_zero_clears_everything() {
        let mut cache = ChunkCache::new(usize::MAX);
        cache.insert(0, 0, &chunk(64));
        cache.set_budget(0);
        assert!(cache.is_empty());
        assert!(!cache.is_enabled());
    }

    #[test]
    fn pinned_entries_survive_eviction_pressure() {
        let mut cache = ChunkCache::new(budget_for(2, 64));
        assert!(cache.insert_pinned(0, 0, &chunk(64)));
        for row in 1..10 {
            cache.insert(0, row, &chunk(64));
        }
        assert!(
            cache.peek(0, 0).is_some(),
            "the pinned entry must outlive every sweep"
        );
        assert!(cache.used_bytes() <= cache.budget_bytes());
        cache.release_pins();
        cache.insert(0, 20, &chunk(64));
        cache.insert(0, 21, &chunk(64));
        assert!(
            cache.peek(0, 0).is_none(),
            "released entries are evictable again"
        );
    }

    #[test]
    fn pin_admission_is_capped_by_the_budget() {
        let mut cache = ChunkCache::new(budget_for(2, 64));
        assert!(cache.insert_pinned(0, 0, &chunk(64)));
        assert!(cache.insert_pinned(0, 1, &chunk(64)));
        assert!(
            !cache.insert_pinned(0, 2, &chunk(64)),
            "a third pin would push pinned bytes past the budget"
        );
        // The refused chunk can still be cached unpinned (it just becomes
        // eviction fodder), and releasing the pins frees the pin budget.
        cache.insert(0, 2, &chunk(64));
        cache.release_pins();
        assert_eq!(cache.pinned_bytes(), 0);
        assert!(cache.insert_pinned(0, 3, &chunk(64)));
    }

    #[test]
    fn pin_hits_existing_entries_and_counts() {
        let mut cache = ChunkCache::new(usize::MAX);
        assert!(!cache.pin(0, 0), "pinning an absent entry misses");
        cache.insert(0, 0, &chunk(64));
        assert!(cache.pin(0, 0));
        assert!(cache.pinned_bytes() > 0);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // Peek serves the borrow without touching the counters.
        assert!(cache.peek(0, 0).is_some());
        assert_eq!(cache.stats().hits, 1);
        // Unpin of a pinned row's partial set hands the charge back.
        cache.unpin(0, 0);
        assert_eq!(cache.pinned_bytes(), 0);
    }

    #[test]
    fn invalidating_a_segment_reclaims_its_pin_charge() {
        let mut cache = ChunkCache::new(usize::MAX);
        cache.insert_pinned(7, 0, &chunk(64));
        cache.release_pins();
        assert_eq!(cache.pinned_bytes(), 0);
        // A slide that drops a segment holding pinned chunks reclaims the
        // pin charge along with the entries.
        cache.insert_pinned(8, 0, &chunk(64));
        assert!(cache.pinned_bytes() > 0);
        cache.invalidate_segment(8);
        assert_eq!(cache.pinned_bytes(), 0);
        cache.check_invariants().unwrap();
    }

    /// Satellite regression: repeated slide-invalidate + re-budget cycles
    /// (including `set_budget(0)`) over randomized op sequences must never
    /// drift `stale_slots`, `current_bytes` or the eviction bookkeeping.
    /// The shadow model tracks the authoritative chunk per key; the
    /// structural counters are checked by `check_invariants` after every op.
    #[test]
    fn shadow_model_invariants_hold_under_randomized_ops() {
        let mut rng = 0x853c49e6748fea9bu64;
        let mut next = move |bound: usize| {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) as usize % bound.max(1)
        };
        let mut cache = ChunkCache::new(budget_for(4, 64));
        // Authoritative chunk length per key (uids never reused, so a plain
        // map keyed by (seg, row) is enough).
        let mut model: BTreeMap<(u64, usize), usize> = BTreeMap::new();
        let mut live_segs: Vec<u64> = Vec::new();
        let mut next_seg = 0u64;
        for step in 0..4000 {
            match next(100) {
                0..=39 => {
                    // Insert (sometimes pinned) into a live or fresh segment.
                    let seg = if live_segs.is_empty() || next(4) == 0 {
                        live_segs.push(next_seg);
                        next_seg += 1;
                        *live_segs.last().unwrap()
                    } else {
                        live_segs[next(live_segs.len())]
                    };
                    let row = next(6);
                    let bits = 32 + next(3) * 32;
                    if next(5) == 0 {
                        if !cache.insert_pinned(seg, row, &chunk(bits)) {
                            cache.insert(seg, row, &chunk(bits));
                        }
                    } else {
                        cache.insert(seg, row, &chunk(bits));
                    }
                    // Sync the model from the cache itself: an insert may be
                    // refused (disabled cache, oversized chunk) and must not
                    // leave a stale model value behind.
                    match cache.peek(seg, row) {
                        Some(stored) => model.insert((seg, row), stored.len()),
                        None => model.remove(&(seg, row)),
                    };
                }
                40..=59 => {
                    let seg = next(next_seg.max(1) as usize) as u64;
                    let row = next(6);
                    if let Some(found) = cache.get(seg, row) {
                        assert_eq!(
                            Some(&found.len()),
                            model.get(&(seg, row)),
                            "step {step}: cache served a chunk the model never stored"
                        );
                    }
                }
                60..=74 => {
                    // Slide: invalidate the oldest live segment.
                    if !live_segs.is_empty() {
                        let seg = live_segs.remove(0);
                        cache.invalidate_segment(seg);
                        model.retain(|&(s, _), _| s != seg);
                    }
                }
                75..=84 => {
                    let seg = next(next_seg.max(1) as usize) as u64;
                    let row = next(6);
                    if next(2) == 0 {
                        cache.pin(seg, row);
                    } else {
                        cache.unpin(seg, row);
                    }
                }
                85..=89 => {
                    cache.release_pins();
                }
                _ => {
                    // Re-budget, including the disable-and-clear corner.
                    let budget = [0, budget_for(1, 64), budget_for(4, 64), usize::MAX][next(4)];
                    cache.set_budget(budget);
                    if budget == 0 {
                        model.clear();
                    }
                }
            }
            // Evictions shrink the cache below the model, never past it, and
            // every surviving entry must agree with the model.
            cache
                .check_invariants()
                .unwrap_or_else(|violation| panic!("step {step}: {violation}"));
            assert!(cache.len() <= model.len(), "step {step}: ghost entries");
        }
        // The sequence must actually have exercised the interesting paths.
        let stats = cache.stats();
        assert!(stats.evictions > 0);
        assert!(stats.invalidations > 0);
        assert!(stats.hits > 0);
    }
}
