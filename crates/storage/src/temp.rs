//! Self-cleaning temporary directories for the disk-backed structures.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use fsm_types::Result;

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named temporary directory removed when the value is dropped.
///
/// The DSMatrix and DSTable spill their window contents here by default so
/// that tests and benches never leave files behind.  The implementation uses
/// only the standard library (process id + monotonic counter) to stay within
/// the approved dependency set.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh temporary directory under the system temp location.
    pub fn new(prefix: &str) -> Result<Self> {
        let unique = format!(
            "{prefix}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let path = std::env::temp_dir().join("streaming-fsm").join(unique);
        std::fs::create_dir_all(&path)?;
        Ok(Self { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Builds a file path inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best effort: a failure to clean up must never panic a drop.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directories_are_unique_and_cleaned_up() {
        let first = TempDir::new("unit").unwrap();
        let second = TempDir::new("unit").unwrap();
        assert_ne!(first.path(), second.path());
        assert!(first.path().is_dir());

        let remembered = first.path().to_path_buf();
        std::fs::write(first.file("data.bin"), b"contents").unwrap();
        drop(first);
        assert!(!remembered.exists(), "directory should be removed on drop");
        assert!(second.path().is_dir());
    }

    #[test]
    fn file_paths_live_inside_the_directory() {
        let dir = TempDir::new("unit").unwrap();
        let file = dir.file("rows.bin");
        assert!(file.starts_with(dir.path()));
    }
}
