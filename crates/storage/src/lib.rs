//! Storage substrate: bit vectors, paged files, disk-backed row stores and
//! memory accounting.
//!
//! The paper's central space argument is that the DSTable and the DSMatrix
//! keep the window contents *on disk* while only small working structures
//! (one FP-tree, or a handful of bit vectors) live in memory.  This crate
//! provides the pieces needed to make that claim measurable:
//!
//! * [`BitVec`] — the bit-vector representation used by the DSMatrix rows and
//!   by the vertical mining algorithms (§3.4, §4);
//! * [`PagedFile`] — a minimal fixed-page file abstraction;
//! * [`RowStore`] — a disk- or memory-backed store of variable-length rows,
//!   used by the DSTable (and by every window segment) to spill contents to
//!   disk;
//! * [`SegmentedWindowStore`] — an append-friendly queue of per-batch row
//!   segments: the DSMatrix capture path, where a window slide appends one
//!   segment and unlinks one instead of rewriting every row (writes are
//!   counted in [`CaptureStats`]).  On the memory backend its segments are
//!   readable zero-copy through [`ChunkedRow`] views and the chunk-aware
//!   `BitVec` kernels; on the disk backends chunk reads go through a
//!   budgeted [`ChunkCache`] (page fetches and hits counted in
//!   [`ReadIoStats`]), and whole rows can be *pinned and borrowed* out of
//!   that cache (`pin_row_chunks` / `pinned_chunked_row`) so a mine reads
//!   them in place — as [`RowRef`]s — without assembling flat copies;
//! * [`ChunkCache`] — the budgeted `(segment, row) → decoded chunk` cache
//!   with clock eviction and a pin surface (pinned entries are immune to
//!   eviction for the duration of a borrow epoch) behind that read path;
//! * [`BudgetGovernor`] — process-wide arbitration of those chunk-cache
//!   budgets across many matrices (the multi-tenant service's one cap), with
//!   per-member [`BudgetLease`]s granted under a fair-share rule;
//! * [`MemoryTracker`] — per-structure resident/peak byte accounting used by
//!   the space-efficiency experiment (E2);
//! * [`TempDir`] — a small self-cleaning temporary directory helper so the
//!   disk-backed structures need no external crates;
//! * [`Wal`] — the write-ahead log (length-prefixed, checksummed,
//!   fsync-on-commit records with torn-tail truncation on open) and
//!   [`Checkpoint`] — segment-aligned metadata snapshots; together they make
//!   the disk backend crash-recoverable (ROADMAP item 5);
//! * [`Hibernation`] — the full-payload spill image a *non-durable* window
//!   serialises itself into when the multi-tenant service evicts its tenant
//!   from the resident set (durable tenants spill by checkpointing instead —
//!   same framing, no second copy of the data).  Every durable artifact is
//!   covered by the hand-rolled CRC-32 in [`checksum`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitvec;
pub mod checkpoint;
pub mod checksum;
pub mod chunkcache;
pub mod governor;
pub mod paged;
pub mod rowstore;
pub mod segment;
pub mod spill;
pub mod temp;
pub mod tracker;
pub mod wal;

pub use bitvec::BitVec;
pub use checkpoint::{Checkpoint, CheckpointRow, CheckpointSegment};
pub use checksum::crc32;
pub use chunkcache::{ChunkCache, ChunkCacheStats};
pub use governor::{BudgetGovernor, BudgetLease};
pub use paged::PagedFile;
pub use rowstore::{RowStore, StorageBackend};
pub use segment::{
    remove_segment_file, scan_segment_files, CaptureStats, ChunkCursor, ChunkedRow, EpochSegment,
    ReadIoStats, RowRef, SegmentMeta, SegmentedWindowStore,
};
pub use spill::{Hibernation, HibernationRow, HibernationSegment};
pub use temp::TempDir;
pub use tracker::{MemoryReport, MemoryTracker};
pub use wal::{TornTail, Wal, WalRecord, WalStats};
