//! Write-ahead log: the durability anchor of the disk backend.
//!
//! Every `ingest_batch` on a durable window appends exactly one record to the
//! WAL — the encoded batch — and `fsync`s it *before* any in-memory or
//! segment-file state changes.  A crash at any instant therefore leaves the
//! durable state describable as "the last checkpoint plus a prefix of the
//! WAL", and recovery only has to find where that prefix ends.
//!
//! # Record format
//!
//! ```text
//! ┌─────────────┬─────────────┬─────────────┬───────────────────┐
//! │ len: u32 LE │ crc: u32 LE │ seq: u64 LE │ payload (len − 8) │
//! └─────────────┴─────────────┴─────────────┴───────────────────┘
//! ```
//!
//! `len` counts the sequence number plus the payload; `crc` is the CRC-32 of
//! exactly those `len` bytes.  Sequence numbers start at 1 and increase by 1
//! per record, so replay can verify it is not reading a pruned or gapped log.
//!
//! # Torn tails
//!
//! A crash mid-append leaves a torn final record: a short header, a short
//! body, or a complete-looking body whose checksum fails.  [`Wal::open`]
//! scans the log from the start and truncates the file at the first bad
//! record — everything before it was fsynced by construction, everything
//! after it never committed.
//!
//! # Pruning
//!
//! Once a checkpoint covers a prefix of the log, [`Wal::prune_through`]
//! rewrites the surviving suffix to a temp file and atomically renames it
//! over the log, so the WAL's size stays proportional to the checkpoint
//! interval rather than the stream length.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use fsm_types::{FsmError, Result};

use crate::checksum::crc32;
use crate::paged::{annotate, artifact_name};

/// Size of the fixed record header (`len` + `crc`).
const HEADER_BYTES: usize = 8;
/// Bytes of the sequence number inside the checksummed body.
const SEQ_BYTES: usize = 8;

/// One committed WAL record, as handed back for replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Commit sequence number (1-based, contiguous).
    pub seq: u64,
    /// The caller's payload (an encoded batch, for the DSMatrix).
    pub payload: Vec<u8>,
}

/// What [`Wal::open`] found (and did) about the tail of the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset the log was truncated back to.
    pub truncated_at: u64,
    /// Why the first bad record was rejected.
    pub reason: String,
}

/// Cumulative durability counters of a [`Wal`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Bytes appended to the log (headers + bodies).
    pub bytes_written: u64,
    /// `fsync` system calls issued by appends and prunes.
    pub fsyncs: u64,
}

/// An append-only, checksummed, fsync-on-commit log file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Byte length of the committed log (== file length).
    len: u64,
    /// Sequence number of the last committed record (0 if none).
    last_seq: u64,
    stats: WalStats,
}

impl Wal {
    /// Creates a fresh, empty log at `path`, truncating any existing file.
    ///
    /// This is the non-recovery path: a brand-new durable window starts with
    /// an empty history.  Recovery must use [`Wal::open`] instead.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|err| annotate(err, "create WAL", &path))?;
        Ok(Self {
            file,
            path,
            len: 0,
            last_seq: 0,
            stats: WalStats::default(),
        })
    }

    /// Opens an existing log (creating an empty one if absent), scanning all
    /// records and truncating a torn tail.
    ///
    /// Returns the WAL positioned for appending, every committed record in
    /// order, and a [`TornTail`] report if the scan had to truncate.
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, Vec<WalRecord>, Option<TornTail>)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|err| annotate(err, "open WAL", &path))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut records = Vec::new();
        let mut good = 0usize;
        let mut torn: Option<TornTail> = None;
        while good < bytes.len() {
            match decode_record(&bytes[good..]) {
                Ok((record, consumed)) => {
                    records.push(record);
                    good += consumed;
                }
                Err(reason) => {
                    torn = Some(TornTail {
                        truncated_at: good as u64,
                        reason: format!(
                            "record #{} of {}: {reason}",
                            records.len() + 1,
                            artifact_name(&path)
                        ),
                    });
                    break;
                }
            }
        }
        if torn.is_some() {
            file.set_len(good as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(good as u64))?;
        let last_seq = records.last().map_or(0, |r| r.seq);
        let mut wal = Self {
            file,
            path,
            len: good as u64,
            last_seq,
            stats: WalStats::default(),
        };
        if torn.is_some() {
            wal.stats.fsyncs += 1;
        }
        Ok((wal, records, torn))
    }

    /// Appends one record and forces it to stable storage before returning.
    ///
    /// `seq` must continue the log (`last sequence + 1`): the contiguity that
    /// replay later relies on is enforced at write time.
    pub fn append(&mut self, seq: u64, payload: &[u8]) -> Result<()> {
        if seq != self.last_seq + 1 {
            return Err(FsmError::corrupt(format!(
                "WAL append out of order: got seq {seq}, expected {}",
                self.last_seq + 1
            )));
        }
        let record = frame(seq, payload);
        self.file.write_all(&record)?;
        self.file.sync_all()?;
        self.stats.fsyncs += 1;
        self.stats.bytes_written += record.len() as u64;
        self.len += record.len() as u64;
        self.last_seq = seq;
        Ok(())
    }

    /// Drops every record with `seq <= through`, rewriting the survivors to a
    /// temporary file and atomically renaming it over the log.
    ///
    /// Called after a checkpoint commits: the pruned prefix is exactly the
    /// history the checkpoint already captures.
    pub fn prune_through(&mut self, through: u64) -> Result<()> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        self.file.read_to_end(&mut bytes)?;
        let mut keep = Vec::new();
        let mut offset = 0usize;
        while offset < bytes.len() {
            let (record, consumed) = decode_record(&bytes[offset..]).map_err(|reason| {
                FsmError::corrupt_artifact(
                    artifact_name(&self.path),
                    format!("while pruning: {reason}"),
                )
            })?;
            if record.seq > through {
                keep.extend_from_slice(&bytes[offset..offset + consumed]);
            }
            offset += consumed;
        }

        let tmp = self.path.with_extension("log.tmp");
        let mut tmp_file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|err| annotate(err, "create WAL prune temp", &tmp))?;
        tmp_file.write_all(&keep)?;
        tmp_file.sync_all()?;
        self.stats.fsyncs += 1;
        drop(tmp_file);
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|err| annotate(err, "reopen pruned WAL", &self.path))?;
        self.file.seek(SeekFrom::Start(keep.len() as u64))?;
        self.len = keep.len() as u64;
        Ok(())
    }

    /// Byte length of the committed log.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Sequence number of the last committed record (0 if the log is empty).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The cumulative durability counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }
}

/// Frames `payload` as one wire-format record (exposed so crash-point tests
/// can compute byte-exact record boundaries without reaching into the file).
pub fn frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let body_len = SEQ_BYTES + payload.len();
    let mut record = Vec::with_capacity(HEADER_BYTES + body_len);
    record.extend_from_slice(&(body_len as u32).to_le_bytes());
    record.extend_from_slice(&[0u8; 4]); // crc placeholder
    record.extend_from_slice(&seq.to_le_bytes());
    record.extend_from_slice(payload);
    let crc = crc32(&record[HEADER_BYTES..]);
    record[4..8].copy_from_slice(&crc.to_le_bytes());
    record
}

/// Decodes the record at the start of `bytes`, returning it and the bytes
/// consumed, or a human-readable reason why the bytes are not a committed
/// record (short header, short body, checksum mismatch).
fn decode_record(bytes: &[u8]) -> std::result::Result<(WalRecord, usize), String> {
    if bytes.len() < HEADER_BYTES {
        return Err(format!(
            "torn header ({} of {HEADER_BYTES} bytes)",
            bytes.len()
        ));
    }
    let mut word = [0u8; 4];
    word.copy_from_slice(&bytes[0..4]);
    let body_len = u32::from_le_bytes(word) as usize;
    word.copy_from_slice(&bytes[4..8]);
    let stored_crc = u32::from_le_bytes(word);
    if body_len < SEQ_BYTES {
        return Err(format!(
            "body length {body_len} is shorter than the sequence number"
        ));
    }
    if bytes.len() < HEADER_BYTES + body_len {
        return Err(format!(
            "torn body ({} of {body_len} bytes)",
            bytes.len() - HEADER_BYTES
        ));
    }
    let body = &bytes[HEADER_BYTES..HEADER_BYTES + body_len];
    let actual_crc = crc32(body);
    if actual_crc != stored_crc {
        return Err(format!(
            "checksum mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
        ));
    }
    let mut seq_word = [0u8; 8];
    seq_word.copy_from_slice(&body[..SEQ_BYTES]);
    let seq = u64::from_le_bytes(seq_word);
    Ok((
        WalRecord {
            seq,
            payload: body[SEQ_BYTES..].to_vec(),
        },
        HEADER_BYTES + body_len,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp::TempDir;

    fn reopen(path: &Path) -> (Wal, Vec<WalRecord>, Option<TornTail>) {
        Wal::open(path).unwrap()
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.file("wal.log");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, b"alpha").unwrap();
        wal.append(2, b"").unwrap();
        wal.append(3, b"gamma-gamma").unwrap();
        assert_eq!(wal.last_seq(), 3);
        assert_eq!(wal.stats().fsyncs, 3, "one fsync per commit");
        let expected_len = (16 + 5) + 16 + (16 + 11);
        assert_eq!(wal.stats().bytes_written, expected_len);
        assert_eq!(wal.len_bytes(), expected_len);
        drop(wal);

        let (wal, records, torn) = reopen(&path);
        assert!(torn.is_none());
        assert_eq!(wal.last_seq(), 3);
        assert_eq!(
            records,
            vec![
                WalRecord {
                    seq: 1,
                    payload: b"alpha".to_vec()
                },
                WalRecord {
                    seq: 2,
                    payload: Vec::new()
                },
                WalRecord {
                    seq: 3,
                    payload: b"gamma-gamma".to_vec()
                },
            ]
        );
    }

    #[test]
    fn out_of_order_append_is_rejected() {
        let dir = TempDir::new("wal").unwrap();
        let mut wal = Wal::create(dir.file("wal.log")).unwrap();
        wal.append(1, b"x").unwrap();
        assert!(wal.append(3, b"y").is_err());
        assert!(wal.append(1, b"y").is_err());
        wal.append(2, b"y").unwrap();
    }

    #[test]
    fn every_torn_tail_prefix_truncates_to_the_committed_records() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.file("wal.log");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, b"first").unwrap();
        let committed = wal.len_bytes();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        let record2 = frame(2, b"second record payload");

        for cut in 0..record2.len() {
            let mut torn_bytes = full.clone();
            torn_bytes.extend_from_slice(&record2[..cut]);
            std::fs::write(&path, &torn_bytes).unwrap();

            let (wal, records, torn) = reopen(&path);
            assert_eq!(records.len(), 1, "cut at {cut} must keep only record 1");
            assert_eq!(wal.last_seq(), 1);
            if cut == 0 {
                assert!(torn.is_none(), "an exact record boundary is not torn");
            } else {
                let torn = torn.expect("partial record must be reported");
                assert_eq!(torn.truncated_at, committed);
                assert!(torn.reason.contains("record #2"), "{}", torn.reason);
            }
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                committed,
                "file must be truncated back to the committed prefix"
            );
        }

        // The full second record is, of course, not torn.
        let mut whole = full.clone();
        whole.extend_from_slice(&record2);
        std::fs::write(&path, &whole).unwrap();
        let (_, records, torn) = reopen(&path);
        assert_eq!(records.len(), 2);
        assert!(torn.is_none());
    }

    #[test]
    fn bit_flip_in_a_record_truncates_there_and_reports_it() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.file("wal.log");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, b"first").unwrap();
        let first_len = wal.len_bytes() as usize;
        wal.append(2, b"second").unwrap();
        wal.append(3, b"third").unwrap();
        drop(wal);

        // Flip one payload bit inside record 2.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[first_len + HEADER_BYTES + SEQ_BYTES] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();

        let (wal, records, torn) = reopen(&path);
        assert_eq!(records.len(), 1, "records after the bad one are dropped");
        assert_eq!(wal.last_seq(), 1);
        let torn = torn.expect("corruption must be reported");
        assert!(
            torn.reason.contains("record #2") && torn.reason.contains("checksum mismatch"),
            "report must name the artifact: {}",
            torn.reason
        );
    }

    #[test]
    fn prune_keeps_only_newer_records_and_appends_continue() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.file("wal.log");
        let mut wal = Wal::create(&path).unwrap();
        for seq in 1..=5u64 {
            wal.append(seq, format!("payload-{seq}").as_bytes())
                .unwrap();
        }
        wal.prune_through(3).unwrap();
        assert_eq!(wal.last_seq(), 5);
        wal.append(6, b"post-prune").unwrap();
        drop(wal);

        let (_, records, torn) = reopen(&path);
        assert!(torn.is_none());
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6]);
        assert_eq!(records[0].payload, b"payload-4");
    }

    #[test]
    fn prune_everything_leaves_an_appendable_empty_log() {
        let dir = TempDir::new("wal").unwrap();
        let mut wal = Wal::create(dir.file("wal.log")).unwrap();
        wal.append(1, b"x").unwrap();
        wal.append(2, b"y").unwrap();
        wal.prune_through(2).unwrap();
        assert_eq!(wal.len_bytes(), 0);
        wal.append(3, b"z").unwrap();
        let (_, records, _) = reopen(wal.path());
        drop(wal);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 3);
    }

    #[test]
    fn open_on_missing_path_creates_an_empty_log() {
        let dir = TempDir::new("wal").unwrap();
        let (wal, records, torn) = Wal::open(dir.file("fresh.log")).unwrap();
        assert_eq!(wal.last_seq(), 0);
        assert!(records.is_empty());
        assert!(torn.is_none());
    }
}
