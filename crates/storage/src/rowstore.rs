//! A disk- or memory-backed store of variable-length rows.
//!
//! The DSMatrix keeps one row of bits per domain edge, and the DSTable keeps
//! one row of pointer entries per domain item; both structures are "kept on
//! the disk" in the paper.  `RowStore` gives them a common spill target: rows
//! are written whole, read back whole, and rewritten in bulk when the window
//! slides.  An in-memory backend with the same interface exists for unit
//! tests and for the storage ablation (A2).

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::paged::PagedFile;
use crate::temp::TempDir;
use fsm_types::{FsmError, Result};

/// Where a [`RowStore`] keeps its rows.
#[derive(Debug, Clone, Default)]
pub enum StorageBackend {
    /// Rows live on disk in a self-cleaning temporary directory (the paper's
    /// default: the capture structure does not consume main memory).
    #[default]
    DiskTemp,
    /// Rows live on disk at an explicit location (kept across runs).
    DiskAt(PathBuf),
    /// Rows live in main memory (baseline / ablation configuration).
    Memory,
}

enum Inner {
    Memory {
        rows: BTreeMap<usize, Vec<u8>>,
    },
    Disk {
        /// Keeps the temp directory alive for the lifetime of the store.
        _tempdir: Option<TempDir>,
        file: PagedFile,
        /// Row id → (first page, byte length).  Rows are stored in
        /// consecutive pages.
        index: BTreeMap<usize, (usize, usize)>,
    },
}

/// A store of variable-length byte rows addressed by a dense row id.
pub struct RowStore {
    inner: Inner,
    page_size: usize,
}

impl RowStore {
    /// Opens a row store with the given backend and the default page size.
    pub fn open(backend: StorageBackend) -> Result<Self> {
        Self::with_page_size(backend, PagedFile::DEFAULT_PAGE_SIZE)
    }

    /// Opens a row store with an explicit page size (useful in tests).
    pub fn with_page_size(backend: StorageBackend, page_size: usize) -> Result<Self> {
        let inner = match backend {
            StorageBackend::Memory => Inner::Memory {
                rows: BTreeMap::new(),
            },
            StorageBackend::DiskTemp => {
                let dir = TempDir::new("rowstore")?;
                let file = PagedFile::create(dir.file("rows.pages"), page_size)?;
                Inner::Disk {
                    _tempdir: Some(dir),
                    file,
                    index: BTreeMap::new(),
                }
            }
            StorageBackend::DiskAt(path) => {
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent)?;
                }
                let file = PagedFile::create(&path, page_size)?;
                Inner::Disk {
                    _tempdir: None,
                    file,
                    index: BTreeMap::new(),
                }
            }
        };
        Ok(Self { inner, page_size })
    }

    /// Reopens an existing on-disk row store from its page file and a row
    /// index recorded in a checkpoint.
    ///
    /// The index is the store's only non-derivable in-memory state, so
    /// recovery hands it back as `(row id, first page, byte length)` entries —
    /// exactly what [`RowStore::row_entries`] exported at checkpoint time.
    /// Entries that point past the end of the file are rejected as corruption
    /// (a torn file can be shorter than the checkpoint remembers).
    pub fn open_existing<I>(path: PathBuf, page_size: usize, entries: I) -> Result<Self>
    where
        I: IntoIterator<Item = (usize, usize, usize)>,
    {
        let file = PagedFile::open_existing(&path, page_size)?;
        let mut index = BTreeMap::new();
        for (id, first_page, len) in entries {
            // Empty rows still occupy one (empty) page on disk.
            let pages_needed = len.div_ceil(page_size).max(1);
            if first_page + pages_needed > file.num_pages() {
                return Err(FsmError::corrupt_artifact(
                    crate::paged::artifact_name(&path),
                    format!(
                        "row {id} needs pages {first_page}..{} but the file has only {}",
                        first_page + pages_needed,
                        file.num_pages()
                    ),
                ));
            }
            index.insert(id, (first_page, len));
        }
        Ok(Self {
            inner: Inner::Disk {
                _tempdir: None,
                file,
                index,
            },
            page_size,
        })
    }

    /// Returns `true` if the rows are kept in main memory.
    pub fn is_memory_resident(&self) -> bool {
        matches!(self.inner, Inner::Memory { .. })
    }

    /// Exports the disk index as `(row id, first page, byte length)` entries
    /// in ascending row order — the metadata a checkpoint must persist to
    /// reopen this store via [`RowStore::open_existing`].
    ///
    /// Returns `None` for the memory backend, which has no durable form.
    pub fn row_entries(&self) -> Option<Vec<(usize, usize, usize)>> {
        match &self.inner {
            Inner::Memory { .. } => None,
            Inner::Disk { index, .. } => Some(
                index
                    .iter()
                    .map(|(&id, &(first_page, len))| (id, first_page, len))
                    .collect(),
            ),
        }
    }

    /// Forces all pages of the disk backend to stable storage, returning the
    /// number of `fsync` system calls issued (zero for the memory backend).
    pub fn sync_all(&mut self) -> Result<u64> {
        match &mut self.inner {
            Inner::Memory { .. } => Ok(0),
            Inner::Disk { file, .. } => {
                let before = file.fsyncs();
                file.sync_all()?;
                Ok(file.fsyncs() - before)
            }
        }
    }

    /// Verifies the checksum of every on-disk page (no-op for the memory
    /// backend).  The error names the first bad page and its file.
    pub fn verify_pages(&mut self) -> Result<()> {
        match &mut self.inner {
            Inner::Memory { .. } => Ok(()),
            Inner::Disk { file, .. } => file.verify_all_pages(),
        }
    }

    /// Writes (or overwrites) row `id`.
    ///
    /// The disk backend is append-only between [`RowStore::rewrite_all`]
    /// calls: overwriting a row appends a fresh copy and repoints the index,
    /// mirroring how the DSMatrix rewrites rows on a window slide rather than
    /// patching bits in place.
    pub fn put_row(&mut self, id: usize, bytes: &[u8]) -> Result<()> {
        match &mut self.inner {
            Inner::Memory { rows } => {
                rows.insert(id, bytes.to_vec());
                Ok(())
            }
            Inner::Disk { file, index, .. } => {
                let first_page = file.num_pages();
                for chunk in bytes.chunks(self.page_size) {
                    file.append_page(chunk)?;
                }
                if bytes.is_empty() {
                    file.append_page(&[])?;
                }
                index.insert(id, (first_page, bytes.len()));
                Ok(())
            }
        }
    }

    /// Reads row `id` back.
    pub fn get_row(&mut self, id: usize) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.get_row_into(id, &mut out)?;
        Ok(out)
    }

    /// Reads row `id` into `out`, clearing and reusing its buffer (the
    /// allocation-free counterpart of [`RowStore::get_row`] for read paths
    /// that scan many rows).
    pub fn get_row_into(&mut self, id: usize, out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        match &mut self.inner {
            Inner::Memory { rows } => {
                let row = rows
                    .get(&id)
                    .ok_or_else(|| FsmError::corrupt(format!("row {id} not present")))?;
                out.extend_from_slice(row);
                Ok(())
            }
            Inner::Disk { file, index, .. } => {
                let &(first_page, len) = index
                    .get(&id)
                    .ok_or_else(|| FsmError::corrupt(format!("row {id} not present")))?;
                out.reserve(len);
                let mut remaining = len;
                let mut page = first_page;
                while remaining > 0 {
                    let buf = file.read_page(page)?;
                    let take = remaining.min(self.page_size);
                    out.extend_from_slice(&buf[..take]);
                    remaining -= take;
                    page += 1;
                }
                Ok(())
            }
        }
    }

    /// Returns `true` if row `id` exists.
    pub fn contains_row(&self, id: usize) -> bool {
        match &self.inner {
            Inner::Memory { rows } => rows.contains_key(&id),
            Inner::Disk { index, .. } => index.contains_key(&id),
        }
    }

    /// Iterates the stored row ids in ascending order (reads only the
    /// in-memory index, never the payload).
    pub fn row_ids(&self) -> impl Iterator<Item = usize> + '_ {
        let ids: Vec<usize> = match &self.inner {
            Inner::Memory { rows } => rows.keys().copied().collect(),
            Inner::Disk { index, .. } => index.keys().copied().collect(),
        };
        ids.into_iter()
    }

    /// Number of distinct rows stored.
    pub fn num_rows(&self) -> usize {
        match &self.inner {
            Inner::Memory { rows } => rows.len(),
            Inner::Disk { index, .. } => index.len(),
        }
    }

    /// Replaces the entire contents with `rows` (id, payload), compacting the
    /// disk file.  This is the window-slide path of the disk-backed
    /// structures.
    pub fn rewrite_all<'a, I>(&mut self, rows: I) -> Result<()>
    where
        I: IntoIterator<Item = (usize, &'a [u8])>,
    {
        match &mut self.inner {
            Inner::Memory { rows: map } => {
                map.clear();
                for (id, bytes) in rows {
                    map.insert(id, bytes.to_vec());
                }
                Ok(())
            }
            Inner::Disk { file, index, .. } => {
                file.clear()?;
                index.clear();
                for (id, bytes) in rows {
                    let first_page = file.num_pages();
                    for chunk in bytes.chunks(self.page_size) {
                        file.append_page(chunk)?;
                    }
                    if bytes.is_empty() {
                        file.append_page(&[])?;
                    }
                    index.insert(id, (first_page, bytes.len()));
                }
                Ok(())
            }
        }
    }

    /// Bytes held in main memory by this store.
    ///
    /// For the disk backend this is only the (small) page index — the payload
    /// lives on disk, which is exactly the distinction the paper's space
    /// experiment draws.
    pub fn resident_bytes(&self) -> usize {
        match &self.inner {
            Inner::Memory { rows } => rows
                .values()
                .map(|r| r.capacity() + std::mem::size_of::<usize>() * 2)
                .sum(),
            Inner::Disk { index, .. } => index.len() * std::mem::size_of::<(usize, usize, usize)>(),
        }
    }

    /// Bytes held on disk by this store (zero for the memory backend).
    pub fn on_disk_bytes(&self) -> u64 {
        match &self.inner {
            Inner::Memory { .. } => 0,
            Inner::Disk { file, .. } => file.on_disk_bytes(),
        }
    }
}

impl std::fmt::Debug for RowStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowStore")
            .field(
                "backend",
                &if self.is_memory_resident() {
                    "memory"
                } else {
                    "disk"
                },
            )
            .field("rows", &self.num_rows())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> Vec<StorageBackend> {
        vec![StorageBackend::Memory, StorageBackend::DiskTemp]
    }

    #[test]
    fn put_get_roundtrip_on_all_backends() {
        for backend in backends() {
            let mut store = RowStore::with_page_size(backend, 16).unwrap();
            store.put_row(0, b"hello world, this spans pages").unwrap();
            store.put_row(7, b"").unwrap();
            store.put_row(2, &[42u8; 100]).unwrap();

            assert_eq!(store.get_row(0).unwrap(), b"hello world, this spans pages");
            assert_eq!(store.get_row(7).unwrap(), b"");
            assert_eq!(store.get_row(2).unwrap(), vec![42u8; 100]);
            assert_eq!(store.num_rows(), 3);
            assert!(store.contains_row(7));
            assert!(!store.contains_row(5));
            assert!(store.get_row(5).is_err());
        }
    }

    #[test]
    fn overwriting_a_row_returns_latest_value() {
        for backend in backends() {
            let mut store = RowStore::with_page_size(backend, 8).unwrap();
            store.put_row(1, b"old").unwrap();
            store.put_row(1, b"newer value").unwrap();
            assert_eq!(store.get_row(1).unwrap(), b"newer value");
            assert_eq!(store.num_rows(), 1);
        }
    }

    #[test]
    fn rewrite_all_replaces_contents() {
        for backend in backends() {
            let mut store = RowStore::with_page_size(backend, 8).unwrap();
            store.put_row(0, b"aaaa").unwrap();
            store.put_row(1, b"bbbb").unwrap();
            let rows: Vec<(usize, &[u8])> = vec![(3, b"cc"), (4, b"dddddddddddd")];
            store.rewrite_all(rows).unwrap();
            assert!(!store.contains_row(0));
            assert_eq!(store.get_row(3).unwrap(), b"cc");
            assert_eq!(store.get_row(4).unwrap(), b"dddddddddddd");
            assert_eq!(store.num_rows(), 2);
        }
    }

    #[test]
    fn disk_backend_keeps_payload_out_of_memory() {
        let mut store = RowStore::with_page_size(StorageBackend::DiskTemp, 64).unwrap();
        store.put_row(0, &[1u8; 10_000]).unwrap();
        assert!(store.resident_bytes() < 1_000, "only the index is resident");
        assert!(store.on_disk_bytes() >= 10_000);
        assert!(!store.is_memory_resident());
    }

    #[test]
    fn memory_backend_reports_resident_payload() {
        let mut store = RowStore::open(StorageBackend::Memory).unwrap();
        store.put_row(0, &[1u8; 10_000]).unwrap();
        assert!(store.resident_bytes() >= 10_000);
        assert_eq!(store.on_disk_bytes(), 0);
        assert!(store.is_memory_resident());
    }

    #[test]
    fn open_existing_restores_rows_from_exported_index() {
        let dir = TempDir::new("rowstore-reopen").unwrap();
        let path = dir.file("rows.pages");
        let entries = {
            let mut store =
                RowStore::with_page_size(StorageBackend::DiskAt(path.clone()), 16).unwrap();
            store.put_row(0, b"hello world, this spans pages").unwrap();
            store.put_row(7, b"").unwrap();
            store.sync_all().unwrap();
            store.row_entries().unwrap()
        };
        let mut reopened = RowStore::open_existing(path, 16, entries).unwrap();
        assert_eq!(
            reopened.get_row(0).unwrap(),
            b"hello world, this spans pages"
        );
        assert_eq!(reopened.get_row(7).unwrap(), b"");
        reopened.verify_pages().unwrap();
    }

    #[test]
    fn open_existing_rejects_out_of_range_entries() {
        let dir = TempDir::new("rowstore-reopen").unwrap();
        let path = dir.file("rows.pages");
        {
            let mut store =
                RowStore::with_page_size(StorageBackend::DiskAt(path.clone()), 16).unwrap();
            store.put_row(0, b"short").unwrap();
            store.sync_all().unwrap();
        }
        // Claim a row that needs more pages than the file holds.
        let err = RowStore::open_existing(path, 16, vec![(0, 0, 64)]).unwrap_err();
        assert!(err.to_string().contains("row 0"), "unexpected: {err}");
    }

    #[test]
    fn memory_backend_has_no_durable_index() {
        let store = RowStore::open(StorageBackend::Memory).unwrap();
        assert!(store.row_entries().is_none());
    }

    #[test]
    fn explicit_disk_location() {
        let dir = TempDir::new("rowstore-at").unwrap();
        let path = dir.file("explicit/rows.pages");
        let mut store = RowStore::with_page_size(StorageBackend::DiskAt(path.clone()), 32).unwrap();
        store.put_row(0, b"persisted").unwrap();
        assert!(path.exists());
        assert_eq!(store.get_row(0).unwrap(), b"persisted");
    }
}
