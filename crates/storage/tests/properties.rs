//! Property-based tests for the storage substrate.

use fsm_storage::{BitVec, RowStore, StorageBackend};
use proptest::prelude::*;

proptest! {
    /// BitVec round-trips through bytes for arbitrary contents.
    #[test]
    fn bitvec_byte_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let v = BitVec::from_bools(bits.iter().copied());
        let back = BitVec::from_bytes(&v.to_bytes()).unwrap();
        prop_assert_eq!(&v, &back);
        prop_assert_eq!(v.len(), bits.len());
        for (i, bit) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i), *bit);
        }
    }

    /// Popcount equals the number of true inputs, and iter_ones agrees.
    #[test]
    fn bitvec_counting_is_exact(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let v = BitVec::from_bools(bits.iter().copied());
        let expected = bits.iter().filter(|b| **b).count() as u64;
        prop_assert_eq!(v.count_ones(), expected);
        prop_assert_eq!(v.iter_ones().count() as u64, expected);
        let ones: Vec<usize> = v.iter_ones().collect();
        for w in ones.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Intersection is commutative and `and_count` matches the materialised
    /// result.
    #[test]
    fn bitvec_and_is_commutative(
        a in proptest::collection::vec(any::<bool>(), 0..200),
        b in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let va = BitVec::from_bools(a);
        let vb = BitVec::from_bools(b);
        prop_assert_eq!(va.and(&vb).count_ones(), vb.and(&va).count_ones());
        prop_assert_eq!(va.and(&vb).count_ones(), va.and_count(&vb));
        // Intersection support can never exceed either operand's support.
        prop_assert!(va.and_count(&vb) <= va.count_ones());
        prop_assert!(va.and_count(&vb) <= vb.count_ones());
    }

    /// The fused `and_into` kernel agrees with the allocating `and` exactly —
    /// same bits, same length, and the returned count matches the popcount —
    /// even when the scratch buffer is reused across differently-sized
    /// operands.
    #[test]
    fn bitvec_and_into_matches_and(
        a in proptest::collection::vec(any::<bool>(), 0..300),
        b in proptest::collection::vec(any::<bool>(), 0..300),
        c in proptest::collection::vec(any::<bool>(), 0..100),
    ) {
        let va = BitVec::from_bools(a);
        let vb = BitVec::from_bools(b);
        let vc = BitVec::from_bools(c);
        let mut scratch = BitVec::new();
        // First use populates the buffer...
        let count = va.and_into(&vb, &mut scratch);
        prop_assert_eq!(&scratch, &va.and(&vb));
        prop_assert_eq!(count, va.and(&vb).count_ones());
        prop_assert_eq!(count, va.and_count(&vb));
        // ...and reuse with different operands must fully overwrite it.
        let count = vc.and_into(&va, &mut scratch);
        prop_assert_eq!(&scratch, &vc.and(&va));
        prop_assert_eq!(count, vc.and(&va).count_ones());
        prop_assert_eq!(scratch.len(), vc.len());
    }

    /// `and_count` equals materialising the intersection and counting it.
    #[test]
    fn bitvec_and_count_matches_materialised(
        a in proptest::collection::vec(any::<bool>(), 0..300),
        b in proptest::collection::vec(any::<bool>(), 0..300),
    ) {
        let va = BitVec::from_bools(a);
        let vb = BitVec::from_bools(b);
        prop_assert_eq!(va.and_count(&vb), va.and(&vb).count_ones());
    }

    /// `write_bytes` into a reused buffer equals a fresh `to_bytes`.
    #[test]
    fn bitvec_write_bytes_matches_to_bytes(
        a in proptest::collection::vec(any::<bool>(), 0..300),
        b in proptest::collection::vec(any::<bool>(), 0..300),
    ) {
        let mut buf = Vec::new();
        for bits in [a, b] {
            let v = BitVec::from_bools(bits);
            v.write_bytes(&mut buf);
            prop_assert_eq!(&buf, &v.to_bytes());
            prop_assert_eq!(BitVec::from_bytes(&buf).unwrap(), v);
        }
    }

    /// Dropping a prefix behaves like slicing the boolean sequence.
    #[test]
    fn bitvec_drop_prefix_is_slicing(
        bits in proptest::collection::vec(any::<bool>(), 0..300),
        n in 0usize..350,
    ) {
        let mut v = BitVec::from_bools(bits.iter().copied());
        v.drop_prefix(n);
        let expected: Vec<bool> = bits.iter().skip(n).copied().collect();
        prop_assert_eq!(v.len(), expected.len());
        for (i, bit) in expected.iter().enumerate() {
            prop_assert_eq!(v.get(i), *bit, "index {}", i);
        }
    }

    /// A RowStore returns exactly what was written, on both backends.
    #[test]
    fn rowstore_roundtrip(
        rows in proptest::collection::btree_map(0usize..32, proptest::collection::vec(any::<u8>(), 0..200), 0..16)
    ) {
        for backend in [StorageBackend::Memory, StorageBackend::DiskTemp] {
            let mut store = RowStore::with_page_size(backend, 32).unwrap();
            for (id, payload) in &rows {
                store.put_row(*id, payload).unwrap();
            }
            prop_assert_eq!(store.num_rows(), rows.len());
            for (id, payload) in &rows {
                prop_assert_eq!(&store.get_row(*id).unwrap(), payload);
            }
        }
    }
}
