//! Property-based tests for the storage substrate.

use fsm_storage::{BitVec, RowStore, SegmentedWindowStore, StorageBackend};
use proptest::prelude::*;

proptest! {
    /// A zero-copy chunked row streams exactly the words of the flat
    /// assembly, for arbitrary (misaligned) segment widths and sparse row
    /// membership — and the chunk-aware kernels agree with the flat ones.
    #[test]
    fn chunked_rows_match_flat_assembly(
        segments in proptest::collection::vec(
            (1usize..100, proptest::collection::btree_set(0usize..6, 0..4)),
            1..6,
        ),
        probe in proptest::collection::vec(any::<bool>(), 0..300),
    ) {
        let mut store = SegmentedWindowStore::open(StorageBackend::Memory).unwrap();
        for (seed, (cols, rows)) in segments.iter().enumerate() {
            let chunks: Vec<(usize, BitVec)> = rows
                .iter()
                .map(|&id| {
                    // Deterministic per-(segment, row) bit pattern.
                    let bits = (0..*cols).map(|c| (c + id + seed) % 3 != 0);
                    (id, BitVec::from_bools(bits))
                })
                .collect();
            store
                .push_segment(*cols, chunks.iter().map(|(id, c)| (*id, c)))
                .unwrap();
        }
        let probe = BitVec::from_bools(probe);
        for id in 0..7usize {
            let mut flat = BitVec::new();
            store.assemble_row(id, &mut flat).unwrap();
            let chunked = store.chunked_row(id).unwrap();
            prop_assert_eq!(chunked.len(), flat.len());
            prop_assert_eq!(chunked.count_ones(), flat.count_ones());
            let streamed: Vec<u64> = chunked.words().collect();
            prop_assert_eq!(streamed.as_slice(), flat.as_words(), "row {}", id);
            prop_assert_eq!(
                probe.and_count_chunked(&chunked),
                probe.and_count(&flat),
                "and_count_chunked diverged on row {}", id
            );
            let mut via_chunks = BitVec::new();
            let count = probe.and_into_chunked(&chunked, &mut via_chunks);
            prop_assert_eq!(&via_chunks, &probe.and(&flat), "and_into_chunked row {}", id);
            prop_assert_eq!(count, via_chunks.count_ones());
        }
    }

    /// `clear_range` equals clearing bit by bit, for arbitrary ranges.
    #[test]
    fn clear_range_is_a_bitwise_clear(
        bits in proptest::collection::vec(any::<bool>(), 0..300),
        start in 0usize..320,
        len in 0usize..320,
    ) {
        let mut fast = BitVec::from_bools(bits.iter().copied());
        let mut slow = fast.clone();
        fast.clear_range(start, start + len);
        for i in start..(start + len).min(bits.len()) {
            slow.set(i, false);
        }
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(fast.len(), bits.len());
    }
    /// BitVec round-trips through bytes for arbitrary contents.
    #[test]
    fn bitvec_byte_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let v = BitVec::from_bools(bits.iter().copied());
        let back = BitVec::from_bytes(&v.to_bytes()).unwrap();
        prop_assert_eq!(&v, &back);
        prop_assert_eq!(v.len(), bits.len());
        for (i, bit) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i), *bit);
        }
    }

    /// Popcount equals the number of true inputs, and iter_ones agrees.
    #[test]
    fn bitvec_counting_is_exact(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let v = BitVec::from_bools(bits.iter().copied());
        let expected = bits.iter().filter(|b| **b).count() as u64;
        prop_assert_eq!(v.count_ones(), expected);
        prop_assert_eq!(v.iter_ones().count() as u64, expected);
        let ones: Vec<usize> = v.iter_ones().collect();
        for w in ones.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Intersection is commutative and `and_count` matches the materialised
    /// result.
    #[test]
    fn bitvec_and_is_commutative(
        a in proptest::collection::vec(any::<bool>(), 0..200),
        b in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let va = BitVec::from_bools(a);
        let vb = BitVec::from_bools(b);
        prop_assert_eq!(va.and(&vb).count_ones(), vb.and(&va).count_ones());
        prop_assert_eq!(va.and(&vb).count_ones(), va.and_count(&vb));
        // Intersection support can never exceed either operand's support.
        prop_assert!(va.and_count(&vb) <= va.count_ones());
        prop_assert!(va.and_count(&vb) <= vb.count_ones());
    }

    /// The fused `and_into` kernel agrees with the allocating `and` exactly —
    /// same bits, same length, and the returned count matches the popcount —
    /// even when the scratch buffer is reused across differently-sized
    /// operands.
    #[test]
    fn bitvec_and_into_matches_and(
        a in proptest::collection::vec(any::<bool>(), 0..300),
        b in proptest::collection::vec(any::<bool>(), 0..300),
        c in proptest::collection::vec(any::<bool>(), 0..100),
    ) {
        let va = BitVec::from_bools(a);
        let vb = BitVec::from_bools(b);
        let vc = BitVec::from_bools(c);
        let mut scratch = BitVec::new();
        // First use populates the buffer...
        let count = va.and_into(&vb, &mut scratch);
        prop_assert_eq!(&scratch, &va.and(&vb));
        prop_assert_eq!(count, va.and(&vb).count_ones());
        prop_assert_eq!(count, va.and_count(&vb));
        // ...and reuse with different operands must fully overwrite it.
        let count = vc.and_into(&va, &mut scratch);
        prop_assert_eq!(&scratch, &vc.and(&va));
        prop_assert_eq!(count, vc.and(&va).count_ones());
        prop_assert_eq!(scratch.len(), vc.len());
    }

    /// `and_count` equals materialising the intersection and counting it.
    #[test]
    fn bitvec_and_count_matches_materialised(
        a in proptest::collection::vec(any::<bool>(), 0..300),
        b in proptest::collection::vec(any::<bool>(), 0..300),
    ) {
        let va = BitVec::from_bools(a);
        let vb = BitVec::from_bools(b);
        prop_assert_eq!(va.and_count(&vb), va.and(&vb).count_ones());
    }

    /// `write_bytes` into a reused buffer equals a fresh `to_bytes`.
    #[test]
    fn bitvec_write_bytes_matches_to_bytes(
        a in proptest::collection::vec(any::<bool>(), 0..300),
        b in proptest::collection::vec(any::<bool>(), 0..300),
    ) {
        let mut buf = Vec::new();
        for bits in [a, b] {
            let v = BitVec::from_bools(bits);
            v.write_bytes(&mut buf);
            prop_assert_eq!(&buf, &v.to_bytes());
            prop_assert_eq!(BitVec::from_bytes(&buf).unwrap(), v);
        }
    }

    /// Dropping a prefix behaves like slicing the boolean sequence.
    #[test]
    fn bitvec_drop_prefix_is_slicing(
        bits in proptest::collection::vec(any::<bool>(), 0..300),
        n in 0usize..350,
    ) {
        let mut v = BitVec::from_bools(bits.iter().copied());
        v.drop_prefix(n);
        let expected: Vec<bool> = bits.iter().skip(n).copied().collect();
        prop_assert_eq!(v.len(), expected.len());
        for (i, bit) in expected.iter().enumerate() {
            prop_assert_eq!(v.get(i), *bit, "index {}", i);
        }
    }

    /// A RowStore returns exactly what was written, on both backends.
    #[test]
    fn rowstore_roundtrip(
        rows in proptest::collection::btree_map(0usize..32, proptest::collection::vec(any::<u8>(), 0..200), 0..16)
    ) {
        for backend in [StorageBackend::Memory, StorageBackend::DiskTemp] {
            let mut store = RowStore::with_page_size(backend, 32).unwrap();
            for (id, payload) in &rows {
                store.put_row(*id, payload).unwrap();
            }
            prop_assert_eq!(store.num_rows(), rows.len());
            for (id, payload) in &rows {
                prop_assert_eq!(&store.get_row(*id).unwrap(), payload);
            }
        }
    }
}
