//! Property-based tests for the storage substrate.

use fsm_storage::{BitVec, RowStore, StorageBackend};
use proptest::prelude::*;

proptest! {
    /// BitVec round-trips through bytes for arbitrary contents.
    #[test]
    fn bitvec_byte_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let v = BitVec::from_bools(bits.iter().copied());
        let back = BitVec::from_bytes(&v.to_bytes()).unwrap();
        prop_assert_eq!(&v, &back);
        prop_assert_eq!(v.len(), bits.len());
        for (i, bit) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i), *bit);
        }
    }

    /// Popcount equals the number of true inputs, and iter_ones agrees.
    #[test]
    fn bitvec_counting_is_exact(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let v = BitVec::from_bools(bits.iter().copied());
        let expected = bits.iter().filter(|b| **b).count() as u64;
        prop_assert_eq!(v.count_ones(), expected);
        prop_assert_eq!(v.iter_ones().count() as u64, expected);
        let ones: Vec<usize> = v.iter_ones().collect();
        for w in ones.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Intersection is commutative and `and_count` matches the materialised
    /// result.
    #[test]
    fn bitvec_and_is_commutative(
        a in proptest::collection::vec(any::<bool>(), 0..200),
        b in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let va = BitVec::from_bools(a);
        let vb = BitVec::from_bools(b);
        prop_assert_eq!(va.and(&vb).count_ones(), vb.and(&va).count_ones());
        prop_assert_eq!(va.and(&vb).count_ones(), va.and_count(&vb));
        // Intersection support can never exceed either operand's support.
        prop_assert!(va.and_count(&vb) <= va.count_ones());
        prop_assert!(va.and_count(&vb) <= vb.count_ones());
    }

    /// Dropping a prefix behaves like slicing the boolean sequence.
    #[test]
    fn bitvec_drop_prefix_is_slicing(
        bits in proptest::collection::vec(any::<bool>(), 0..300),
        n in 0usize..350,
    ) {
        let mut v = BitVec::from_bools(bits.iter().copied());
        v.drop_prefix(n);
        let expected: Vec<bool> = bits.iter().skip(n).copied().collect();
        prop_assert_eq!(v.len(), expected.len());
        for (i, bit) in expected.iter().enumerate() {
            prop_assert_eq!(v.get(i), *bit, "index {}", i);
        }
    }

    /// A RowStore returns exactly what was written, on both backends.
    #[test]
    fn rowstore_roundtrip(
        rows in proptest::collection::btree_map(0usize..32, proptest::collection::vec(any::<u8>(), 0..200), 0..16)
    ) {
        for backend in [StorageBackend::Memory, StorageBackend::DiskTemp] {
            let mut store = RowStore::with_page_size(backend, 32).unwrap();
            for (id, payload) in &rows {
                store.put_row(*id, payload).unwrap();
            }
            prop_assert_eq!(store.num_rows(), rows.len());
            for (id, payload) in &rows {
                prop_assert_eq!(&store.get_row(*id).unwrap(), payload);
            }
        }
    }
}
