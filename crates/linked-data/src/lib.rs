//! A minimal linked-data (RDF) substrate.
//!
//! The paper frames its graph stream as *linked data*: resources identified
//! by URIs, linked by RDF triples, published and updated continuously.  No
//! full-featured Rust RDF stack is assumed here; instead this crate provides
//! the smallest pieces needed to turn a stream of triples into the edge
//! transactions the miners consume:
//!
//! * [`Iri`], [`Literal`] and [`Term`] — RDF terms;
//! * [`Triple`] — a subject/predicate/object statement;
//! * [`ntriples`] — a line-oriented N-Triples parser and serialiser;
//! * [`TripleStore`] — an indexed in-memory triple collection with simple
//!   pattern matching;
//! * [`ResourceDictionary`] and [`TripleStreamAdapter`] — the bridge that maps
//!   resources to vertices, triples to edges, and groups of triples to
//!   [`fsm_types::GraphSnapshot`]s ready for batching.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod ntriples;
pub mod store;
pub mod term;
pub mod triple;

pub use adapter::{GroupingStrategy, ResourceDictionary, TripleStreamAdapter};
pub use store::TripleStore;
pub use term::{Iri, Literal, Term};
pub use triple::Triple;
