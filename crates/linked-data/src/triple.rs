//! RDF triples.

use std::fmt;

use crate::term::{Iri, Term};

/// A subject–predicate–object statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// The subject resource (IRI or blank node).
    pub subject: Term,
    /// The predicate IRI.
    pub predicate: Iri,
    /// The object term.
    pub object: Term,
}

impl Triple {
    /// Creates a triple, rejecting literal subjects (which RDF forbids).
    pub fn new(subject: Term, predicate: Iri, object: Term) -> Option<Self> {
        if !subject.is_resource() {
            return None;
        }
        Some(Self {
            subject,
            predicate,
            object,
        })
    }

    /// Convenience constructor from plain IRI strings.
    pub fn from_iris(subject: &str, predicate: &str, object: &str) -> Option<Self> {
        Some(Self {
            subject: Term::iri(subject)?,
            predicate: Iri::new(predicate)?,
            object: Term::iri(object)?,
        })
    }

    /// Returns `true` if the object is a resource (i.e. the triple links two
    /// resources and therefore contributes an edge to the linkage graph).
    pub fn links_resources(&self) -> bool {
        self.object.is_resource()
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    #[test]
    fn literal_subjects_are_rejected() {
        let literal = Term::Literal(Literal::simple("nope"));
        assert!(Triple::new(literal, Iri::new("http://p").unwrap(), Term::literal("x")).is_none());
    }

    #[test]
    fn from_iris_and_display() {
        let t = Triple::from_iris("http://a", "http://p", "http://b").unwrap();
        assert_eq!(t.to_string(), "<http://a> <http://p> <http://b> .");
        assert!(t.links_resources());
        assert!(Triple::from_iris("bad iri", "http://p", "http://b").is_none());
    }

    #[test]
    fn literal_objects_do_not_link_resources() {
        let t = Triple::new(
            Term::iri("http://a").unwrap(),
            Iri::new("http://name").unwrap(),
            Term::literal("Alice"),
        )
        .unwrap();
        assert!(!t.links_resources());
    }
}
