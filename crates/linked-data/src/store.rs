//! A small indexed triple store with pattern matching.

use std::collections::{BTreeMap, BTreeSet};

use crate::term::{Iri, Term};
use crate::triple::Triple;

/// An in-memory collection of triples indexed by subject and by predicate.
///
/// The store backs the examples and the triple-stream adapter; it is not a
/// persistent database, just enough structure to answer the "which resources
/// does X link to?" questions the stream adapter asks.
#[derive(Debug, Clone, Default)]
pub struct TripleStore {
    triples: Vec<Triple>,
    by_subject: BTreeMap<Term, Vec<usize>>,
    by_predicate: BTreeMap<Iri, Vec<usize>>,
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a triple; duplicates are kept (RDF multisets are collapsed by
    /// callers that care).
    pub fn insert(&mut self, triple: Triple) {
        let idx = self.triples.len();
        self.by_subject
            .entry(triple.subject.clone())
            .or_default()
            .push(idx);
        self.by_predicate
            .entry(triple.predicate.clone())
            .or_default()
            .push(idx);
        self.triples.push(triple);
    }

    /// Bulk insertion.
    pub fn extend<I: IntoIterator<Item = Triple>>(&mut self, triples: I) {
        for t in triples {
            self.insert(t);
        }
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Returns `true` if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// All triples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter()
    }

    /// Triples whose subject is `subject`.
    pub fn with_subject(&self, subject: &Term) -> Vec<&Triple> {
        self.by_subject
            .get(subject)
            .map(|ids| ids.iter().map(|&i| &self.triples[i]).collect())
            .unwrap_or_default()
    }

    /// Triples whose predicate is `predicate`.
    pub fn with_predicate(&self, predicate: &Iri) -> Vec<&Triple> {
        self.by_predicate
            .get(predicate)
            .map(|ids| ids.iter().map(|&i| &self.triples[i]).collect())
            .unwrap_or_default()
    }

    /// The distinct resources (IRIs and blank nodes) appearing as subject or
    /// object of any triple.
    pub fn resources(&self) -> BTreeSet<Term> {
        let mut out = BTreeSet::new();
        for t in &self.triples {
            out.insert(t.subject.clone());
            if t.object.is_resource() {
                out.insert(t.object.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::from_iris(s, p, o).unwrap()
    }

    #[test]
    fn indexes_answer_simple_queries() {
        let mut store = TripleStore::new();
        store.extend([
            t("http://a", "http://knows", "http://b"),
            t("http://a", "http://knows", "http://c"),
            t("http://b", "http://cites", "http://c"),
        ]);
        assert_eq!(store.len(), 3);
        assert!(!store.is_empty());
        assert_eq!(store.with_subject(&Term::iri("http://a").unwrap()).len(), 2);
        assert_eq!(
            store
                .with_predicate(&Iri::new("http://cites").unwrap())
                .len(),
            1
        );
        assert_eq!(store.resources().len(), 3);
        assert_eq!(store.iter().count(), 3);
    }

    #[test]
    fn literal_objects_are_not_resources() {
        let mut store = TripleStore::new();
        store.insert(
            Triple::new(
                Term::iri("http://a").unwrap(),
                Iri::new("http://name").unwrap(),
                Term::literal("Alice"),
            )
            .unwrap(),
        );
        assert_eq!(store.resources().len(), 1);
    }

    #[test]
    fn missing_keys_return_empty() {
        let store = TripleStore::new();
        assert!(store
            .with_subject(&Term::iri("http://x").unwrap())
            .is_empty());
        assert!(store
            .with_predicate(&Iri::new("http://y").unwrap())
            .is_empty());
    }
}
