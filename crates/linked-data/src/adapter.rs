//! Bridging triples to the graph-stream model.
//!
//! A stream of RDF triples describes insertions and updates to the linkage
//! among resources.  The adapter turns it into the stream of graph
//! transactions the paper mines: resources become vertices, each
//! resource-to-resource triple becomes an edge between the corresponding
//! vertices, and a *group* of triples (one update event, one time tick, or a
//! fixed-size chunk) becomes one [`GraphSnapshot`] — one transaction.

use std::collections::BTreeMap;

use fsm_types::{GraphSnapshot, VertexId};

use crate::term::Term;
use crate::triple::Triple;

/// How incoming triples are grouped into graph snapshots (transactions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupingStrategy {
    /// Every `n` consecutive resource-linking triples form one snapshot
    /// (models a fixed-size update event).
    FixedSize(usize),
    /// All triples sharing the same subject form one snapshot (models an
    /// entity-centric update, e.g. one document and its outgoing links).
    BySubject,
}

/// Maps RDF resources to dense vertex identifiers.
#[derive(Debug, Clone, Default)]
pub struct ResourceDictionary {
    by_term: BTreeMap<Term, VertexId>,
    terms: Vec<Term>,
}

impl ResourceDictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the vertex for `term`, interning it if new.
    pub fn intern(&mut self, term: &Term) -> VertexId {
        if let Some(&v) = self.by_term.get(term) {
            return v;
        }
        let v = VertexId::new(self.terms.len() as u32 + 1);
        self.by_term.insert(term.clone(), v);
        self.terms.push(term.clone());
        v
    }

    /// Looks a term up without interning.
    pub fn lookup(&self, term: &Term) -> Option<VertexId> {
        self.by_term.get(term).copied()
    }

    /// The term behind a vertex, if known.
    pub fn term_of(&self, vertex: VertexId) -> Option<&Term> {
        let idx = vertex.0.checked_sub(1)? as usize;
        self.terms.get(idx)
    }

    /// Number of distinct resources interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if no resource has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// Converts a triple stream into graph snapshots.
#[derive(Debug, Clone)]
pub struct TripleStreamAdapter {
    strategy: GroupingStrategy,
    dictionary: ResourceDictionary,
    skipped_literals: usize,
}

impl TripleStreamAdapter {
    /// Creates an adapter with the given grouping strategy.
    pub fn new(strategy: GroupingStrategy) -> Self {
        Self {
            strategy,
            dictionary: ResourceDictionary::new(),
            skipped_literals: 0,
        }
    }

    /// The resource dictionary built so far.
    pub fn dictionary(&self) -> &ResourceDictionary {
        &self.dictionary
    }

    /// Number of triples skipped because their object was a literal (they
    /// carry attribute values, not linkage).
    pub fn skipped_literals(&self) -> usize {
        self.skipped_literals
    }

    /// Converts a slice of triples into graph snapshots according to the
    /// grouping strategy.  Literal-object triples are skipped (and counted).
    pub fn convert(&mut self, triples: &[Triple]) -> Vec<GraphSnapshot> {
        match self.strategy {
            GroupingStrategy::FixedSize(size) => self.convert_fixed(triples, size.max(1)),
            GroupingStrategy::BySubject => self.convert_by_subject(triples),
        }
    }

    fn convert_fixed(&mut self, triples: &[Triple], size: usize) -> Vec<GraphSnapshot> {
        let mut snapshots = Vec::new();
        let mut current = GraphSnapshot::new();
        let mut in_current = 0;
        for triple in triples {
            if !self.add_edge(&mut current, triple) {
                continue;
            }
            in_current += 1;
            if in_current == size {
                snapshots.push(std::mem::take(&mut current));
                in_current = 0;
            }
        }
        if in_current > 0 {
            snapshots.push(current);
        }
        snapshots
    }

    fn convert_by_subject(&mut self, triples: &[Triple]) -> Vec<GraphSnapshot> {
        // Preserve first-appearance order of subjects so the stream stays
        // deterministic.
        let mut order: Vec<&Term> = Vec::new();
        let mut groups: BTreeMap<&Term, Vec<&Triple>> = BTreeMap::new();
        for triple in triples {
            if !groups.contains_key(&triple.subject) {
                order.push(&triple.subject);
            }
            groups.entry(&triple.subject).or_default().push(triple);
        }
        let mut snapshots = Vec::new();
        for subject in order {
            let mut snapshot = GraphSnapshot::new();
            for triple in &groups[subject] {
                self.add_edge(&mut snapshot, triple);
            }
            if !snapshot.is_empty() {
                snapshots.push(snapshot);
            }
        }
        snapshots
    }

    fn add_edge(&mut self, snapshot: &mut GraphSnapshot, triple: &Triple) -> bool {
        if !triple.links_resources() {
            self.skipped_literals += 1;
            return false;
        }
        let u = self.dictionary.intern(&triple.subject);
        let v = self.dictionary.intern(&triple.object);
        snapshot.add_edge(u, v);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntriples;

    fn sample_triples() -> Vec<Triple> {
        ntriples::parse(
            "\
<http://ex.org/a> <http://ex.org/knows> <http://ex.org/b> .
<http://ex.org/a> <http://ex.org/knows> <http://ex.org/c> .
<http://ex.org/a> <http://ex.org/name> \"Alice\" .
<http://ex.org/b> <http://ex.org/cites> <http://ex.org/c> .
<http://ex.org/c> <http://ex.org/cites> <http://ex.org/a> .
",
        )
        .unwrap()
    }

    #[test]
    fn fixed_size_grouping_builds_snapshots_and_skips_literals() {
        let mut adapter = TripleStreamAdapter::new(GroupingStrategy::FixedSize(2));
        let snapshots = adapter.convert(&sample_triples());
        // Four linking triples grouped in twos.
        assert_eq!(snapshots.len(), 2);
        assert_eq!(snapshots[0].num_edges(), 2);
        assert_eq!(snapshots[1].num_edges(), 2);
        assert_eq!(adapter.skipped_literals(), 1);
        // a, b, c interned.
        assert_eq!(adapter.dictionary().len(), 3);
    }

    #[test]
    fn by_subject_grouping_builds_entity_snapshots() {
        let mut adapter = TripleStreamAdapter::new(GroupingStrategy::BySubject);
        let snapshots = adapter.convert(&sample_triples());
        // Subjects with at least one linking triple: a, b, c.
        assert_eq!(snapshots.len(), 3);
        assert_eq!(snapshots[0].num_edges(), 2, "a links to b and c");
        assert_eq!(snapshots[1].num_edges(), 1);
        assert_eq!(snapshots[2].num_edges(), 1);
    }

    #[test]
    fn dictionary_is_stable_across_conversions() {
        let mut adapter = TripleStreamAdapter::new(GroupingStrategy::FixedSize(10));
        adapter.convert(&sample_triples());
        let a = Term::iri("http://ex.org/a").unwrap();
        let first = adapter.dictionary().lookup(&a).unwrap();
        adapter.convert(&sample_triples());
        assert_eq!(adapter.dictionary().lookup(&a), Some(first));
        assert_eq!(adapter.dictionary().term_of(first), Some(&a));
        assert!(adapter.dictionary().term_of(VertexId::new(99)).is_none());
        assert!(!adapter.dictionary().is_empty());
    }

    #[test]
    fn zero_fixed_size_is_clamped() {
        let mut adapter = TripleStreamAdapter::new(GroupingStrategy::FixedSize(0));
        let snapshots = adapter.convert(&sample_triples());
        assert_eq!(snapshots.len(), 4, "clamped to one edge per snapshot");
    }
}
