//! RDF terms: IRIs, blank nodes and literals.

use std::fmt;

/// An internationalised resource identifier.
///
/// Validation is intentionally light (non-empty, no whitespace, no angle
/// brackets): the substrate only needs identifiers to be unambiguous, not to
/// enforce the full RFC grammar.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(String);

impl Iri {
    /// Creates an IRI, returning `None` if the string is empty or contains
    /// characters that would break N-Triples serialisation.
    pub fn new(value: impl Into<String>) -> Option<Self> {
        let value = value.into();
        if value.is_empty()
            || value
                .chars()
                .any(|c| c.is_whitespace() || c == '<' || c == '>')
        {
            None
        } else {
            Some(Self(value))
        }
    }

    /// The IRI string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

/// An RDF literal with an optional language tag or datatype IRI.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The lexical form.
    pub value: String,
    /// Optional language tag (`"chat"@en`).
    pub language: Option<String>,
    /// Optional datatype IRI (`"42"^^<…integer>`).
    pub datatype: Option<Iri>,
}

impl Literal {
    /// A plain string literal.
    pub fn simple(value: impl Into<String>) -> Self {
        Self {
            value: value.into(),
            language: None,
            datatype: None,
        }
    }

    /// A language-tagged literal.
    pub fn with_language(value: impl Into<String>, language: impl Into<String>) -> Self {
        Self {
            value: value.into(),
            language: Some(language.into()),
            datatype: None,
        }
    }

    /// A typed literal.
    pub fn typed(value: impl Into<String>, datatype: Iri) -> Self {
        Self {
            value: value.into(),
            language: None,
            datatype: Some(datatype),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "\"{}\"",
            self.value.replace('\\', "\\\\").replace('"', "\\\"")
        )?;
        if let Some(lang) = &self.language {
            write!(f, "@{lang}")?;
        } else if let Some(datatype) = &self.datatype {
            write!(f, "^^{datatype}")?;
        }
        Ok(())
    }
}

/// Any RDF term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A resource identified by an IRI.
    Iri(Iri),
    /// A blank node with a local label.
    Blank(String),
    /// A literal value.
    Literal(Literal),
}

impl Term {
    /// Convenience constructor for IRI terms.
    pub fn iri(value: impl Into<String>) -> Option<Self> {
        Iri::new(value).map(Term::Iri)
    }

    /// Convenience constructor for blank nodes.
    pub fn blank(label: impl Into<String>) -> Self {
        Term::Blank(label.into())
    }

    /// Convenience constructor for simple literals.
    pub fn literal(value: impl Into<String>) -> Self {
        Term::Literal(Literal::simple(value))
    }

    /// Returns `true` if the term can appear in subject position (IRI or
    /// blank node).
    pub fn is_resource(&self) -> bool {
        matches!(self, Term::Iri(_) | Term::Blank(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "{iri}"),
            Term::Blank(label) => write!(f, "_:{label}"),
            Term::Literal(literal) => write!(f, "{literal}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_validation() {
        assert!(Iri::new("http://example.org/a").is_some());
        assert!(Iri::new("").is_none());
        assert!(Iri::new("has space").is_none());
        assert!(Iri::new("<bad>").is_none());
        assert_eq!(
            Iri::new("http://x.org/a").unwrap().to_string(),
            "<http://x.org/a>"
        );
    }

    #[test]
    fn literal_rendering() {
        assert_eq!(Literal::simple("hi").to_string(), "\"hi\"");
        assert_eq!(
            Literal::with_language("chat", "fr").to_string(),
            "\"chat\"@fr"
        );
        let typed = Literal::typed(
            "42",
            Iri::new("http://www.w3.org/2001/XMLSchema#integer").unwrap(),
        );
        assert_eq!(
            typed.to_string(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
        assert_eq!(
            Literal::simple("say \"hi\"").to_string(),
            "\"say \\\"hi\\\"\""
        );
    }

    #[test]
    fn term_rendering_and_classification() {
        assert_eq!(Term::blank("b0").to_string(), "_:b0");
        assert_eq!(Term::literal("x").to_string(), "\"x\"");
        assert!(Term::iri("http://x.org").unwrap().is_resource());
        assert!(Term::blank("b").is_resource());
        assert!(!Term::literal("x").is_resource());
        assert!(Term::iri("bad iri").is_none());
    }
}
