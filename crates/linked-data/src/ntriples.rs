//! A line-oriented N-Triples parser and serialiser.
//!
//! The subset implemented covers what linked-data dumps in the wild use for
//! linkage information: IRI and blank-node subjects, IRI predicates, IRI /
//! blank-node / literal objects (with optional language tag or datatype),
//! comments and blank lines.

use fsm_types::{FsmError, Result};

use crate::term::{Iri, Literal, Term};
use crate::triple::Triple;

/// Parses an N-Triples document into triples.
pub fn parse(document: &str) -> Result<Vec<Triple>> {
    let mut triples = Vec::new();
    for (number, line) in document.lines().enumerate() {
        let line_no = number + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        triples.push(parse_line(trimmed, line_no)?);
    }
    Ok(triples)
}

/// Serialises triples as an N-Triples document (one statement per line).
pub fn serialize(triples: &[Triple]) -> String {
    let mut out = String::new();
    for triple in triples {
        out.push_str(&triple.to_string());
        out.push('\n');
    }
    out
}

fn parse_line(line: &str, line_no: usize) -> Result<Triple> {
    let mut cursor = Cursor {
        rest: line,
        line_no,
    };
    let subject = cursor.parse_term()?;
    cursor.skip_ws();
    let predicate = match cursor.parse_term()? {
        Term::Iri(iri) => iri,
        other => {
            return Err(FsmError::parse_at(
                line_no,
                format!("predicate must be an IRI, got {other}"),
            ))
        }
    };
    cursor.skip_ws();
    let object = cursor.parse_term()?;
    cursor.skip_ws();
    if !cursor.rest.starts_with('.') {
        return Err(FsmError::parse_at(line_no, "statement must end with '.'"));
    }
    Triple::new(subject, predicate, object)
        .ok_or_else(|| FsmError::parse_at(line_no, "literal subjects are not allowed"))
}

struct Cursor<'a> {
    rest: &'a str,
    line_no: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn parse_term(&mut self) -> Result<Term> {
        self.skip_ws();
        if let Some(rest) = self.rest.strip_prefix('<') {
            let end = rest
                .find('>')
                .ok_or_else(|| FsmError::parse_at(self.line_no, "unterminated IRI"))?;
            let iri = Iri::new(&rest[..end])
                .ok_or_else(|| FsmError::parse_at(self.line_no, "invalid IRI"))?;
            self.rest = &rest[end + 1..];
            Ok(Term::Iri(iri))
        } else if let Some(rest) = self.rest.strip_prefix("_:") {
            let end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
            if end == 0 {
                return Err(FsmError::parse_at(self.line_no, "empty blank node label"));
            }
            let label = &rest[..end];
            self.rest = &rest[end..];
            Ok(Term::Blank(label.to_string()))
        } else if let Some(rest) = self.rest.strip_prefix('"') {
            let (value, after) = read_quoted(rest, self.line_no)?;
            let mut literal = Literal::simple(value);
            let mut remaining = after;
            if let Some(lang_rest) = remaining.strip_prefix('@') {
                let end = lang_rest
                    .find(|c: char| c.is_whitespace())
                    .unwrap_or(lang_rest.len());
                literal.language = Some(lang_rest[..end].to_string());
                remaining = &lang_rest[end..];
            } else if let Some(type_rest) = remaining.strip_prefix("^^<") {
                let end = type_rest
                    .find('>')
                    .ok_or_else(|| FsmError::parse_at(self.line_no, "unterminated datatype IRI"))?;
                literal.datatype = Iri::new(&type_rest[..end]);
                remaining = &type_rest[end + 1..];
            }
            self.rest = remaining;
            Ok(Term::Literal(literal))
        } else {
            Err(FsmError::parse_at(
                self.line_no,
                format!("unexpected token near '{}'", truncated(self.rest)),
            ))
        }
    }
}

/// Reads a quoted string body (after the opening quote), handling `\"` and
/// `\\` escapes; returns the unescaped value and the remainder after the
/// closing quote.
fn read_quoted(rest: &str, line_no: usize) -> Result<(String, &str)> {
    let mut value = String::new();
    let mut chars = rest.char_indices();
    while let Some((idx, c)) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some((_, escaped)) => value.push(match escaped {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                }),
                None => return Err(FsmError::parse_at(line_no, "dangling escape")),
            },
            '"' => return Ok((value, &rest[idx + 1..])),
            other => value.push(other),
        }
    }
    Err(FsmError::parse_at(line_no, "unterminated literal"))
}

fn truncated(s: &str) -> &str {
    &s[..s.len().min(20)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_resource_links() {
        let doc = "\
# a tiny linked-data document
<http://ex.org/a> <http://ex.org/knows> <http://ex.org/b> .

<http://ex.org/b> <http://ex.org/knows> _:anon .
_:anon <http://ex.org/name> \"Anna\"@de .
<http://ex.org/a> <http://ex.org/age> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .
";
        let triples = parse(doc).unwrap();
        assert_eq!(triples.len(), 4);
        assert!(triples[0].links_resources());
        assert!(triples[1].links_resources());
        assert!(!triples[2].links_resources());
        assert!(!triples[3].links_resources());
        assert_eq!(
            triples[0].to_string(),
            "<http://ex.org/a> <http://ex.org/knows> <http://ex.org/b> ."
        );
    }

    #[test]
    fn roundtrips_through_serialisation() {
        let doc = "<http://a> <http://p> <http://b> .\n<http://b> <http://p> \"x\" .\n";
        let triples = parse(doc).unwrap();
        let serialised = serialize(&triples);
        let reparsed = parse(&serialised).unwrap();
        assert_eq!(triples, reparsed);
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let err = parse("<http://a> <http://p> <http://b>").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = parse("<http://a> <http://p> .\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = parse("<http://a> \"p\" <http://b> .").unwrap_err();
        assert!(err.to_string().contains("predicate"));
        let err = parse("<http://a> <http://p> \"unterminated .").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
        assert!(parse("junk line .").is_err());
    }

    #[test]
    fn escaped_quotes_inside_literals() {
        let doc = r#"<http://a> <http://says> "he said \"hi\"\n" ."#;
        let triples = parse(doc).unwrap();
        match &triples[0].object {
            Term::Literal(l) => assert_eq!(l.value, "he said \"hi\"\n"),
            other => panic!("unexpected object {other}"),
        }
    }
}
