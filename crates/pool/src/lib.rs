//! A shared, fixed-size worker pool for the mining fan-out.
//!
//! The single-tenant engine fans each mine's top-level subtree tasks over
//! `std::thread::scope` workers spawned *per mine call*.  A multi-tenant
//! process cannot afford that shape: thousands of sessions mining
//! concurrently would each spawn their own worker set, oversubscribing the
//! machine by the tenant count.  [`WorkerPool`] replaces it with **one fixed
//! set of threads per process** that multiplexes subtree tasks from however
//! many concurrent mines are in flight.
//!
//! The execution model is *caller-participating*: the thread that calls
//! [`WorkerPool::run_indexed_stateful`] claims and executes tasks from its
//! own batch exactly like a pool worker would, while the pool's threads join
//! in for whatever tasks are left.  Two properties follow:
//!
//! * **No mine ever waits for pool capacity.**  A saturated (or zero-sized)
//!   pool degrades a mine to sequential execution on its own thread; it never
//!   deadlocks or queues behind other tenants' mines.
//! * **Determinism is untouched.**  Tasks are claimed from an atomic counter
//!   (dynamic load balancing, same as the scoped path) but results are
//!   returned **in task-index order**, so the canonical-order merge — and
//!   therefore byte-identical output for any pool size — is preserved.  The
//!   `miner_agreement` / `epoch_agreement` / `tenant_isolation` property
//!   suites in `fsm-core` gate exactly this.
//!
//! # Why this crate contains `unsafe`
//!
//! Subtree tasks borrow the per-mine window view (frequent-row tables,
//! pinned chunk borrows), so the closures handed to the pool are **not**
//! `'static` — the reason the original design used `std::thread::scope`.
//! Persistent pool threads cannot accept borrowed closures safely, so the
//! batch context is passed as a type-erased raw pointer and re-borrowed
//! inside a monomorphised runner function.  Soundness rests on a simple
//! join protocol, documented at `Gate`: the caller does not return from
//! `run_indexed_stateful` (i.e. the borrowed context stays alive) until
//! every helper that could still dereference the pointer has provably
//! exited its dereferencing region — including when the caller itself
//! unwinds, via `GateGuard`.  The rest of the workspace keeps its
//! `#![forbid(unsafe_code)]`; the unsafety is confined to this module and
//! audited by the stress tests below.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A job queued on the pool: a boxed helper that participates in one batch.
type Job = Box<dyn FnOnce() + Send>;

/// Lock a mutex, shrugging off poisoning (a panicked task in one tenant's
/// batch must not wedge every other tenant's mine; the panic itself is still
/// surfaced to whoever owns the batch).
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Shared state between the pool handle and its worker threads.
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    /// Cumulative helper jobs executed by pool workers (observability only).
    jobs_run: AtomicU64,
}

/// A fixed set of worker threads multiplexing mining subtree tasks from many
/// concurrent callers.  See the module docs for the execution model.
///
/// The pool is inert until someone calls
/// [`WorkerPool::run_indexed_stateful`]; idle workers block on a condvar and
/// cost nothing.  Dropping the pool joins every worker (queued helpers are
/// drained first — they become no-ops once their batch has completed).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .field("jobs_run", &self.jobs_run())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool of `threads` workers (`0` = one per available core).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            jobs_run: AtomicU64::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fsm-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker thread")
            })
            .collect();
        Self { shared, workers }
    }

    /// Creates a pool with **no** worker threads: every batch runs inline on
    /// its caller.  The degenerate corner of the multiplexing model, pinned
    /// by the isolation property tests.
    pub fn inline_only() -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            jobs_run: AtomicU64::new(0),
        });
        Self {
            shared,
            workers: Vec::new(),
        }
    }

    /// Number of pool worker threads (callers add themselves on top).
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Cumulative helper jobs executed by pool workers since creation.
    pub fn jobs_run(&self) -> u64 {
        self.shared.jobs_run.load(Ordering::Relaxed)
    }

    /// Runs `task(0..tasks)` and returns the results **in index order**,
    /// exactly like the scoped fan-out it replaces — but instead of spawning
    /// threads, the calling thread executes tasks itself while up to
    /// `min(pool size, tasks - 1)` pool workers help.  Every participant
    /// owns one `init()`-created state for the whole batch (the miners share
    /// one scratch arena per worker this way).
    ///
    /// Concurrent calls from different threads interleave their tasks over
    /// the same fixed worker set; each caller always makes progress on its
    /// own batch regardless of what the pool is doing for anyone else.
    ///
    /// If any task panics, the batch completes (every index is still
    /// executed — panic payloads are captured per task) and the panic of the
    /// lowest index is resumed on the caller, mirroring what
    /// `std::thread::scope` would have done.
    pub fn run_indexed_stateful<T, S, I, F>(&self, tasks: usize, init: I, task: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        if tasks == 0 {
            return Vec::new();
        }
        let ctx: BatchCtx<'_, T, I, F> = BatchCtx {
            next: AtomicUsize::new(0),
            tasks,
            init: &init,
            task: &task,
            done: Mutex::new(DoneState {
                slots: (0..tasks).map(|_| None).collect(),
                remaining: tasks,
            }),
            all_done: Condvar::new(),
        };
        let gate = Arc::new(Gate::new());
        // The guard executes the close protocol on every exit path —
        // including a panic unwinding out of the caller's own task loop —
        // so `ctx` can never be destroyed while a helper might still be
        // inside its dereferencing region.
        let guard = GateGuard(&gate);

        // The caller is always one participant, so helpers beyond `tasks - 1`
        // could never claim anything.
        let helpers = self.size().min(tasks.saturating_sub(1));
        if helpers > 0 {
            // SAFETY (pointer creation): the pointer is only dereferenced by
            // `run_batch_erased::<T, S, I, F>` below, which casts it back to
            // the exact `BatchCtx` type it was erased from, and only while
            // `ctx` is provably alive — see the protocol on `Gate`.
            let ptr = ErasedCtx(&ctx as *const BatchCtx<'_, T, I, F> as *const ());
            let runner = run_batch_erased::<T, S, I, F> as unsafe fn(*const ());
            let mut jobs: Vec<Job> = Vec::with_capacity(helpers);
            for _ in 0..helpers {
                let gate = Arc::clone(&gate);
                jobs.push(Box::new(move || {
                    // Capture the `Send` wrapper whole (edition 2021 would
                    // otherwise capture just the non-`Send` raw field).
                    let ptr = ptr;
                    // Protocol steps H1..H3; see `Gate` for why this is sound.
                    gate.running.fetch_add(1, Ordering::SeqCst);
                    if gate.open.load(Ordering::SeqCst) {
                        // SAFETY: the gate is open, so the batch's caller is
                        // still inside `run_indexed_stateful` (the guard
                        // closes the gate and waits for `running == 0`
                        // before the context dies), hence `ctx` — and
                        // everything it borrows — is alive.  `run_batch`
                        // catches task panics internally, so the decrement
                        // below is unconditionally reached.
                        unsafe { runner(ptr.0) };
                    }
                    gate.running.fetch_sub(1, Ordering::SeqCst);
                }));
            }
            self.submit(jobs);
        }

        // The caller participates like any worker: claims tasks until the
        // counter runs dry.  This is what guarantees progress even when every
        // pool worker is busy with other tenants' batches.
        run_batch(&ctx);

        // Wait for the tasks claimed by helpers to complete.  `run_batch`
        // never unwinds (panics are captured per task), so every claimed
        // index is eventually marked done and this wait terminates.
        let mut done = lock_unpoisoned(&ctx.done);
        while done.remaining > 0 {
            done = ctx
                .all_done
                .wait(done)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        let slots = std::mem::take(&mut done.slots);
        drop(done);
        drop(guard); // close protocol: helpers are out of the region now

        let mut values = Vec::with_capacity(tasks);
        let mut first_panic = None;
        for slot in slots {
            match slot.expect("every index was claimed by exactly one participant") {
                Ok(value) => values.push(value),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        values
    }

    fn submit(&self, jobs: Vec<Job>) {
        let mut queue = lock_unpoisoned(&self.shared.queue);
        queue.extend(jobs);
        drop(queue);
        self.shared.work_ready.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = lock_unpoisoned(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        job();
        shared.jobs_run.fetch_add(1, Ordering::Relaxed);
    }
}

/// Join protocol between a batch's caller and its queued helpers.
///
/// The helper jobs hold a raw pointer to the caller's stack-allocated
/// [`BatchCtx`]; the gate makes dereferencing it sound:
///
/// * **H1** — a helper first increments `running`.
/// * **H2** — it then loads `open`; only if `true` does it touch the context.
/// * **H3** — it decrements `running` when done (whether or not it ran; the
///   runner cannot unwind, so H3 is always reached).
/// * **C1** — before the context dies, the caller stores `open = false`.
/// * **C2** — the caller spins until `running == 0`; only then may the
///   context's lifetime end.
///
/// All operations are `SeqCst`, so they form one total order.  Suppose a
/// helper passes H2 seeing `open == true` after the context died.  The
/// context's death requires C2 to have observed `running == 0`, which in
/// the total order must precede this helper's H1 (otherwise `running` was
/// ≥ 1 at C2); so the helper's H2 follows its H1, which follows C2, which
/// follows C1's store of `false` — the helper must have seen `false`.
/// Contradiction.  Therefore any helper that dereferences the pointer does
/// so while the context is alive.
///
/// On the normal path C1/C2 run after every task has completed, so a helper
/// caught inside the region exits after one exhausted counter read.  On the
/// unwind path (the caller's own task panicked — impossible for mining
/// tasks after the fsm-core sweep, but guarded regardless) helpers may
/// still be executing claimed tasks; C2 then waits for them to drain the
/// counter, which is finite work.
struct Gate {
    open: AtomicBool,
    running: AtomicUsize,
}

impl Gate {
    fn new() -> Self {
        Self {
            open: AtomicBool::new(true),
            running: AtomicUsize::new(0),
        }
    }
}

/// Executes protocol steps C1 + C2 on drop, making the close protocol
/// unwind-safe.
struct GateGuard<'a>(&'a Gate);

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.0.open.store(false, Ordering::SeqCst);
        while self.0.running.load(Ordering::SeqCst) > 0 {
            std::thread::yield_now();
        }
    }
}

/// Type-erased pointer to a [`BatchCtx`].  `Send` is sound because the
/// pointee is only accessed under the [`Gate`] protocol while the owning
/// caller keeps it alive, and everything reachable from a `BatchCtx` is
/// shareable across threads (the `I: Sync`, `F: Sync`, `T: Send` bounds
/// mirror what `std::thread::scope` demanded of the old fan-out).
#[derive(Clone, Copy)]
struct ErasedCtx(*const ());

// SAFETY: see the type docs; the pointer crosses threads only inside helper
// jobs governed by the gate protocol.
unsafe impl Send for ErasedCtx {}

/// Everything one batch's participants share, on the caller's stack.
struct BatchCtx<'a, T, I, F> {
    next: AtomicUsize,
    tasks: usize,
    init: &'a I,
    task: &'a F,
    done: Mutex<DoneState<T>>,
    all_done: Condvar,
}

type TaskResult<T> = Result<T, Box<dyn std::any::Any + Send + 'static>>;

struct DoneState<T> {
    slots: Vec<Option<TaskResult<T>>>,
    remaining: usize,
}

/// Monomorphised helper entry point: recovers the typed context from the
/// erased pointer.
///
/// # Safety
///
/// `ptr` must point to a live `BatchCtx<T, I, F>` produced by a
/// `run_indexed_stateful::<T, S, I, F>` call with exactly these type
/// parameters; guaranteed by the [`Gate`] protocol plus the fact that each
/// helper job captures the runner monomorphised alongside its own pointer.
unsafe fn run_batch_erased<T, S, I, F>(ptr: *const ())
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let ctx = unsafe { &*(ptr as *const BatchCtx<'_, T, I, F>) };
    run_batch::<T, S, I, F>(ctx);
}

/// One participant's work loop: claim indices off the shared counter until
/// exhausted, owning one `init()` state for the whole run.  Never unwinds:
/// `init` and each task run under `catch_unwind`, and captured panics are
/// recorded as that index's result for the caller to resume.
fn run_batch<T, S, I, F>(ctx: &BatchCtx<'_, T, I, F>)
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let first = ctx.next.fetch_add(1, Ordering::SeqCst);
    if first >= ctx.tasks {
        return;
    }
    let mut state = match catch_unwind(AssertUnwindSafe(ctx.init)) {
        Ok(state) => Some(state),
        Err(payload) => {
            // `init` panicked: this participant can run nothing.  Record the
            // panic on the claimed index and put the index's siblings back in
            // play by *not* claiming further (other participants' counters
            // still cover them — the caller always participates and its
            // `init` result is independent).
            complete(ctx, first, Err(payload));
            return;
        }
    };
    let state = state.as_mut().expect("state initialised above");
    let mut index = first;
    loop {
        let result = catch_unwind(AssertUnwindSafe(|| (ctx.task)(state, index)));
        complete(ctx, index, result);
        index = ctx.next.fetch_add(1, Ordering::SeqCst);
        if index >= ctx.tasks {
            return;
        }
    }
}

/// Records one task's outcome and wakes the caller when the batch is done.
fn complete<T, I, F>(ctx: &BatchCtx<'_, T, I, F>, index: usize, result: TaskResult<T>) {
    let mut done = lock_unpoisoned(&ctx.done);
    done.slots[index] = Some(result);
    done.remaining -= 1;
    let finished = done.remaining == 0;
    drop(done);
    if finished {
        ctx.all_done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_come_back_in_index_order() {
        for pool_size in [1, 2, 4] {
            let pool = WorkerPool::new(pool_size);
            let results = pool.run_indexed_stateful(37, || (), |(), i| i * i);
            assert_eq!(results, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_and_tiny_task_counts_are_safe() {
        let pool = WorkerPool::new(2);
        assert!(pool
            .run_indexed_stateful(0, || (), |(), i: usize| i)
            .is_empty());
        assert_eq!(pool.run_indexed_stateful(1, || (), |(), i| i), vec![0]);
    }

    #[test]
    fn caller_alone_finishes_when_pool_is_empty() {
        let pool = WorkerPool::inline_only();
        assert_eq!(pool.size(), 0);
        let results = pool.run_indexed_stateful(
            100,
            || 0usize,
            |state, i| {
                *state += 1;
                i
            },
        );
        assert_eq!(results.len(), 100);
        assert_eq!(pool.jobs_run(), 0);
    }

    #[test]
    fn one_state_per_participant() {
        let pool = WorkerPool::new(3);
        let inits = AtomicU32::new(0);
        let results = pool.run_indexed_stateful(
            64,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |state, i| {
                *state += 1;
                std::thread::sleep(std::time::Duration::from_micros(100));
                i
            },
        );
        assert_eq!(results.len(), 64);
        // Caller + at most 3 helpers, and only participants that claimed at
        // least one task ever init a state.
        let inits = inits.load(Ordering::SeqCst);
        assert!((1..=4).contains(&inits), "{inits} states initialised");
    }

    #[test]
    fn pool_workers_actually_participate() {
        let pool = WorkerPool::new(4);
        let results = pool.run_indexed_stateful(
            256,
            || (),
            |(), i| {
                std::thread::sleep(std::time::Duration::from_micros(50));
                i
            },
        );
        assert_eq!(results.len(), 256);
        // Timing-dependent in principle, but with 256 sleeping tasks and 4
        // idle workers, at least one helper job must have run.
        assert!(pool.jobs_run() > 0, "no pool worker ever helped");
    }

    #[test]
    fn concurrent_batches_from_many_threads_interleave_safely() {
        let pool = Arc::new(WorkerPool::new(3));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for round in 0..20u64 {
                    let tasks = 1 + ((t + round) % 17) as usize;
                    let base = t * 1_000 + round;
                    let results = pool.run_indexed_stateful(tasks, || (), |(), i| base + i as u64);
                    let expected: Vec<u64> = (0..tasks).map(|i| base + i as u64).collect();
                    assert_eq!(results, expected);
                }
            }));
        }
        for handle in handles {
            handle.join().expect("batch thread panicked");
        }
    }

    #[test]
    fn batches_outlive_queued_helpers_without_touching_freed_state() {
        // Saturate the single pool worker with a slow job from one thread,
        // then run many short-lived batches whose helpers will only be
        // dequeued after the batches have completed and their contexts are
        // gone — those helpers must exit through the closed gate without
        // dereferencing anything.
        let pool = Arc::new(WorkerPool::new(1));
        let blocker = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                pool.run_indexed_stateful(
                    2,
                    || (),
                    |(), i| {
                        if i == 0 {
                            std::thread::sleep(std::time::Duration::from_millis(100));
                        }
                        i
                    },
                )
            })
        };
        for round in 0..50usize {
            let results = pool.run_indexed_stateful(4, || (), |(), i| i + round);
            assert_eq!(results, vec![round, round + 1, round + 2, round + 3]);
        }
        blocker.join().expect("blocker panicked");
    }

    #[test]
    fn a_panicking_task_propagates_without_wedging_the_pool() {
        let pool = Arc::new(WorkerPool::new(2));
        let outcome = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                pool.run_indexed_stateful(
                    8,
                    || (),
                    |(), i| {
                        if i == 3 {
                            panic!("task boom");
                        }
                        i
                    },
                )
            })
            .join()
        };
        // The batch's caller observes the panic whichever participant hit it.
        assert!(outcome.is_err(), "panic was swallowed");
        // And the pool still serves new batches afterwards.
        let results = pool.run_indexed_stateful(5, || (), |(), i| i * 2);
        assert_eq!(results, vec![0, 2, 4, 6, 8]);
    }
}
