//! Vertex identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a vertex in the (fixed) vertex universe of the graph stream.
///
/// The paper assumes every graph in the stream is drawn over the same vertex
/// universe (Example 1 uses `v1..v4`); vertices are therefore dense small
/// integers.  `u32` keeps the incidence tables compact.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Creates a vertex identifier from a raw index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(raw: u32) -> Self {
        Self(raw)
    }
}

impl From<VertexId> for u32 {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.0
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(VertexId::new(1).to_string(), "v1");
        assert_eq!(VertexId::new(42).to_string(), "v42");
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(VertexId::new(1) < VertexId::new(2));
        assert_eq!(VertexId::from(7u32).index(), 7);
        assert_eq!(u32::from(VertexId::new(9)), 9);
    }
}
