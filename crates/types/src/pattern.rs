//! Frequent patterns: collections of co-occurring edges and their supports.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::catalog::EdgeCatalog;
use crate::edge::EdgeId;
use crate::vertex::VertexId;

/// Support (frequency) of a pattern within the current sliding window.
pub type Support = u64;

/// A set of edge identifiers in ascending canonical order.
///
/// This is the pattern language of the paper: a *collection of co-occurring
/// edges*, e.g. `{a, c, d, f}`.  Whether the collection forms a connected
/// subgraph is a property judged against an [`EdgeCatalog`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct EdgeSet {
    edges: Vec<EdgeId>,
}

impl EdgeSet {
    /// Creates an empty edge set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an edge set from any collection of identifiers, sorting and
    /// deduplicating.
    pub fn from_edges<I>(edges: I) -> Self
    where
        I: IntoIterator<Item = EdgeId>,
    {
        let mut edges: Vec<EdgeId> = edges.into_iter().collect();
        edges.sort_unstable();
        edges.dedup();
        Self { edges }
    }

    /// Builds an edge set from raw `u32` identifiers.
    pub fn from_raw<I>(raw: I) -> Self
    where
        I: IntoIterator<Item = u32>,
    {
        Self::from_edges(raw.into_iter().map(EdgeId::new))
    }

    /// Builds a singleton edge set.
    pub fn singleton(edge: EdgeId) -> Self {
        Self { edges: vec![edge] }
    }

    /// Returns a new set with `edge` added (no-op if already present).
    pub fn with(&self, edge: EdgeId) -> Self {
        let mut next = self.clone();
        next.insert(edge);
        next
    }

    /// Inserts an edge, keeping canonical order.
    pub fn insert(&mut self, edge: EdgeId) {
        if let Err(pos) = self.edges.binary_search(&edge) {
            self.edges.insert(pos, edge);
        }
    }

    /// Returns `true` if `edge` is a member.
    pub fn contains(&self, edge: EdgeId) -> bool {
        self.edges.binary_search(&edge).is_ok()
    }

    /// The member edges in ascending canonical order.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of member edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterates over the member edges.
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().copied()
    }

    /// Returns `true` if every member of `self` is also a member of `other`.
    pub fn is_subset_of(&self, other: &EdgeSet) -> bool {
        self.edges.iter().all(|e| other.contains(*e))
    }

    /// Decides connectivity of the edge set against a catalog by exact
    /// union–find over edge endpoints.
    ///
    /// Singletons and the empty set are considered connected (the paper only
    /// applies the connectivity test to collections of two or more edges).
    pub fn is_connected(&self, catalog: &EdgeCatalog) -> bool {
        if self.edges.len() <= 1 {
            return true;
        }
        // Union-find over the vertices touched by the member edges.
        let mut verts: Vec<VertexId> = Vec::with_capacity(self.edges.len() * 2);
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.edges.len());
        for &e in &self.edges {
            match catalog.endpoints(e) {
                Ok((u, v)) => {
                    verts.push(u);
                    verts.push(v);
                    pairs.push((u, v));
                }
                Err(_) => return false,
            }
        }
        verts.sort_unstable();
        verts.dedup();
        let idx = |v: VertexId| verts.binary_search(&v).expect("vertex interned above");
        let mut parent: Vec<usize> = (0..verts.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (u, v) in pairs {
            let (ru, rv) = (find(&mut parent, idx(u)), find(&mut parent, idx(v)));
            if ru != rv {
                parent[ru] = rv;
            }
        }
        let root = find(&mut parent, 0);
        (1..verts.len()).all(|i| find(&mut parent, i) == root)
    }

    /// Decides connectivity using the paper's §3.5 vertex-frequency rule:
    /// an edge set is declared connected iff *every* member edge has at least
    /// one endpoint incident to two or more member edges.
    ///
    /// The rule is exact for the pattern sizes of the paper's running example
    /// but is a *necessary, not sufficient* condition in general (two disjoint
    /// triangles satisfy it).  It is retained for fidelity and for the
    /// ablation comparing it against the exact union–find check.
    pub fn is_connected_paper_rule(&self, catalog: &EdgeCatalog) -> bool {
        if self.edges.len() <= 1 {
            return true;
        }
        let mut counts: Vec<(VertexId, u32)> = Vec::with_capacity(self.edges.len() * 2);
        let bump = |v: VertexId, counts: &mut Vec<(VertexId, u32)>| match counts
            .iter_mut()
            .find(|(w, _)| *w == v)
        {
            Some((_, c)) => *c += 1,
            None => counts.push((v, 1)),
        };
        for &e in &self.edges {
            let Ok((u, v)) = catalog.endpoints(e) else {
                return false;
            };
            bump(u, &mut counts);
            bump(v, &mut counts);
        }
        let freq = |v: VertexId| {
            counts
                .iter()
                .find(|(w, _)| *w == v)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        self.edges.iter().all(|&e| {
            let (u, v) = catalog.endpoints(e).expect("checked above");
            freq(u) >= 2 || freq(v) >= 2
        })
    }

    /// Renders the set using the paper's `{a,c,f}` symbol notation.
    pub fn symbols(&self) -> String {
        let mut s = String::with_capacity(self.edges.len() * 2 + 2);
        s.push('{');
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&e.symbol());
        }
        s.push('}');
        s
    }
}

impl FromIterator<EdgeId> for EdgeSet {
    fn from_iter<I: IntoIterator<Item = EdgeId>>(iter: I) -> Self {
        Self::from_edges(iter)
    }
}

impl fmt::Display for EdgeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.symbols())
    }
}

/// Classification of a frequent edge collection, used when reporting results
/// of the post-processing algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    /// Every pair of member edges is linked through shared vertices.
    Connected,
    /// At least one member edge is disconnected from the rest.
    Disconnected,
}

/// A frequent collection of edges together with its support in the current
/// sliding window.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrequentPattern {
    /// The member edges, in canonical order.
    pub edges: EdgeSet,
    /// Number of window transactions containing every member edge.
    pub support: Support,
}

impl FrequentPattern {
    /// Creates a frequent pattern.
    pub fn new(edges: EdgeSet, support: Support) -> Self {
        Self { edges, support }
    }

    /// Number of member edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the pattern has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Classifies the pattern against a catalog using the exact connectivity
    /// check.
    pub fn kind(&self, catalog: &EdgeCatalog) -> PatternKind {
        if self.edges.is_connected(catalog) {
            PatternKind::Connected
        } else {
            PatternKind::Disconnected
        }
    }
}

impl PartialOrd for FrequentPattern {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FrequentPattern {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.edges
            .cmp(&other.edges)
            .then(self.support.cmp(&other.support))
    }
}

impl fmt::Display for FrequentPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.edges, self.support)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_catalog() -> EdgeCatalog {
        EdgeCatalog::complete(4)
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = EdgeSet::from_raw([3, 0, 3, 5]);
        assert_eq!(s.symbols(), "{a,d,f}");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn with_and_insert_do_not_duplicate() {
        let s = EdgeSet::singleton(EdgeId::new(2));
        let t = s.with(EdgeId::new(0)).with(EdgeId::new(2));
        assert_eq!(t.symbols(), "{a,c}");
        assert!(t.contains(EdgeId::new(0)));
        assert!(!t.contains(EdgeId::new(5)));
    }

    #[test]
    fn subset_relation() {
        let small = EdgeSet::from_raw([0, 2]);
        let big = EdgeSet::from_raw([0, 2, 3]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(EdgeSet::new().is_subset_of(&small));
    }

    #[test]
    fn connectivity_matches_paper_examples() {
        let cat = paper_catalog();
        // {a,c} = {(v1,v2),(v1,v4)} is connected (Example 6).
        assert!(EdgeSet::from_raw([0, 2]).is_connected(&cat));
        // {a,f} = {(v1,v2),(v3,v4)} is disjoint (Example 6).
        assert!(!EdgeSet::from_raw([0, 5]).is_connected(&cat));
        // {c,d} = {(v1,v4),(v2,v3)} is disjoint (Example 6).
        assert!(!EdgeSet::from_raw([2, 3]).is_connected(&cat));
        // {a,d} = {(v1,v2),(v2,v3)} is connected (§3.5).
        assert!(EdgeSet::from_raw([0, 3]).is_connected(&cat));
        // Singletons and the empty set are trivially connected.
        assert!(EdgeSet::singleton(EdgeId::new(5)).is_connected(&cat));
        assert!(EdgeSet::new().is_connected(&cat));
    }

    #[test]
    fn paper_rule_agrees_on_small_patterns() {
        let cat = paper_catalog();
        for raw in [
            vec![0, 2],
            vec![0, 5],
            vec![2, 3],
            vec![0, 3],
            vec![0, 2, 3, 5],
        ] {
            let set = EdgeSet::from_raw(raw.clone());
            assert_eq!(
                set.is_connected(&cat),
                set.is_connected_paper_rule(&cat),
                "pattern {set}"
            );
        }
    }

    #[test]
    fn paper_rule_is_weaker_than_exact_check_in_general() {
        // Two disjoint triangles over v1..v6: every vertex has degree 2, so the
        // §3.5 rule accepts the union even though it is disconnected.
        let mut cat = EdgeCatalog::new();
        let mut ids = Vec::new();
        for (u, v) in [(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6)] {
            ids.push(cat.intern(VertexId::new(u), VertexId::new(v)));
        }
        let set = EdgeSet::from_edges(ids);
        assert!(set.is_connected_paper_rule(&cat));
        assert!(!set.is_connected(&cat));
    }

    #[test]
    fn connectivity_of_unknown_edges_is_false() {
        let cat = paper_catalog();
        let set = EdgeSet::from_raw([0, 99]);
        assert!(!set.is_connected(&cat));
        assert!(!set.is_connected_paper_rule(&cat));
    }

    #[test]
    fn pattern_kind_and_display() {
        let cat = paper_catalog();
        let connected = FrequentPattern::new(EdgeSet::from_raw([0, 2]), 4);
        let disjoint = FrequentPattern::new(EdgeSet::from_raw([0, 5]), 4);
        assert_eq!(connected.kind(&cat), PatternKind::Connected);
        assert_eq!(disjoint.kind(&cat), PatternKind::Disconnected);
        assert_eq!(connected.to_string(), "{a,c}:4");
        assert_eq!(connected.len(), 2);
        assert!(!connected.is_empty());
    }

    #[test]
    fn patterns_sort_by_edges_then_support() {
        let mut patterns = [
            FrequentPattern::new(EdgeSet::from_raw([1]), 2),
            FrequentPattern::new(EdgeSet::from_raw([0, 2]), 4),
            FrequentPattern::new(EdgeSet::from_raw([0]), 5),
        ];
        patterns.sort();
        let rendered: Vec<String> = patterns.iter().map(|p| p.to_string()).collect();
        assert_eq!(rendered, vec!["{a}:5", "{a,c}:4", "{b}:2"]);
    }
}
