//! The edge catalog: vertex incidence (Table 1) and edge neighbourhoods
//! (Table 2) of the paper.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::edge::{Edge, EdgeId};
use crate::error::{FsmError, Result};
use crate::vertex::VertexId;

/// The vocabulary of distinct edges observed (or declared) for a graph stream.
///
/// The catalog serves three purposes, mirroring the paper's two lookup tables:
///
/// * it assigns every distinct vertex pair a canonical [`EdgeId`] (the item
///   symbol used by every capture structure),
/// * it answers *which vertices does edge `x` connect?* (Table 1, used by the
///   connectivity post-processing step of §3.5), and
/// * it answers *which edges neighbour edge `x`?* (Table 2, used by the direct
///   connected mining algorithm of §4).
///
/// The catalog can be built up-front (when the vertex universe is known, as in
/// the paper's generator) or incrementally while streaming via
/// [`EdgeCatalog::intern`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EdgeCatalog {
    edges: Vec<Edge>,
    by_endpoints: BTreeMap<(VertexId, VertexId), EdgeId>,
    /// `neighbors[e]` lists every edge sharing an endpoint with `e`, in
    /// ascending canonical order.
    neighbors: Vec<Vec<EdgeId>>,
    /// `incident[v]` lists every edge incident to vertex `v`.
    incident: BTreeMap<VertexId, Vec<EdgeId>>,
}

impl EdgeCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the catalog of a complete graph over `n` vertices, assigning
    /// edge identifiers in lexicographic endpoint order.
    ///
    /// The running example of the paper uses the complete graph over
    /// `v1..v4`, which yields exactly the edge symbols `a..f` of Figure 1.
    pub fn complete(n: u32) -> Self {
        let mut catalog = Self::new();
        for u in 1..=n {
            for v in (u + 1)..=n {
                catalog.intern(VertexId::new(u), VertexId::new(v));
            }
        }
        catalog
    }

    /// Builds a catalog from an explicit list of vertex pairs, preserving the
    /// list order as canonical order.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut catalog = Self::new();
        for (u, v) in pairs {
            catalog.intern(u, v);
        }
        catalog
    }

    /// Returns the identifier for the edge `(u, v)`, creating it if this
    /// vertex pair has never been seen.  Endpoint order is irrelevant.
    pub fn intern(&mut self, u: VertexId, v: VertexId) -> EdgeId {
        let key = if u <= v { (u, v) } else { (v, u) };
        if let Some(&id) = self.by_endpoints.get(&key) {
            return id;
        }
        let id = EdgeId::new(self.edges.len() as u32);
        let edge = Edge::new(id, key.0, key.1);

        // Wire the neighbourhood lists: the new edge neighbours every existing
        // edge incident to either endpoint.
        let mut new_neighbors = Vec::new();
        for &endpoint in &[key.0, key.1] {
            if let Some(existing) = self.incident.get(&endpoint) {
                for &other in existing {
                    if !new_neighbors.contains(&other) {
                        new_neighbors.push(other);
                        self.neighbors[other.index()].push(id);
                    }
                }
            }
        }
        new_neighbors.sort_unstable();

        self.by_endpoints.insert(key, id);
        self.incident.entry(key.0).or_default().push(id);
        if key.0 != key.1 {
            self.incident.entry(key.1).or_default().push(id);
        }
        self.neighbors.push(new_neighbors);
        self.edges.push(edge);
        id
    }

    /// Looks up the identifier of the edge `(u, v)` without creating it.
    pub fn lookup(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        let key = if u <= v { (u, v) } else { (v, u) };
        self.by_endpoints.get(&key).copied()
    }

    /// Returns the edge with identifier `id`.
    pub fn edge(&self, id: EdgeId) -> Result<Edge> {
        self.edges
            .get(id.index())
            .copied()
            .ok_or(FsmError::UnknownEdge { edge: id.0 })
    }

    /// Returns the endpoints of edge `id` (the paper's Table 1 lookup).
    pub fn endpoints(&self, id: EdgeId) -> Result<(VertexId, VertexId)> {
        self.edge(id).map(|e| e.endpoints())
    }

    /// Returns the neighbouring edges of `id` in ascending canonical order
    /// (the paper's Table 2 lookup).
    pub fn neighbors(&self, id: EdgeId) -> Result<&[EdgeId]> {
        self.neighbors
            .get(id.index())
            .map(Vec::as_slice)
            .ok_or(FsmError::UnknownEdge { edge: id.0 })
    }

    /// Returns the edges incident to `vertex`, if the vertex has been seen.
    pub fn incident_edges(&self, vertex: VertexId) -> &[EdgeId] {
        self.incident.get(&vertex).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Returns `true` if edges `a` and `b` share an endpoint.
    pub fn are_adjacent(&self, a: EdgeId, b: EdgeId) -> bool {
        match (self.edges.get(a.index()), self.edges.get(b.index())) {
            (Some(ea), Some(eb)) => ea.is_adjacent_to(eb),
            _ => false,
        }
    }

    /// Number of distinct edges interned so far (the domain size `m`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of distinct vertices seen so far.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.incident.len()
    }

    /// Iterates over all interned edges in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    /// Returns all edge identifiers in canonical order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId::new)
    }

    /// Approximate resident size of the catalog in bytes, used by the space
    /// experiment to account for auxiliary lookup tables.
    pub fn resident_bytes(&self) -> usize {
        let edge_bytes = self.edges.len() * std::mem::size_of::<Edge>();
        let neighbor_bytes: usize = self
            .neighbors
            .iter()
            .map(|n| n.len() * std::mem::size_of::<EdgeId>())
            .sum();
        let incident_bytes: usize = self
            .incident
            .values()
            .map(|n| n.len() * std::mem::size_of::<EdgeId>() + std::mem::size_of::<VertexId>())
            .sum();
        let map_bytes = self.by_endpoints.len()
            * (std::mem::size_of::<(VertexId, VertexId)>() + std::mem::size_of::<EdgeId>());
        edge_bytes + neighbor_bytes + incident_bytes + map_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The catalog of the paper's running example: complete graph over
    /// v1..v4, edges a..f in lexicographic order.
    fn paper_catalog() -> EdgeCatalog {
        EdgeCatalog::complete(4)
    }

    fn id(sym: char) -> EdgeId {
        EdgeId::new(sym as u32 - 'a' as u32)
    }

    #[test]
    fn complete_graph_matches_paper_table_1() {
        let cat = paper_catalog();
        assert_eq!(cat.num_edges(), 6);
        assert_eq!(cat.num_vertices(), 4);
        let expect = [
            ('a', (1, 2)),
            ('b', (1, 3)),
            ('c', (1, 4)),
            ('d', (2, 3)),
            ('e', (2, 4)),
            ('f', (3, 4)),
        ];
        for (sym, (u, v)) in expect {
            let (eu, ev) = cat.endpoints(id(sym)).unwrap();
            assert_eq!((eu.0, ev.0), (u, v), "edge {sym}");
        }
    }

    #[test]
    fn neighborhoods_match_paper_table_2() {
        let cat = paper_catalog();
        let expect = [
            ('a', "bcde"),
            ('b', "acdf"),
            ('c', "abef"),
            ('d', "abef"),
            ('e', "acdf"),
            ('f', "bcde"),
        ];
        for (sym, neigh) in expect {
            let mut got: Vec<String> = cat
                .neighbors(id(sym))
                .unwrap()
                .iter()
                .map(|e| e.symbol())
                .collect();
            got.sort();
            let want: Vec<String> = neigh.chars().map(|c| c.to_string()).collect();
            assert_eq!(got, want, "neighbors of {sym}");
        }
    }

    #[test]
    fn intern_is_idempotent_and_order_insensitive() {
        let mut cat = EdgeCatalog::new();
        let first = cat.intern(VertexId::new(3), VertexId::new(1));
        let second = cat.intern(VertexId::new(1), VertexId::new(3));
        assert_eq!(first, second);
        assert_eq!(cat.num_edges(), 1);
    }

    #[test]
    fn lookup_does_not_create() {
        let mut cat = EdgeCatalog::new();
        cat.intern(VertexId::new(1), VertexId::new(2));
        assert!(cat.lookup(VertexId::new(2), VertexId::new(1)).is_some());
        assert!(cat.lookup(VertexId::new(1), VertexId::new(3)).is_none());
        assert_eq!(cat.num_edges(), 1);
    }

    #[test]
    fn unknown_edge_is_an_error() {
        let cat = paper_catalog();
        assert!(cat.edge(EdgeId::new(6)).is_err());
        assert!(cat.neighbors(EdgeId::new(99)).is_err());
    }

    #[test]
    fn incident_edges_cover_all_edges_touching_a_vertex() {
        let cat = paper_catalog();
        let mut at_v1: Vec<String> = cat
            .incident_edges(VertexId::new(1))
            .iter()
            .map(|e| e.symbol())
            .collect();
        at_v1.sort();
        assert_eq!(at_v1, vec!["a", "b", "c"]);
        assert!(cat.incident_edges(VertexId::new(9)).is_empty());
    }

    #[test]
    fn adjacency_is_symmetric_and_irreflexive() {
        let cat = paper_catalog();
        for x in cat.edge_ids() {
            assert!(!cat.are_adjacent(x, x));
            for y in cat.edge_ids() {
                assert_eq!(cat.are_adjacent(x, y), cat.are_adjacent(y, x));
            }
        }
    }

    #[test]
    fn from_pairs_preserves_order() {
        let cat = EdgeCatalog::from_pairs(vec![
            (VertexId::new(5), VertexId::new(2)),
            (VertexId::new(1), VertexId::new(2)),
        ]);
        assert_eq!(cat.endpoints(EdgeId::new(0)).unwrap().0, VertexId::new(2));
        assert_eq!(cat.num_edges(), 2);
    }

    #[test]
    fn resident_bytes_grows_with_edges() {
        let small = EdgeCatalog::complete(3);
        let large = EdgeCatalog::complete(10);
        assert!(large.resident_bytes() > small.resident_bytes());
    }
}
