//! Core data types shared by every crate in the streaming frequent connected
//! subgraph mining workspace.
//!
//! The paper models a *stream of graph structured data*: at every time tick a
//! small graph (a set of labelled edges over a fixed vertex universe) arrives.
//! Consecutive graphs are grouped into *batches*, and mining operates over a
//! *sliding window* of the most recent `w` batches.  Each incoming graph is
//! treated as a *transaction* whose "items" are edge identifiers, which is why
//! the mining substrate below speaks of items and transactions while the
//! graph-level vocabulary (vertices, incidence, neighbourhoods) lives in the
//! [`EdgeCatalog`].
//!
//! Everything here is deliberately small, `Copy` where possible, and ordered
//! canonically so that the structures built on top (DSTree, DSTable, DSMatrix,
//! FP-trees) never need to reorder their contents when frequencies drift — the
//! key invariant the paper relies on for single-pass stream capture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod catalog;
pub mod edge;
pub mod error;
pub mod graph;
pub mod minsup;
pub mod pattern;
pub mod transaction;
pub mod vertex;

pub use batch::{Batch, BatchId};
pub use catalog::EdgeCatalog;
pub use edge::{Edge, EdgeId};
pub use error::{FsmError, Result};
pub use graph::GraphSnapshot;
pub use minsup::MinSup;
pub use pattern::{EdgeSet, FrequentPattern, PatternKind, Support};
pub use transaction::{Transaction, TransactionId};
pub use vertex::VertexId;
