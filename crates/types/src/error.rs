//! Error type shared by the workspace.

use std::fmt;
use std::io;

/// Convenient result alias used throughout the workspace.
pub type Result<T, E = FsmError> = std::result::Result<T, E>;

/// Errors produced anywhere in the mining pipeline.
///
/// The variants are intentionally coarse: callers either recover by adjusting
/// configuration (e.g. an unknown edge in a transaction) or simply surface the
/// message to the user (I/O and parse failures).
#[derive(Debug)]
pub enum FsmError {
    /// A transaction referenced an edge that is not present in the catalog.
    UnknownEdge {
        /// Raw identifier that was looked up.
        edge: u32,
    },
    /// A transaction referenced a vertex outside the declared universe.
    UnknownVertex {
        /// Raw identifier that was looked up.
        vertex: u32,
    },
    /// A structural invariant of a capture structure was violated.
    ///
    /// This indicates a bug in the library (or corrupted on-disk state), not a
    /// user error; the message describes the violated invariant.
    CorruptStructure(String),
    /// Configuration is inconsistent (e.g. a zero-sized window).
    InvalidConfig(String),
    /// The requested operation needs at least one ingested batch.
    EmptyWindow,
    /// Parsing of an external format (N-Triples, FIMI, …) failed.
    Parse {
        /// 1-based line where the failure occurred, if known.
        line: Option<usize>,
        /// Human-readable description.
        message: String,
    },
    /// A durable on-disk artifact (WAL record, checkpoint, data page) failed
    /// its checksum or structural validation.
    ///
    /// Unlike [`FsmError::CorruptStructure`] — which flags an in-memory
    /// invariant violation — this variant names the *file-level artifact* that
    /// is damaged, so recovery code and operators can tell exactly which part
    /// of the durable state to distrust (and which checkpoint to fall back
    /// to).
    CorruptArtifact {
        /// Which artifact is damaged, e.g. `"wal record #3"`,
        /// `"checkpoint-16.ckpt"` or `"page 2 of seg-7.pages"`.
        artifact: String,
        /// What validation failed (checksum mismatch, truncated body, …).
        detail: String,
    },
    /// A service request named a tenant the registry does not know.
    UnknownTenant(String),
    /// A tenant-creation request reused an id the registry already serves.
    TenantExists(String),
    /// A tenant's ingest queue is full; the producer must retry (or slow
    /// down).  Carrying a dedicated variant lets the wire protocol map this
    /// to a retryable status instead of a generic failure.
    Backpressure {
        /// The tenant whose queue is full.
        tenant: String,
    },
    /// Underlying I/O failure (disk-backed structures, dataset readers).
    Io(io::Error),
}

impl FsmError {
    /// Shorthand for a parse error with a line number.
    pub fn parse_at(line: usize, message: impl Into<String>) -> Self {
        Self::Parse {
            line: Some(line),
            message: message.into(),
        }
    }

    /// Shorthand for a parse error without positional information.
    pub fn parse(message: impl Into<String>) -> Self {
        Self::Parse {
            line: None,
            message: message.into(),
        }
    }

    /// Shorthand for an invalid-configuration error.
    pub fn config(message: impl Into<String>) -> Self {
        Self::InvalidConfig(message.into())
    }

    /// Shorthand for a corrupt-structure error.
    pub fn corrupt(message: impl Into<String>) -> Self {
        Self::CorruptStructure(message.into())
    }

    /// Shorthand for an unknown-tenant error.
    pub fn unknown_tenant(tenant: impl Into<String>) -> Self {
        Self::UnknownTenant(tenant.into())
    }

    /// Shorthand for a duplicate-tenant error.
    pub fn tenant_exists(tenant: impl Into<String>) -> Self {
        Self::TenantExists(tenant.into())
    }

    /// Shorthand for an ingest-backpressure signal.
    pub fn backpressure(tenant: impl Into<String>) -> Self {
        Self::Backpressure {
            tenant: tenant.into(),
        }
    }

    /// Shorthand for a corrupt durable-artifact error.
    pub fn corrupt_artifact(artifact: impl Into<String>, detail: impl Into<String>) -> Self {
        Self::CorruptArtifact {
            artifact: artifact.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownEdge { edge } => write!(f, "unknown edge identifier {edge}"),
            Self::UnknownVertex { vertex } => write!(f, "unknown vertex identifier {vertex}"),
            Self::CorruptStructure(msg) => write!(f, "corrupt capture structure: {msg}"),
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Self::EmptyWindow => write!(f, "the sliding window contains no batches"),
            Self::Parse {
                line: Some(line),
                message,
            } => write!(f, "parse error at line {line}: {message}"),
            Self::Parse {
                line: None,
                message,
            } => write!(f, "parse error: {message}"),
            Self::CorruptArtifact { artifact, detail } => {
                write!(f, "corrupt durable artifact {artifact}: {detail}")
            }
            Self::UnknownTenant(tenant) => write!(f, "unknown tenant {tenant:?}"),
            Self::TenantExists(tenant) => write!(f, "tenant {tenant:?} already exists"),
            Self::Backpressure { tenant } => {
                write!(f, "tenant {tenant:?} ingest queue is full; retry later")
            }
            Self::Io(err) => write!(f, "I/O error: {err}"),
        }
    }
}

impl std::error::Error for FsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for FsmError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(
            FsmError::UnknownEdge { edge: 7 }.to_string(),
            "unknown edge identifier 7"
        );
        assert_eq!(
            FsmError::parse_at(3, "bad triple").to_string(),
            "parse error at line 3: bad triple"
        );
        assert_eq!(
            FsmError::parse("truncated record").to_string(),
            "parse error: truncated record"
        );
        assert_eq!(
            FsmError::config("window of 0 batches").to_string(),
            "invalid configuration: window of 0 batches"
        );
        assert_eq!(
            FsmError::EmptyWindow.to_string(),
            "the sliding window contains no batches"
        );
        assert_eq!(
            FsmError::corrupt_artifact("wal record #3", "checksum mismatch").to_string(),
            "corrupt durable artifact wal record #3: checksum mismatch"
        );
    }

    #[test]
    fn io_errors_are_wrapped_with_source() {
        let err: FsmError = io::Error::new(io::ErrorKind::NotFound, "missing").into();
        assert!(err.to_string().contains("missing"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
