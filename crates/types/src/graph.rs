//! Graph snapshots: the raw (vertex-pair) form of one streamed graph before it
//! is translated into a [`Transaction`] through the edge catalog.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::catalog::EdgeCatalog;
use crate::error::Result;
use crate::transaction::Transaction;
use crate::vertex::VertexId;

/// One streamed graph expressed as vertex pairs, as produced by a linked-data
/// source or a generator before edge identifiers are assigned.
///
/// A snapshot is an *undirected simple graph*: parallel edges collapse and
/// endpoint order is irrelevant.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphSnapshot {
    edges: BTreeSet<(VertexId, VertexId)>,
}

impl GraphSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a snapshot from vertex pairs given as raw integers.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut snap = Self::new();
        for (u, v) in pairs {
            snap.add_edge(VertexId::new(u), VertexId::new(v));
        }
        snap
    }

    /// Adds the undirected edge `(u, v)`; returns `true` if it was new.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let key = if u <= v { (u, v) } else { (v, u) };
        self.edges.insert(key)
    }

    /// Returns `true` if the snapshot contains the undirected edge `(u, v)`.
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        let key = if u <= v { (u, v) } else { (v, u) };
        self.edges.contains(&key)
    }

    /// Number of distinct edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the snapshot has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterates over the edges as normalised `(min, max)` vertex pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.edges.iter().copied()
    }

    /// The set of distinct vertices touched by at least one edge.
    pub fn vertices(&self) -> BTreeSet<VertexId> {
        let mut set = BTreeSet::new();
        for &(u, v) in &self.edges {
            set.insert(u);
            set.insert(v);
        }
        set
    }

    /// Translates the snapshot into a transaction over an existing catalog,
    /// failing if an edge has not been declared.
    ///
    /// Use this when the edge vocabulary is fixed up-front (as the paper's
    /// experiments assume); use [`GraphSnapshot::intern_into`] when the
    /// vocabulary grows with the stream.
    pub fn to_transaction(&self, catalog: &EdgeCatalog) -> Result<Transaction> {
        let mut edges = Vec::with_capacity(self.edges.len());
        for &(u, v) in &self.edges {
            let id = catalog
                .lookup(u, v)
                .ok_or(crate::error::FsmError::UnknownVertex { vertex: u.0 })?;
            edges.push(id);
        }
        Ok(Transaction::from_edges(edges))
    }

    /// Translates the snapshot into a transaction, interning any previously
    /// unseen vertex pair into the catalog.
    pub fn intern_into(&self, catalog: &mut EdgeCatalog) -> Transaction {
        Transaction::from_edges(self.edges.iter().map(|&(u, v)| catalog.intern(u, v)))
    }
}

impl fmt::Display for GraphSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (u, v)) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({u},{v})")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_undirected_and_deduplicated() {
        let mut g = GraphSnapshot::new();
        assert!(g.add_edge(VertexId::new(2), VertexId::new(1)));
        assert!(!g.add_edge(VertexId::new(1), VertexId::new(2)));
        assert!(g.contains_edge(VertexId::new(1), VertexId::new(2)));
        assert!(g.contains_edge(VertexId::new(2), VertexId::new(1)));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn vertices_collects_both_endpoints() {
        let g = GraphSnapshot::from_pairs([(1, 4), (2, 3), (3, 4)]);
        let verts: Vec<u32> = g.vertices().into_iter().map(|v| v.0).collect();
        assert_eq!(verts, vec![1, 2, 3, 4]);
    }

    #[test]
    fn to_transaction_uses_paper_symbols() {
        // E1 at time T1 = {(v1,v4),(v2,v3),(v3,v4)} = {c, d, f}.
        let catalog = EdgeCatalog::complete(4);
        let g = GraphSnapshot::from_pairs([(1, 4), (2, 3), (3, 4)]);
        let t = g.to_transaction(&catalog).unwrap();
        assert_eq!(t.to_string(), "{c,d,f}");
    }

    #[test]
    fn to_transaction_fails_for_undeclared_edges() {
        let catalog = EdgeCatalog::complete(3);
        let g = GraphSnapshot::from_pairs([(1, 4)]);
        assert!(g.to_transaction(&catalog).is_err());
    }

    #[test]
    fn intern_into_grows_the_catalog() {
        let mut catalog = EdgeCatalog::new();
        let g = GraphSnapshot::from_pairs([(1, 2), (2, 3)]);
        let t = g.intern_into(&mut catalog);
        assert_eq!(t.len(), 2);
        assert_eq!(catalog.num_edges(), 2);
    }

    #[test]
    fn display_lists_normalised_pairs() {
        let g = GraphSnapshot::from_pairs([(4, 1)]);
        assert_eq!(g.to_string(), "{(v1,v4)}");
        assert_eq!(GraphSnapshot::new().to_string(), "{}");
    }
}
