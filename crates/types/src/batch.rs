//! Batches: consecutive groups of transactions as they arrive on the stream.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::transaction::Transaction;

/// Monotonically increasing identifier of a batch since the beginning of the
/// stream (not the position within the window).
pub type BatchId = u64;

/// A batch of transactions — the unit by which the sliding window advances.
///
/// The paper's experiments group the stream into batches of 6 000 records and
/// keep a window of `w = 5` batches; the running example uses batches of three
/// graphs each.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batch {
    /// Stream-wide identifier of this batch (0 for the first batch ever).
    pub id: BatchId,
    transactions: Vec<Transaction>,
}

impl Batch {
    /// Creates an empty batch with the given stream identifier.
    pub fn new(id: BatchId) -> Self {
        Self {
            id,
            transactions: Vec::new(),
        }
    }

    /// Builds a batch from a list of transactions.
    pub fn from_transactions(id: BatchId, transactions: Vec<Transaction>) -> Self {
        Self { id, transactions }
    }

    /// Appends a transaction to the batch.
    pub fn push(&mut self, transaction: Transaction) {
        self.transactions.push(transaction);
    }

    /// The transactions in arrival order.
    #[inline]
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Number of transactions in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Returns `true` if the batch has no transactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Iterates over the transactions in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.transactions.iter()
    }

    /// Total number of edge occurrences across all transactions (useful for
    /// density statistics).
    pub fn total_edge_occurrences(&self) -> usize {
        self.transactions.iter().map(Transaction::len).sum()
    }
}

impl fmt::Display for Batch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}[{} txs]", self.id, self.transactions.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut b = Batch::new(3);
        b.push(Transaction::from_raw([0, 1]));
        b.push(Transaction::from_raw([2]));
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.id, 3);
        let lens: Vec<usize> = b.iter().map(Transaction::len).collect();
        assert_eq!(lens, vec![2, 1]);
        assert_eq!(b.total_edge_occurrences(), 3);
    }

    #[test]
    fn from_transactions_preserves_order() {
        let b = Batch::from_transactions(
            0,
            vec![Transaction::from_raw([5]), Transaction::from_raw([1, 2])],
        );
        assert_eq!(b.transactions()[0].edges()[0].0, 5);
        assert_eq!(b.to_string(), "B0[2 txs]");
    }

    #[test]
    fn empty_batch() {
        let b = Batch::new(0);
        assert!(b.is_empty());
        assert_eq!(b.total_edge_occurrences(), 0);
    }
}
