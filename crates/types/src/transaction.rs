//! Transactions: the edge set of one streamed graph.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::edge::EdgeId;

/// Position of a transaction within the current sliding window (column index
/// of the DSMatrix).
pub type TransactionId = usize;

/// The edge set of a single streamed graph, kept in ascending canonical order
/// with duplicates removed.
///
/// In the paper's terminology this is one "transaction": at time `T4` the
/// streamed graph `E4 = {(v1,v2), (v1,v4), (v2,v3), (v3,v4)}` becomes the
/// transaction `{a, c, d, f}`.  Canonical ordering is what lets every capture
/// structure be built in a single scan without ever reordering its contents.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Transaction {
    edges: Vec<EdgeId>,
}

impl Transaction {
    /// Creates an empty transaction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a transaction from any collection of edge identifiers, sorting
    /// and deduplicating them.
    pub fn from_edges<I>(edges: I) -> Self
    where
        I: IntoIterator<Item = EdgeId>,
    {
        let mut edges: Vec<EdgeId> = edges.into_iter().collect();
        edges.sort_unstable();
        edges.dedup();
        Self { edges }
    }

    /// Builds a transaction from raw `u32` identifiers (convenience for tests
    /// and generators).
    pub fn from_raw<I>(raw: I) -> Self
    where
        I: IntoIterator<Item = u32>,
    {
        Self::from_edges(raw.into_iter().map(EdgeId::new))
    }

    /// Adds an edge, keeping the canonical order invariant.
    pub fn insert(&mut self, edge: EdgeId) {
        match self.edges.binary_search(&edge) {
            Ok(_) => {}
            Err(pos) => self.edges.insert(pos, edge),
        }
    }

    /// Returns `true` if the transaction contains `edge`.
    pub fn contains(&self, edge: EdgeId) -> bool {
        self.edges.binary_search(&edge).is_ok()
    }

    /// The edges in ascending canonical order.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges in the transaction.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the transaction has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterates over the edges in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().copied()
    }

    /// Returns the edges strictly after `pivot` in canonical order — the
    /// "extract the column downwards" operation the paper uses to form
    /// `{x}`-projected databases from the DSMatrix.
    pub fn suffix_after(&self, pivot: EdgeId) -> &[EdgeId] {
        match self.edges.binary_search(&pivot) {
            Ok(pos) => &self.edges[pos + 1..],
            Err(pos) => &self.edges[pos..],
        }
    }

    /// Returns `true` if every edge of `other` is contained in `self`.
    pub fn contains_all(&self, other: &[EdgeId]) -> bool {
        other.iter().all(|e| self.contains(*e))
    }
}

impl FromIterator<EdgeId> for Transaction {
    fn from_iter<I: IntoIterator<Item = EdgeId>>(iter: I) -> Self {
        Self::from_edges(iter)
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_dedups() {
        let t = Transaction::from_raw([5, 0, 3, 0, 5]);
        assert_eq!(t.edges(), &[EdgeId::new(0), EdgeId::new(3), EdgeId::new(5)]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn insert_preserves_order_and_uniqueness() {
        let mut t = Transaction::new();
        t.insert(EdgeId::new(4));
        t.insert(EdgeId::new(1));
        t.insert(EdgeId::new(4));
        assert_eq!(t.edges(), &[EdgeId::new(1), EdgeId::new(4)]);
    }

    #[test]
    fn contains_and_contains_all() {
        let t = Transaction::from_raw([0, 2, 3, 5]);
        assert!(t.contains(EdgeId::new(2)));
        assert!(!t.contains(EdgeId::new(4)));
        assert!(t.contains_all(&[EdgeId::new(0), EdgeId::new(5)]));
        assert!(!t.contains_all(&[EdgeId::new(0), EdgeId::new(4)]));
    }

    #[test]
    fn suffix_after_matches_paper_projection() {
        // E4 = {a, c, d, f}: projecting on `a` extracts {c, d, f}.
        let t = Transaction::from_raw([0, 2, 3, 5]);
        let suffix: Vec<String> = t
            .suffix_after(EdgeId::new(0))
            .iter()
            .map(|e| e.symbol())
            .collect();
        assert_eq!(suffix, vec!["c", "d", "f"]);
        // Projecting on an absent pivot keeps everything after its slot.
        let suffix: Vec<String> = t
            .suffix_after(EdgeId::new(1))
            .iter()
            .map(|e| e.symbol())
            .collect();
        assert_eq!(suffix, vec!["c", "d", "f"]);
        // Projecting on the last edge yields an empty suffix.
        assert!(t.suffix_after(EdgeId::new(5)).is_empty());
    }

    #[test]
    fn display_uses_symbols() {
        let t = Transaction::from_raw([0, 2, 5]);
        assert_eq!(t.to_string(), "{a,c,f}");
    }

    #[test]
    fn empty_transaction_behaviour() {
        let t = Transaction::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.suffix_after(EdgeId::new(0)).is_empty());
        assert_eq!(t.to_string(), "{}");
    }
}
