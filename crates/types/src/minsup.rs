//! Minimum-support thresholds.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A user-specified minimum support threshold.
///
/// The paper states thresholds as absolute frequencies in the running example
/// (`minsup = 2`) and as relative percentages in the evaluation; both forms
/// are supported and resolved against the number of transactions currently in
/// the sliding window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MinSup {
    /// An absolute number of transactions a pattern must appear in.
    Absolute(u64),
    /// A fraction (0.0 ..= 1.0) of the transactions in the current window.
    Relative(f64),
}

impl MinSup {
    /// Creates an absolute threshold.
    pub const fn absolute(count: u64) -> Self {
        Self::Absolute(count)
    }

    /// Creates a relative threshold from a fraction in `[0, 1]`.
    ///
    /// Values are clamped into the valid range so that a slightly negative or
    /// >1 value produced by arithmetic does not panic later.
    pub fn relative(fraction: f64) -> Self {
        Self::Relative(fraction.clamp(0.0, 1.0))
    }

    /// Resolves the threshold to an absolute count given the number of
    /// transactions in the current window.
    ///
    /// Relative thresholds round up (a pattern must appear in *at least* the
    /// given fraction of transactions) and never resolve below 1, matching the
    /// convention of the FIMI tooling the paper's datasets come from.
    pub fn resolve(&self, window_transactions: usize) -> u64 {
        match *self {
            Self::Absolute(count) => count.max(1),
            Self::Relative(fraction) => {
                let raw = (fraction * window_transactions as f64).ceil() as u64;
                raw.max(1)
            }
        }
    }
}

impl Default for MinSup {
    fn default() -> Self {
        Self::Absolute(1)
    }
}

impl fmt::Display for MinSup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Absolute(count) => write!(f, "minsup={count}"),
            Self::Relative(fraction) => write!(f, "minsup={:.2}%", fraction * 100.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_resolution_is_identity_but_at_least_one() {
        assert_eq!(MinSup::absolute(2).resolve(1000), 2);
        assert_eq!(MinSup::absolute(0).resolve(1000), 1);
    }

    #[test]
    fn relative_resolution_rounds_up() {
        assert_eq!(MinSup::relative(0.5).resolve(6), 3);
        assert_eq!(MinSup::relative(0.5).resolve(7), 4);
        assert_eq!(MinSup::relative(0.001).resolve(100), 1);
        assert_eq!(MinSup::relative(0.0).resolve(100), 1);
        assert_eq!(MinSup::relative(1.0).resolve(100), 100);
    }

    #[test]
    fn relative_clamps_out_of_range_inputs() {
        assert_eq!(MinSup::relative(1.5).resolve(10), 10);
        assert_eq!(MinSup::relative(-0.5).resolve(10), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(MinSup::absolute(2).to_string(), "minsup=2");
        assert_eq!(MinSup::relative(0.25).to_string(), "minsup=25.00%");
    }

    #[test]
    fn default_is_absolute_one() {
        assert_eq!(MinSup::default().resolve(50), 1);
    }
}
