//! Edge identifiers and labelled edges.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::vertex::VertexId;

/// Identifier of a *distinct* edge (a vertex pair) in the graph stream.
///
/// Edge identifiers double as the "items" of the transaction-style mining
/// substrate: the paper maps the six possible edges of its running example to
/// the symbols `a..f` and then treats each streamed graph as the itemset of
/// edge symbols it contains.  Identifiers are assigned in *canonical order*
/// (the order used by every capture structure), so `EdgeId(0)` is the first
/// edge in canonical order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Creates an edge identifier from a raw canonical index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw canonical index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Renders the identifier using the paper's `a, b, c, …` notation when the
    /// index is small enough, falling back to `e<idx>` otherwise.
    pub fn symbol(self) -> String {
        if self.0 < 26 {
            char::from(b'a' + self.0 as u8).to_string()
        } else {
            format!("e{}", self.0)
        }
    }
}

impl From<u32> for EdgeId {
    #[inline]
    fn from(raw: u32) -> Self {
        Self(raw)
    }
}

impl From<EdgeId> for u32 {
    #[inline]
    fn from(e: EdgeId) -> Self {
        e.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A labelled, undirected edge: an identifier plus its two endpoints.
///
/// Endpoints are stored in ascending order so that two edges over the same
/// vertex pair compare equal regardless of construction order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Canonical identifier of the edge.
    pub id: EdgeId,
    /// Smaller endpoint.
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
}

impl Edge {
    /// Creates an edge, normalising the endpoint order.
    pub fn new(id: EdgeId, a: VertexId, b: VertexId) -> Self {
        let (u, v) = if a <= b { (a, b) } else { (b, a) };
        Self { id, u, v }
    }

    /// Returns both endpoints as a pair `(min, max)`.
    #[inline]
    pub const fn endpoints(&self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }

    /// Returns `true` if `vertex` is one of the two endpoints.
    #[inline]
    pub fn is_incident_to(&self, vertex: VertexId) -> bool {
        self.u == vertex || self.v == vertex
    }

    /// Returns `true` if this edge shares at least one endpoint with `other`.
    ///
    /// Two distinct edges that share an endpoint are *neighbours* in the sense
    /// of the paper's Table 2; a self-comparison returns `false` because an
    /// edge is not its own neighbour.
    pub fn is_adjacent_to(&self, other: &Edge) -> bool {
        if self.id == other.id {
            return false;
        }
        self.is_incident_to(other.u) || self.is_incident_to(other.v)
    }

    /// Returns `true` if the edge is a self-loop (both endpoints equal).
    #[inline]
    pub fn is_loop(&self) -> bool {
        self.u == self.v
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}≡({},{})", self.id, self.u, self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u32, u: u32, v: u32) -> Edge {
        Edge::new(EdgeId::new(id), VertexId::new(u), VertexId::new(v))
    }

    #[test]
    fn symbols_match_paper_notation() {
        assert_eq!(EdgeId::new(0).symbol(), "a");
        assert_eq!(EdgeId::new(5).symbol(), "f");
        assert_eq!(EdgeId::new(25).symbol(), "z");
        assert_eq!(EdgeId::new(26).symbol(), "e26");
    }

    #[test]
    fn endpoints_are_normalised() {
        let edge = e(0, 4, 1);
        assert_eq!(edge.endpoints(), (VertexId::new(1), VertexId::new(4)));
    }

    #[test]
    fn incidence_and_adjacency() {
        // Paper Table 1: a=(v1,v2), d=(v2,v3), f=(v3,v4).
        let a = e(0, 1, 2);
        let d = e(3, 2, 3);
        let f = e(5, 3, 4);
        assert!(a.is_incident_to(VertexId::new(1)));
        assert!(!a.is_incident_to(VertexId::new(3)));
        assert!(a.is_adjacent_to(&d), "a and d share v2");
        assert!(d.is_adjacent_to(&f), "d and f share v3");
        assert!(!a.is_adjacent_to(&f), "a and f are disjoint (Table 2)");
    }

    #[test]
    fn edge_is_not_its_own_neighbour() {
        let a = e(0, 1, 2);
        assert!(!a.is_adjacent_to(&a));
    }

    #[test]
    fn loop_detection() {
        assert!(e(0, 3, 3).is_loop());
        assert!(!e(0, 3, 4).is_loop());
    }

    #[test]
    fn display_formats() {
        let a = e(0, 1, 2);
        assert_eq!(a.to_string(), "a≡(v1,v2)");
    }
}
