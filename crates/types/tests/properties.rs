//! Property-based tests for the core type invariants.

use fsm_types::{EdgeCatalog, EdgeId, EdgeSet, MinSup, Transaction, VertexId};
use proptest::prelude::*;

proptest! {
    /// Transactions are always sorted and duplicate-free regardless of input.
    #[test]
    fn transaction_is_canonical(raw in proptest::collection::vec(0u32..64, 0..40)) {
        let t = Transaction::from_raw(raw.clone());
        let edges = t.edges();
        for w in edges.windows(2) {
            prop_assert!(w[0] < w[1], "not strictly ascending: {:?}", edges);
        }
        for r in raw {
            prop_assert!(t.contains(EdgeId::new(r)));
        }
    }

    /// `suffix_after` returns exactly the members strictly greater than the pivot.
    #[test]
    fn suffix_after_is_strictly_greater(
        raw in proptest::collection::vec(0u32..64, 0..40),
        pivot in 0u32..64,
    ) {
        let t = Transaction::from_raw(raw);
        let pivot = EdgeId::new(pivot);
        let suffix = t.suffix_after(pivot);
        for e in suffix {
            prop_assert!(*e > pivot);
        }
        let expected: Vec<EdgeId> = t.iter().filter(|e| *e > pivot).collect();
        prop_assert_eq!(suffix, expected.as_slice());
    }

    /// Edge sets behave as mathematical sets: insertion order is irrelevant.
    #[test]
    fn edge_set_is_order_insensitive(mut raw in proptest::collection::vec(0u32..64, 0..20)) {
        let forward = EdgeSet::from_raw(raw.clone());
        raw.reverse();
        let backward = EdgeSet::from_raw(raw);
        prop_assert_eq!(forward, backward);
    }

    /// Interning the same pairs in any order yields identical neighbourhood
    /// structure sizes (ids may differ, adjacency must not).
    #[test]
    fn catalog_adjacency_is_consistent(pairs in proptest::collection::vec((1u32..8, 1u32..8), 1..20)) {
        let mut cat = EdgeCatalog::new();
        let ids: Vec<EdgeId> = pairs
            .iter()
            .map(|&(u, v)| cat.intern(VertexId::new(u), VertexId::new(v)))
            .collect();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                let (au, av) = cat.endpoints(a).unwrap();
                let (bu, bv) = cat.endpoints(b).unwrap();
                let share = a != b && (au == bu || au == bv || av == bu || av == bv);
                prop_assert_eq!(cat.are_adjacent(a, b), share);
                // neighbors() must be consistent with are_adjacent().
                let in_list = cat.neighbors(a).unwrap().contains(&b);
                prop_assert_eq!(in_list, share);
            }
        }
    }

    /// The exact union-find connectivity check implies the paper's §3.5 rule
    /// (the rule is a necessary condition).
    #[test]
    fn exact_connectivity_implies_paper_rule(
        pairs in proptest::collection::vec((1u32..7, 1u32..7), 1..12),
        pick in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let mut cat = EdgeCatalog::new();
        let ids: Vec<EdgeId> = pairs
            .iter()
            .filter(|(u, v)| u != v)
            .map(|&(u, v)| cat.intern(VertexId::new(u), VertexId::new(v)))
            .collect();
        let chosen: Vec<EdgeId> = ids
            .iter()
            .zip(pick.iter())
            .filter_map(|(id, keep)| keep.then_some(*id))
            .collect();
        let set = EdgeSet::from_edges(chosen);
        if set.is_connected(&cat) {
            prop_assert!(set.is_connected_paper_rule(&cat));
        }
    }

    /// MinSup resolution is monotone in the window size and never below one.
    #[test]
    fn minsup_resolution_is_sane(fraction in 0.0f64..1.0, small in 1usize..500, grow in 0usize..500) {
        let ms = MinSup::relative(fraction);
        let large = small + grow;
        prop_assert!(ms.resolve(small) >= 1);
        prop_assert!(ms.resolve(large) >= ms.resolve(small));
        prop_assert!(ms.resolve(large) <= large as u64);
    }
}
