//! Frequency counting on a single FP-tree by subset enumeration (§3.2).

use std::collections::HashMap;

use fsm_types::{EdgeId, Support};

use crate::growth::{Footprint, MineOutcome};
use crate::tree::FpTree;
use crate::{MiningLimits, ProjectedDb};

/// Mines every frequent itemset of `db` by building **one** FP-tree and, for
/// the first visit of every node, generating the collections of items
/// represented by the node and its path subsets while accumulating their
/// frequencies — the paper's second algorithm.
///
/// For a node labelled `y` with prefix path `P` (the items between the root
/// and `y`, exclusive) and count `c`, every itemset `S ∪ {y}` with `S ⊆ P`
/// receives `c`.  Because canonical order makes `y` the maximum of such an
/// itemset, and nodes sharing a label never lie on the same root path, each
/// transaction contributes exactly once per itemset: the accumulated counts
/// are exact supports.
///
/// Only one tree is ever alive, which is the whole point of the algorithm
/// when memory is limited; the price is the subset enumeration, bounded by
/// `limits.max_pattern_len` on deep trees.
pub fn mine_by_subset_enumeration(
    db: &ProjectedDb,
    minsup: Support,
    limits: MiningLimits,
) -> MineOutcome {
    let minsup = minsup.max(1);
    let tree = FpTree::build(db, minsup);
    let footprint = Footprint {
        trees_built: usize::from(!tree.is_empty()),
        peak_trees: usize::from(!tree.is_empty()),
        peak_tree_bytes: tree.stats().resident_bytes,
    };
    if tree.is_empty() {
        return MineOutcome {
            sets: Vec::new(),
            footprint,
        };
    }

    let mut counts: HashMap<Vec<EdgeId>, Support> = HashMap::new();
    // Depth-first traversal over every node; the path is maintained
    // incrementally so each node is visited exactly once.
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)]; // (node, depth)
    let mut path: Vec<EdgeId> = Vec::new();
    while let Some((node, depth)) = stack.pop() {
        path.truncate(depth.saturating_sub(1));
        if node != 0 {
            let item = tree.nodes()[node].item;
            let count = tree.nodes()[node].count;
            accumulate_subsets(&path, item, count, limits, &mut counts);
            path.push(item);
        }
        for &child in &tree.nodes()[node].children {
            stack.push((child, depth + 1));
        }
    }

    let mut sets: Vec<(Vec<EdgeId>, Support)> = counts
        .into_iter()
        .filter(|(_, support)| *support >= minsup)
        .collect();
    // Canonical order inside each set is already guaranteed (prefix ∪ {item}).
    sets.sort();
    MineOutcome { sets, footprint }
}

/// Adds `count` to every itemset `S ∪ {item}` with `S ⊆ prefix`, respecting
/// the cardinality limit.
fn accumulate_subsets(
    prefix: &[EdgeId],
    item: EdgeId,
    count: Support,
    limits: MiningLimits,
    counts: &mut HashMap<Vec<EdgeId>, Support>,
) {
    fn rec(
        prefix: &[EdgeId],
        start: usize,
        current: &mut Vec<EdgeId>,
        item: EdgeId,
        count: Support,
        limits: MiningLimits,
        counts: &mut HashMap<Vec<EdgeId>, Support>,
    ) {
        let mut set = current.clone();
        set.push(item);
        *counts.entry(set).or_insert(0) += count;

        if !limits.allows(current.len() + 2) {
            return;
        }
        for i in start..prefix.len() {
            current.push(prefix[i]);
            rec(prefix, i + 1, current, item, count, limits, counts);
            current.pop();
        }
    }
    let mut current = Vec::new();
    rec(prefix, 0, &mut current, item, count, limits, counts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort_mined;

    fn ids(raw: &[u32]) -> Vec<EdgeId> {
        raw.iter().copied().map(EdgeId::new).collect()
    }

    fn example_db() -> ProjectedDb {
        vec![
            (ids(&[2, 3, 5]), 1),
            (ids(&[3, 4, 5]), 1),
            (ids(&[1, 2]), 1),
            (ids(&[2, 5]), 1),
            (ids(&[2, 3, 5]), 1),
        ]
    }

    #[test]
    fn reproduces_example_3_frequent_sets_and_supports() {
        // Example 3: {a,c}:4, {a,c,d}:2, {a,c,d,f}:2, {a,c,f}:3, {a,d}:3,
        // {a,d,f}:3, {a,f}:4 — minus the conditioning {a}, i.e. {c}:4 … {f}:4.
        let outcome = mine_by_subset_enumeration(&example_db(), 2, MiningLimits::UNBOUNDED);
        let got = sort_mined(outcome.sets);
        let expected = sort_mined(vec![
            (ids(&[2]), 4),
            (ids(&[2, 3]), 2),
            (ids(&[2, 3, 5]), 2),
            (ids(&[2, 5]), 3),
            (ids(&[3]), 3),
            (ids(&[3, 5]), 3),
            (ids(&[5]), 4),
        ]);
        assert_eq!(got, expected);
    }

    #[test]
    fn only_a_single_tree_is_ever_built() {
        let outcome = mine_by_subset_enumeration(&example_db(), 2, MiningLimits::UNBOUNDED);
        assert_eq!(outcome.footprint.trees_built, 1);
        assert_eq!(outcome.footprint.peak_trees, 1);
    }

    #[test]
    fn agrees_with_recursive_fp_growth_on_example() {
        for minsup in 1..=4 {
            let a = sort_mined(
                crate::growth::mine_recursive(&example_db(), minsup, MiningLimits::UNBOUNDED).sets,
            );
            let b = sort_mined(
                mine_by_subset_enumeration(&example_db(), minsup, MiningLimits::UNBOUNDED).sets,
            );
            assert_eq!(a, b, "minsup {minsup}");
        }
    }

    #[test]
    fn respects_cardinality_limit() {
        let outcome = mine_by_subset_enumeration(&example_db(), 1, MiningLimits::with_max_len(2));
        assert!(outcome.sets.iter().all(|(s, _)| s.len() <= 2));
        // Pairs must still be present.
        assert!(outcome.sets.iter().any(|(s, _)| s.len() == 2));
    }

    #[test]
    fn empty_database_and_high_minsup() {
        assert!(
            mine_by_subset_enumeration(&ProjectedDb::new(), 1, MiningLimits::UNBOUNDED)
                .sets
                .is_empty()
        );
        assert!(
            mine_by_subset_enumeration(&example_db(), 50, MiningLimits::UNBOUNDED)
                .sets
                .is_empty()
        );
    }

    #[test]
    fn weighted_transactions_are_counted_with_their_weights() {
        let db: ProjectedDb = vec![(ids(&[0, 1]), 3), (ids(&[1]), 2)];
        let outcome = mine_by_subset_enumeration(&db, 2, MiningLimits::UNBOUNDED);
        let got = sort_mined(outcome.sets);
        assert_eq!(
            got,
            sort_mined(vec![(ids(&[0]), 3), (ids(&[0, 1]), 3), (ids(&[1]), 5)])
        );
    }
}
