//! The FP-tree structure itself.

use std::collections::BTreeMap;
use std::fmt;

use fsm_types::{EdgeId, Support};

use crate::ProjectedDb;

/// Index of a node inside the arena; the root is always index 0.
pub type NodeIdx = usize;

/// One FP-tree node: an item, its accumulated count and its tree links.
#[derive(Debug, Clone)]
pub struct FpNode {
    /// Item labelling this node (meaningless for the root).
    pub item: EdgeId,
    /// Number of window transactions flowing through this node.
    pub count: Support,
    /// Parent node (the root is its own parent).
    pub parent: NodeIdx,
    /// Children in insertion order.
    pub children: Vec<NodeIdx>,
}

/// Size statistics of a tree, used by the space experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of nodes excluding the root.
    pub nodes: usize,
    /// Depth of the deepest node.
    pub depth: usize,
    /// Estimated resident bytes (nodes, child lists and header links).
    pub resident_bytes: usize,
}

/// An FP-tree over canonical-order transactions.
///
/// Unlike the classic FP-growth presentation, items are *not* reordered by
/// frequency: the paper keeps every structure in a fixed canonical order so
/// that stream updates never cause node merges or splits.  A path from the
/// root therefore visits items in ascending [`EdgeId`] order.
#[derive(Debug, Clone)]
pub struct FpTree {
    nodes: Vec<FpNode>,
    /// Node-links per item (the header table), in canonical order.
    header: BTreeMap<EdgeId, Vec<NodeIdx>>,
    /// Total support per item in this tree.
    item_support: BTreeMap<EdgeId, Support>,
}

impl Default for FpTree {
    fn default() -> Self {
        Self::new()
    }
}

impl FpTree {
    /// Creates an empty tree (just the root sentinel).
    pub fn new() -> Self {
        Self {
            nodes: vec![FpNode {
                item: EdgeId::new(u32::MAX),
                count: 0,
                parent: 0,
                children: Vec::new(),
            }],
            header: BTreeMap::new(),
            item_support: BTreeMap::new(),
        }
    }

    /// Builds a tree from a projected database, keeping only items whose total
    /// support reaches `min_item_support` (pass 0 or 1 to keep everything).
    ///
    /// Pruning locally infrequent items before insertion is what keeps the
    /// conditional trees of FP-growth small; the counts of surviving items are
    /// unaffected because support is anti-monotone.
    pub fn build(db: &ProjectedDb, min_item_support: Support) -> Self {
        let mut totals: BTreeMap<EdgeId, Support> = BTreeMap::new();
        for (items, count) in db {
            for &item in items {
                *totals.entry(item).or_insert(0) += count;
            }
        }
        let mut tree = Self::new();
        let mut filtered: Vec<EdgeId> = Vec::new();
        for (items, count) in db {
            filtered.clear();
            filtered.extend(
                items
                    .iter()
                    .copied()
                    .filter(|i| totals.get(i).copied().unwrap_or(0) >= min_item_support.max(1)),
            );
            if !filtered.is_empty() {
                tree.insert(&filtered, *count);
            }
        }
        tree
    }

    /// Inserts one canonical-order transaction with the given weight.
    pub fn insert(&mut self, items: &[EdgeId], count: Support) {
        if count == 0 || items.is_empty() {
            return;
        }
        let mut current = 0;
        for &item in items {
            let child = self.nodes[current]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].item == item);
            let node = match child {
                Some(existing) => {
                    self.nodes[existing].count += count;
                    existing
                }
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(FpNode {
                        item,
                        count,
                        parent: current,
                        children: Vec::new(),
                    });
                    self.nodes[current].children.push(idx);
                    self.header.entry(item).or_default().push(idx);
                    idx
                }
            };
            *self.item_support.entry(item).or_insert(0) += count;
            current = node;
        }
    }

    /// Returns the node arena (root at index 0).
    pub fn nodes(&self) -> &[FpNode] {
        &self.nodes
    }

    /// Returns the node-link list of `item` (empty if absent).
    pub fn node_links(&self, item: EdgeId) -> &[NodeIdx] {
        self.header.get(&item).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total support of `item` inside this tree.
    pub fn item_support(&self, item: EdgeId) -> Support {
        self.item_support.get(&item).copied().unwrap_or(0)
    }

    /// Items present in the tree, in canonical order, with their supports.
    pub fn items(&self) -> impl Iterator<Item = (EdgeId, Support)> + '_ {
        self.item_support.iter().map(|(&i, &s)| (i, s))
    }

    /// Returns `true` if the tree holds no item nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The path of items from the root down to `node` (exclusive of the root,
    /// inclusive of `node`), in canonical order.
    pub fn path_to(&self, node: NodeIdx) -> Vec<EdgeId> {
        let mut path = Vec::new();
        let mut current = node;
        while current != 0 {
            path.push(self.nodes[current].item);
            current = self.nodes[current].parent;
        }
        path.reverse();
        path
    }

    /// The conditional pattern base of `item`: for every node labelled `item`,
    /// the prefix path above it (excluding `item`) weighted by that node's
    /// count.  This is the input FP-growth uses to build conditional trees.
    pub fn conditional_pattern_base(&self, item: EdgeId) -> ProjectedDb {
        let mut db = ProjectedDb::new();
        for &node in self.node_links(item) {
            let count = self.nodes[node].count;
            let mut prefix = self.path_to(node);
            prefix.pop(); // drop `item` itself
            if !prefix.is_empty() {
                db.push((prefix, count));
            }
        }
        db
    }

    /// Size statistics for memory accounting.
    pub fn stats(&self) -> TreeStats {
        let nodes = self.nodes.len() - 1;
        let mut depth = 0;
        for idx in 1..self.nodes.len() {
            let mut d = 0;
            let mut current = idx;
            while current != 0 {
                d += 1;
                current = self.nodes[current].parent;
            }
            depth = depth.max(d);
        }
        let node_bytes = self.nodes.len() * std::mem::size_of::<FpNode>();
        let child_bytes: usize = self
            .nodes
            .iter()
            .map(|n| n.children.len() * std::mem::size_of::<NodeIdx>())
            .sum();
        let header_bytes: usize = self
            .header
            .values()
            .map(|links| {
                links.len() * std::mem::size_of::<NodeIdx>() + std::mem::size_of::<EdgeId>()
            })
            .sum();
        TreeStats {
            nodes,
            depth,
            resident_bytes: node_bytes + child_bytes + header_bytes,
        }
    }
}

impl fmt::Display for FpTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(
            tree: &FpTree,
            node: NodeIdx,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            if node != 0 {
                writeln!(
                    f,
                    "{}{}:{}",
                    "  ".repeat(depth - 1),
                    tree.nodes[node].item,
                    tree.nodes[node].count
                )?;
            }
            for &child in &tree.nodes[node].children {
                rec(tree, child, depth + 1, f)?;
            }
            Ok(())
        }
        rec(self, 0, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<EdgeId> {
        raw.iter().copied().map(EdgeId::new).collect()
    }

    /// The {a}-projected database of the paper's Example 2:
    /// {c,d,f}, {d,e,f}, {b,c}, {c,f}, {c,d,f}.
    fn example_2_projected_db() -> ProjectedDb {
        vec![
            (ids(&[2, 3, 5]), 1),
            (ids(&[3, 4, 5]), 1),
            (ids(&[1, 2]), 1),
            (ids(&[2, 5]), 1),
            (ids(&[2, 3, 5]), 1),
        ]
    }

    #[test]
    fn empty_tree() {
        let tree = FpTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.stats().nodes, 0);
        assert_eq!(tree.item_support(EdgeId::new(0)), 0);
        assert!(tree.node_links(EdgeId::new(0)).is_empty());
    }

    #[test]
    fn insert_shares_prefixes() {
        let mut tree = FpTree::new();
        tree.insert(&ids(&[2, 3, 5]), 1);
        tree.insert(&ids(&[2, 3]), 2);
        tree.insert(&ids(&[2, 5]), 1);
        // Nodes: c (shared), d, f, f — four item nodes.
        assert_eq!(tree.stats().nodes, 4);
        assert_eq!(tree.item_support(EdgeId::new(2)), 4);
        assert_eq!(tree.item_support(EdgeId::new(3)), 3);
        assert_eq!(tree.item_support(EdgeId::new(5)), 2);
        assert_eq!(tree.node_links(EdgeId::new(5)).len(), 2);
    }

    #[test]
    fn zero_count_and_empty_transactions_are_ignored() {
        let mut tree = FpTree::new();
        tree.insert(&ids(&[1, 2]), 0);
        tree.insert(&[], 5);
        assert!(tree.is_empty());
    }

    #[test]
    fn build_matches_paper_example_3_item_supports() {
        // The FP-tree for the {a}-projected database of Example 3 carries the
        // item supports c:4, f:4, d:3, b:1, e:1.  (The paper draws the local
        // tree in frequency order; we keep canonical order throughout — the
        // shape differs, the supports and the mined results do not.)
        let tree = FpTree::build(&example_2_projected_db(), 1);
        assert_eq!(tree.item_support(EdgeId::new(2)), 4, "support of c");
        assert_eq!(tree.item_support(EdgeId::new(5)), 4, "support of f");
        assert_eq!(tree.item_support(EdgeId::new(3)), 3, "support of d");
        assert_eq!(tree.item_support(EdgeId::new(1)), 1, "support of b");
        assert_eq!(tree.item_support(EdgeId::new(4)), 1, "support of e");
        // In canonical order c heads two branches (under the root and under b)
        // and the shared c,d,f prefix carries weight 2.
        assert_eq!(tree.node_links(EdgeId::new(2)).len(), 2);
        let rendered = tree.to_string();
        assert!(rendered.contains("c:3"), "tree was:\n{rendered}");
        assert!(rendered.contains("d:2"), "tree was:\n{rendered}");
        assert!(rendered.contains("b:1"), "tree was:\n{rendered}");
    }

    #[test]
    fn build_prunes_locally_infrequent_items() {
        let tree = FpTree::build(&example_2_projected_db(), 2);
        // b occurs once only; with min item support 2 it disappears.
        assert_eq!(tree.item_support(EdgeId::new(1)), 0);
        assert!(tree.node_links(EdgeId::new(1)).is_empty());
        // The others keep their counts.
        assert_eq!(tree.item_support(EdgeId::new(2)), 4);
    }

    #[test]
    fn conditional_pattern_base_collects_weighted_prefixes() {
        let tree = FpTree::build(&example_2_projected_db(), 1);
        // In canonical order, f sits below ⟨c,d⟩ (weight 2), below ⟨c⟩
        // (weight 1) and below ⟨d,e⟩ (weight 1).
        let mut base = tree.conditional_pattern_base(EdgeId::new(5));
        base.sort();
        assert_eq!(
            base,
            vec![(ids(&[2]), 1), (ids(&[2, 3]), 2), (ids(&[3, 4]), 1)],
        );
        // Prefix paths of b: none (b sits directly under the root).
        assert!(tree.conditional_pattern_base(EdgeId::new(1)).is_empty());
    }

    #[test]
    fn path_to_returns_canonical_order() {
        let tree = FpTree::build(&example_2_projected_db(), 1);
        let d_nodes = tree.node_links(EdgeId::new(3));
        let paths: Vec<Vec<EdgeId>> = d_nodes.iter().map(|&n| tree.path_to(n)).collect();
        assert!(!paths.is_empty());
        for path in paths {
            assert_eq!(*path.last().unwrap(), EdgeId::new(3));
            for pair in path.windows(2) {
                assert!(pair[0] < pair[1], "paths are strictly ascending");
            }
        }
    }

    #[test]
    fn stats_report_nodes_depth_and_bytes() {
        let tree = FpTree::build(&example_2_projected_db(), 1);
        let stats = tree.stats();
        assert!(stats.nodes >= 6);
        assert!(stats.depth >= 3);
        assert!(stats.resident_bytes > 0);
    }
}
