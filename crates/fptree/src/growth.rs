//! Bottom-up recursive FP-growth (the multi-tree strategy of §3.1).

use fsm_types::{EdgeId, Support};

use crate::tree::FpTree;
use crate::{MinedSet, MiningLimits, ProjectedDb};

/// Resource footprint of one mining run, used by the space experiment to
/// reproduce the paper's "at most k trees vs a single tree" comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Total number of FP-trees constructed.
    pub trees_built: usize,
    /// Maximum number of FP-trees alive at the same time.
    pub peak_trees: usize,
    /// Maximum number of bytes held by simultaneously alive FP-trees.
    pub peak_tree_bytes: usize,
}

impl Footprint {
    /// Merges another footprint taken sequentially after this one (peaks are
    /// maxima, totals add).
    pub fn merge_sequential(&mut self, other: &Footprint) {
        self.trees_built += other.trees_built;
        self.peak_trees = self.peak_trees.max(other.peak_trees);
        self.peak_tree_bytes = self.peak_tree_bytes.max(other.peak_tree_bytes);
    }
}

/// The result of a mining run: the frequent itemsets found in the projected
/// database plus the tree footprint it took to find them.
#[derive(Debug, Clone, Default)]
pub struct MineOutcome {
    /// Frequent itemsets with their supports, in no particular order.
    pub sets: Vec<MinedSet>,
    /// Tree-construction footprint.
    pub footprint: Footprint,
}

struct RecursionState {
    minsup: Support,
    limits: MiningLimits,
    sets: Vec<MinedSet>,
    footprint: Footprint,
    live_trees: usize,
    live_bytes: usize,
}

impl RecursionState {
    fn tree_built(&mut self, bytes: usize) {
        self.footprint.trees_built += 1;
        self.live_trees += 1;
        self.live_bytes += bytes;
        self.footprint.peak_trees = self.footprint.peak_trees.max(self.live_trees);
        self.footprint.peak_tree_bytes = self.footprint.peak_tree_bytes.max(self.live_bytes);
    }

    fn tree_dropped(&mut self, bytes: usize) {
        self.live_trees -= 1;
        self.live_bytes -= bytes;
    }
}

/// Mines every frequent itemset of `db` by recursively building conditional
/// FP-trees, exactly as the paper's first algorithm does for each projected
/// database extracted from the DSMatrix.
///
/// Returned itemsets are in canonical order and do **not** include the
/// conditioning prefix of `db` — the caller composes them with whatever the
/// database was projected on.
pub fn mine_recursive(db: &ProjectedDb, minsup: Support, limits: MiningLimits) -> MineOutcome {
    let mut state = RecursionState {
        minsup: minsup.max(1),
        limits,
        sets: Vec::new(),
        footprint: Footprint::default(),
        live_trees: 0,
        live_bytes: 0,
    };
    mine_db(db, &mut state, &[]);
    MineOutcome {
        sets: std::mem::take(&mut state.sets),
        footprint: state.footprint,
    }
}

fn mine_db(db: &ProjectedDb, state: &mut RecursionState, suffix: &[EdgeId]) {
    if db.is_empty() || !state.limits.allows(suffix.len() + 1) {
        return;
    }
    let tree = FpTree::build(db, state.minsup);
    let bytes = tree.stats().resident_bytes;
    state.tree_built(bytes);

    // Items are processed in reverse canonical order (bottom-up): every
    // frequent item extends the suffix, and its conditional pattern base
    // (which only contains smaller items) is mined recursively.
    let items: Vec<(EdgeId, Support)> = tree.items().collect();
    for &(item, support) in items.iter().rev() {
        if support < state.minsup {
            continue;
        }
        let mut found = Vec::with_capacity(suffix.len() + 1);
        found.push(item);
        found.extend_from_slice(suffix);
        state.sets.push((found.clone(), support));

        if state.limits.allows(found.len() + 1) {
            let conditional = tree.conditional_pattern_base(item);
            if !conditional.is_empty() {
                mine_db(&conditional, state, &found);
            }
        }
    }

    state.tree_dropped(bytes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort_mined;

    fn ids(raw: &[u32]) -> Vec<EdgeId> {
        raw.iter().copied().map(EdgeId::new).collect()
    }

    /// {a}-projected database of the paper's Example 2.
    fn example_db() -> ProjectedDb {
        vec![
            (ids(&[2, 3, 5]), 1),
            (ids(&[3, 4, 5]), 1),
            (ids(&[1, 2]), 1),
            (ids(&[2, 5]), 1),
            (ids(&[2, 3, 5]), 1),
        ]
    }

    #[test]
    fn reproduces_example_2_frequent_sets() {
        // With minsup 2 the paper finds, inside the {a}-projected database:
        // {c}:4, {c,d}:2, {c,d,f}:2, {c,f}:3, {d}:3, {d,f}:3, {f}:4.
        let outcome = mine_recursive(&example_db(), 2, MiningLimits::UNBOUNDED);
        let got = sort_mined(outcome.sets);
        let expected = sort_mined(vec![
            (ids(&[2]), 4),
            (ids(&[2, 3]), 2),
            (ids(&[2, 3, 5]), 2),
            (ids(&[2, 5]), 3),
            (ids(&[3]), 3),
            (ids(&[3, 5]), 3),
            (ids(&[5]), 4),
        ]);
        assert_eq!(got, expected);
    }

    #[test]
    fn footprint_counts_multiple_simultaneous_trees() {
        let outcome = mine_recursive(&example_db(), 2, MiningLimits::UNBOUNDED);
        assert!(outcome.footprint.trees_built >= 3);
        assert!(
            outcome.footprint.peak_trees >= 2,
            "recursive mining keeps conditional trees alive alongside their parent"
        );
        assert!(outcome.footprint.peak_tree_bytes > 0);
    }

    #[test]
    fn minsup_one_returns_every_itemset() {
        let db: ProjectedDb = vec![(ids(&[0, 1]), 1), (ids(&[0]), 1)];
        let outcome = mine_recursive(&db, 1, MiningLimits::UNBOUNDED);
        let got = sort_mined(outcome.sets);
        assert_eq!(
            got,
            sort_mined(vec![(ids(&[0]), 2), (ids(&[0, 1]), 1), (ids(&[1]), 1)])
        );
    }

    #[test]
    fn max_len_limits_pattern_cardinality() {
        let outcome = mine_recursive(&example_db(), 2, MiningLimits::with_max_len(2));
        assert!(outcome.sets.iter().all(|(s, _)| s.len() <= 2));
        assert!(outcome.sets.iter().any(|(s, _)| s.len() == 2));
    }

    #[test]
    fn empty_database_yields_nothing() {
        let outcome = mine_recursive(&ProjectedDb::new(), 2, MiningLimits::UNBOUNDED);
        assert!(outcome.sets.is_empty());
        assert_eq!(outcome.footprint.trees_built, 0);
    }

    #[test]
    fn high_minsup_filters_everything() {
        let outcome = mine_recursive(&example_db(), 100, MiningLimits::UNBOUNDED);
        assert!(outcome.sets.is_empty());
    }

    #[test]
    fn merge_sequential_combines_footprints() {
        let mut a = Footprint {
            trees_built: 2,
            peak_trees: 2,
            peak_tree_bytes: 100,
        };
        let b = Footprint {
            trees_built: 3,
            peak_trees: 1,
            peak_tree_bytes: 400,
        };
        a.merge_sequential(&b);
        assert_eq!(a.trees_built, 5);
        assert_eq!(a.peak_trees, 2);
        assert_eq!(a.peak_tree_bytes, 400);
    }
}
