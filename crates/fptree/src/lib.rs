//! FP-tree substrate: the in-memory prefix-tree machinery shared by the
//! horizontal mining algorithms.
//!
//! Three genuinely different mining strategies over the same [`FpTree`]
//! structure are provided, matching the three horizontal algorithms of the
//! paper:
//!
//! * [`growth::mine_recursive`] — classic bottom-up FP-growth that builds a
//!   conditional FP-tree per extension (the paper's first algorithm, §3.1,
//!   keeps *multiple* trees alive at once);
//! * [`subsets::mine_by_subset_enumeration`] — builds a single tree and counts
//!   every node's path subsets during one depth-first traversal (the paper's
//!   second algorithm, §3.2);
//! * [`topdown::mine_top_down`] — builds a single tree and mines it top-down
//!   by recursing over descendant node groups instead of conditional pattern
//!   bases (the paper's third algorithm, §3.3, in the spirit of
//!   TD-FP-growth).
//!
//! All strategies operate on a *projected database*: a weighted list of
//! transactions in canonical edge order.  They return identical frequent
//! itemsets — a fact the integration and property tests assert — while
//! differing in how many trees they materialise, which is precisely what the
//! paper's space experiment measures.
//!
//! # Entry points and threading
//!
//! The strategies are pure functions `(&ProjectedDb, Support, MiningLimits)
//! -> MineOutcome` with no shared mutable state, which is what lets
//! `fsm_core::miners::horizontal` call them from parallel workers (one
//! projected database per pivot edge) under the engine-wide `threads`
//! contract: any worker count, byte-identical results.  This crate itself
//! spawns no threads; keep new strategies pure the same way.  Each
//! [`growth::MineOutcome`] carries the [`growth::Footprint`] (trees built /
//! alive / peak bytes) that the space experiment aggregates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod growth;
pub mod subsets;
pub mod topdown;
pub mod tree;

pub use growth::mine_recursive;
pub use subsets::mine_by_subset_enumeration;
pub use topdown::mine_top_down;
pub use tree::{FpTree, TreeStats};

use fsm_types::{EdgeId, Support};

/// A weighted transaction list: each entry is a canonical-order item list and
/// the number of window transactions it represents.
pub type ProjectedDb = Vec<(Vec<EdgeId>, Support)>;

/// A frequent itemset discovered inside a projected database, together with
/// its support.  Item lists are kept in canonical (ascending) order.
pub type MinedSet = (Vec<EdgeId>, Support);

/// Limits applied during mining.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MiningLimits {
    /// Maximum pattern cardinality to enumerate (`None` = unbounded).
    ///
    /// The subset-enumeration strategy is exponential in the tree depth; on
    /// dense workloads (connect4-like) the harness caps the pattern length the
    /// same way for every algorithm so comparisons stay apples-to-apples.
    pub max_pattern_len: Option<usize>,
}

impl MiningLimits {
    /// No limits: enumerate every frequent itemset.
    pub const UNBOUNDED: MiningLimits = MiningLimits {
        max_pattern_len: None,
    };

    /// Caps the pattern cardinality.
    pub fn with_max_len(max_pattern_len: usize) -> Self {
        Self {
            max_pattern_len: Some(max_pattern_len),
        }
    }

    /// Returns `true` if a pattern of `len` items may still be extended.
    #[inline]
    pub fn allows(&self, len: usize) -> bool {
        match self.max_pattern_len {
            Some(max) => len <= max,
            None => true,
        }
    }
}

/// Sorts mined itemsets canonically (by item list, then support) so results
/// from different strategies can be compared verbatim.
pub fn sort_mined(mut sets: Vec<MinedSet>) -> Vec<MinedSet> {
    sets.sort();
    sets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_allow_checks_cardinality() {
        assert!(MiningLimits::UNBOUNDED.allows(100));
        let capped = MiningLimits::with_max_len(3);
        assert!(capped.allows(3));
        assert!(!capped.allows(4));
    }

    #[test]
    fn sort_mined_orders_canonically() {
        let sets = vec![
            (vec![EdgeId::new(1)], 5),
            (vec![EdgeId::new(0), EdgeId::new(2)], 3),
            (vec![EdgeId::new(0)], 7),
        ];
        let sorted = sort_mined(sets);
        assert_eq!(sorted[0].0, vec![EdgeId::new(0)]);
        assert_eq!(sorted[1].0, vec![EdgeId::new(0), EdgeId::new(2)]);
        assert_eq!(sorted[2].0, vec![EdgeId::new(1)]);
    }
}
