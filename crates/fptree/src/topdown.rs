//! Top-down mining of a single FP-tree (§3.3).

use std::collections::BTreeMap;

use fsm_types::{EdgeId, Support};

use crate::growth::{Footprint, MineOutcome};
use crate::tree::{FpTree, NodeIdx};
use crate::{MiningLimits, ProjectedDb};

/// Mines every frequent itemset of `db` by building **one** FP-tree and
/// recursing top-down over groups of descendant nodes, in the spirit of
/// TD-FP-growth — the paper's third algorithm.
///
/// Where bottom-up FP-growth extends a suffix by walking *up* prefix paths and
/// materialising a conditional tree per extension, the top-down strategy
/// extends a prefix by walking *down*: the frequent itemset `P ∪ {y}` is
/// supported by exactly the `y`-labelled nodes lying below the nodes that
/// support `P` (canonical order makes every later item a descendant).  No
/// additional tree is ever constructed; the recursion only carries lists of
/// node indices.
pub fn mine_top_down(db: &ProjectedDb, minsup: Support, limits: MiningLimits) -> MineOutcome {
    let minsup = minsup.max(1);
    let tree = FpTree::build(db, minsup);
    let footprint = Footprint {
        trees_built: usize::from(!tree.is_empty()),
        peak_trees: usize::from(!tree.is_empty()),
        peak_tree_bytes: tree.stats().resident_bytes,
    };
    if tree.is_empty() {
        return MineOutcome {
            sets: Vec::new(),
            footprint,
        };
    }

    let mut sets = Vec::new();
    let mut prefix = Vec::new();
    recurse(&tree, &[0], &mut prefix, minsup, limits, &mut sets);
    sets.sort();
    MineOutcome { sets, footprint }
}

/// For each item occurring strictly below the nodes of `group`, accumulate its
/// total count and its node list; recurse on the frequent ones.
fn recurse(
    tree: &FpTree,
    group: &[NodeIdx],
    prefix: &mut Vec<EdgeId>,
    minsup: Support,
    limits: MiningLimits,
    sets: &mut Vec<(Vec<EdgeId>, Support)>,
) {
    if !limits.allows(prefix.len() + 1) {
        return;
    }
    // Gather, per item, the descendant nodes of the current group.  Nodes of
    // the same item never nest (items strictly ascend along a path), so each
    // supporting transaction is counted exactly once.
    let mut by_item: BTreeMap<EdgeId, (Support, Vec<NodeIdx>)> = BTreeMap::new();
    for &node in group {
        collect_descendants(tree, node, &mut by_item);
    }

    for (item, (support, nodes)) in by_item {
        if support < minsup {
            continue;
        }
        prefix.push(item);
        sets.push((prefix.clone(), support));
        recurse(tree, &nodes, prefix, minsup, limits, sets);
        prefix.pop();
    }
}

fn collect_descendants(
    tree: &FpTree,
    node: NodeIdx,
    by_item: &mut BTreeMap<EdgeId, (Support, Vec<NodeIdx>)>,
) {
    for &child in &tree.nodes()[node].children {
        let entry = by_item
            .entry(tree.nodes()[child].item)
            .or_insert((0, Vec::new()));
        entry.0 += tree.nodes()[child].count;
        entry.1.push(child);
        collect_descendants(tree, child, by_item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort_mined;

    fn ids(raw: &[u32]) -> Vec<EdgeId> {
        raw.iter().copied().map(EdgeId::new).collect()
    }

    fn example_db() -> ProjectedDb {
        vec![
            (ids(&[2, 3, 5]), 1),
            (ids(&[3, 4, 5]), 1),
            (ids(&[1, 2]), 1),
            (ids(&[2, 5]), 1),
            (ids(&[2, 3, 5]), 1),
        ]
    }

    #[test]
    fn reproduces_example_4_results() {
        // Example 4: the top-down algorithm finds the same collections as
        // Examples 2 and 3.
        let outcome = mine_top_down(&example_db(), 2, MiningLimits::UNBOUNDED);
        let got = sort_mined(outcome.sets);
        let expected = sort_mined(vec![
            (ids(&[2]), 4),
            (ids(&[2, 3]), 2),
            (ids(&[2, 3, 5]), 2),
            (ids(&[2, 5]), 3),
            (ids(&[3]), 3),
            (ids(&[3, 5]), 3),
            (ids(&[5]), 4),
        ]);
        assert_eq!(got, expected);
    }

    #[test]
    fn single_tree_footprint() {
        let outcome = mine_top_down(&example_db(), 2, MiningLimits::UNBOUNDED);
        assert_eq!(outcome.footprint.trees_built, 1);
        assert_eq!(outcome.footprint.peak_trees, 1);
        assert!(outcome.footprint.peak_tree_bytes > 0);
    }

    #[test]
    fn agrees_with_both_other_strategies() {
        for minsup in 1..=4 {
            let limits = MiningLimits::UNBOUNDED;
            let recursive =
                sort_mined(crate::growth::mine_recursive(&example_db(), minsup, limits).sets);
            let subsets = sort_mined(
                crate::subsets::mine_by_subset_enumeration(&example_db(), minsup, limits).sets,
            );
            let topdown = sort_mined(mine_top_down(&example_db(), minsup, limits).sets);
            assert_eq!(recursive, topdown, "minsup {minsup}");
            assert_eq!(subsets, topdown, "minsup {minsup}");
        }
    }

    #[test]
    fn respects_cardinality_limit() {
        let outcome = mine_top_down(&example_db(), 1, MiningLimits::with_max_len(1));
        assert!(outcome.sets.iter().all(|(s, _)| s.len() == 1));
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(
            mine_top_down(&ProjectedDb::new(), 1, MiningLimits::UNBOUNDED)
                .sets
                .is_empty()
        );
        let single: ProjectedDb = vec![(ids(&[7]), 4)];
        let outcome = mine_top_down(&single, 2, MiningLimits::UNBOUNDED);
        assert_eq!(outcome.sets, vec![(ids(&[7]), 4)]);
    }
}
