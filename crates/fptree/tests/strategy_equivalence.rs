//! Property tests: the three FP-tree mining strategies agree with each other
//! and with a brute-force Apriori-style oracle on random projected databases.

use std::collections::BTreeMap;

use fsm_fptree::{
    mine_by_subset_enumeration, mine_recursive, mine_top_down, sort_mined, MinedSet, MiningLimits,
    ProjectedDb,
};
use fsm_types::{EdgeId, Support};
use proptest::prelude::*;

/// Enumerates every frequent itemset by explicit subset counting.
fn oracle(db: &ProjectedDb, minsup: Support) -> Vec<MinedSet> {
    // Collect the distinct items.
    let mut items: Vec<EdgeId> = db.iter().flat_map(|(t, _)| t.iter().copied()).collect();
    items.sort_unstable();
    items.dedup();

    let mut results: BTreeMap<Vec<EdgeId>, Support> = BTreeMap::new();
    // Iterate over all non-empty subsets of `items` (the tests keep the domain
    // tiny, so 2^|items| stays manageable).
    let n = items.len();
    for mask in 1u32..(1u32 << n) {
        let subset: Vec<EdgeId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| items[i])
            .collect();
        let support: Support = db
            .iter()
            .filter(|(t, _)| subset.iter().all(|e| t.contains(e)))
            .map(|(_, c)| *c)
            .sum();
        if support >= minsup {
            results.insert(subset, support);
        }
    }
    results.into_iter().collect()
}

fn arb_db() -> impl Strategy<Value = ProjectedDb> {
    proptest::collection::vec(
        (proptest::collection::btree_set(0u32..8, 0..6), 1u64..3),
        0..12,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(items, count)| (items.into_iter().map(EdgeId::new).collect(), count))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All three strategies return exactly the oracle's frequent itemsets.
    #[test]
    fn strategies_match_oracle(db in arb_db(), minsup in 1u64..4) {
        let expected = sort_mined(oracle(&db, minsup));
        let limits = MiningLimits::UNBOUNDED;
        let recursive = sort_mined(mine_recursive(&db, minsup, limits).sets);
        let subsets = sort_mined(mine_by_subset_enumeration(&db, minsup, limits).sets);
        let topdown = sort_mined(mine_top_down(&db, minsup, limits).sets);
        prop_assert_eq!(&recursive, &expected, "recursive vs oracle");
        prop_assert_eq!(&subsets, &expected, "subset-enumeration vs oracle");
        prop_assert_eq!(&topdown, &expected, "top-down vs oracle");
    }

    /// Support is anti-monotone in every strategy's output: a superset never
    /// has larger support than its subsets.
    #[test]
    fn support_is_anti_monotone(db in arb_db(), minsup in 1u64..3) {
        let sets = sort_mined(mine_recursive(&db, minsup, MiningLimits::UNBOUNDED).sets);
        for (items_a, support_a) in &sets {
            for (items_b, support_b) in &sets {
                let a_subset_of_b =
                    items_a.iter().all(|x| items_b.contains(x)) && items_a.len() < items_b.len();
                if a_subset_of_b {
                    prop_assert!(support_a >= support_b);
                }
            }
        }
    }

    /// A cardinality cap returns exactly the uncapped result filtered by size.
    #[test]
    fn cardinality_cap_is_a_filter(db in arb_db(), minsup in 1u64..3, cap in 1usize..4) {
        let unbounded = sort_mined(mine_top_down(&db, minsup, MiningLimits::UNBOUNDED).sets);
        let capped = sort_mined(mine_top_down(&db, minsup, MiningLimits::with_max_len(cap)).sets);
        let filtered: Vec<MinedSet> = unbounded
            .into_iter()
            .filter(|(s, _)| s.len() <= cap)
            .collect();
        prop_assert_eq!(capped, filtered);
    }
}
