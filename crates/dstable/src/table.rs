//! DSTable implementation.

use std::collections::BTreeMap;

use fsm_fptree::ProjectedDb;
use fsm_storage::{RowStore, StorageBackend};
use fsm_stream::{SlideOutcome, SlidingWindow, WindowConfig};
use fsm_types::{Batch, EdgeId, FsmError, Result, Support};

/// Construction options for a [`DsTable`].
#[derive(Debug, Clone, Default)]
pub struct DsTableConfig {
    /// Sliding-window configuration (`w` batches).
    pub window: WindowConfig,
    /// Where the entry rows are stored.
    pub backend: StorageBackend,
    /// Expected number of domain items (rows).
    pub expected_edges: usize,
}

/// One table entry: the location of the entry for the next item of the same
/// transaction, or `None` for the transaction's last item.
type Entry = Option<(u32, u32)>;

const ENTRY_BYTES: usize = 8;
const NONE_ROW: u32 = u32::MAX;

fn encode_row(entries: &[Entry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * ENTRY_BYTES);
    for entry in entries {
        let (row, col) = entry.unwrap_or((NONE_ROW, 0));
        out.extend_from_slice(&row.to_le_bytes());
        out.extend_from_slice(&col.to_le_bytes());
    }
    out
}

fn decode_row(bytes: &[u8]) -> Result<Vec<Entry>> {
    if !bytes.len().is_multiple_of(ENTRY_BYTES) {
        return Err(FsmError::corrupt("DSTable row has a truncated entry"));
    }
    Ok(bytes
        .chunks_exact(ENTRY_BYTES)
        .map(|chunk| {
            let row = u32::from_le_bytes(chunk[..4].try_into().expect("4 bytes"));
            let col = u32::from_le_bytes(chunk[4..].try_into().expect("4 bytes"));
            if row == NONE_ROW {
                None
            } else {
                Some((row, col))
            }
        })
        .collect())
}

/// The Data Stream Table of the paper (§2.2).
pub struct DsTable {
    rows: RowStore,
    /// Per-row cumulative batch boundaries — the `m × w` values the paper
    /// calls out as the DSTable's bookkeeping overhead.
    boundaries: Vec<Vec<usize>>,
    window: SlidingWindow,
    num_items: usize,
}

impl DsTable {
    /// Creates an empty table.
    pub fn new(config: DsTableConfig) -> Result<Self> {
        Ok(Self {
            rows: RowStore::open(config.backend)?,
            boundaries: vec![Vec::new(); config.expected_edges],
            window: SlidingWindow::new(config.window),
            num_items: config.expected_edges,
        })
    }

    /// Number of rows (domain items).
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of transactions in the window.
    pub fn num_transactions(&self) -> usize {
        self.window.total_transactions()
    }

    /// Number of batches currently inside the window.
    pub fn num_batches(&self) -> usize {
        self.window.num_batches()
    }

    /// Returns `true` if the entry rows are spilled to disk.
    pub fn is_disk_backed(&self) -> bool {
        !self.rows.is_memory_resident()
    }

    /// Ingests one batch, sliding the window if it is full.
    pub fn ingest_batch(&mut self, batch: &Batch) -> Result<SlideOutcome> {
        let outcome = self.window.push(batch.id, batch.len());

        // Grow the domain if needed.
        let max_edge = batch
            .iter()
            .flat_map(|t| t.iter())
            .map(|e| e.index() + 1)
            .max()
            .unwrap_or(0);
        if max_edge > self.num_items {
            self.num_items = max_edge;
            self.boundaries.resize(self.num_items, Vec::new());
        }

        // Load every row into memory for the update.
        let mut rows: Vec<Vec<Entry>> = Vec::with_capacity(self.num_items);
        for idx in 0..self.num_items {
            rows.push(self.load_row(idx)?);
        }

        // Evict the oldest batch if the window slid: drop each row's leading
        // entries and shift every surviving pointer's column by the number of
        // entries dropped from its target row.
        if outcome.evicted.is_some() {
            let dropped: Vec<usize> = (0..self.num_items)
                .map(|idx| self.boundaries[idx].first().copied().unwrap_or(0))
                .collect();
            for (idx, row) in rows.iter_mut().enumerate() {
                row.drain(..dropped[idx].min(row.len()));
                for (r, c) in row.iter_mut().flatten() {
                    let shift = dropped[*r as usize] as u32;
                    *c -= shift;
                }
            }
            for bounds in &mut self.boundaries {
                let first = bounds.first().copied().unwrap_or(0);
                bounds.remove(0);
                for b in bounds.iter_mut() {
                    *b -= first;
                }
            }
        }

        // Append the new batch's transactions.
        for transaction in batch.iter() {
            let items = transaction.edges();
            if items.is_empty() {
                continue;
            }
            // Entry positions: each item's entry lands at the current end of
            // its row.
            let positions: Vec<u32> = items.iter().map(|e| rows[e.index()].len() as u32).collect();
            for (i, &item) in items.iter().enumerate() {
                let next = if i + 1 < items.len() {
                    Some((items[i + 1].0, positions[i + 1]))
                } else {
                    None
                };
                rows[item.index()].push(next);
            }
        }

        // Record the new per-row boundary (cumulative entry count).
        for (idx, row) in rows.iter().enumerate() {
            self.boundaries[idx].push(row.len());
        }

        // Persist.
        let encoded: Vec<Vec<u8>> = rows.iter().map(|r| encode_row(r)).collect();
        self.rows
            .rewrite_all(encoded.iter().enumerate().map(|(i, r)| (i, r.as_slice())))?;
        Ok(outcome)
    }

    /// Support of an item: the number of entries in its row.
    pub fn support(&mut self, item: EdgeId) -> Result<Support> {
        if item.index() >= self.num_items {
            return Ok(0);
        }
        Ok(self.load_row(item.index())?.len() as Support)
    }

    /// Supports of every item in canonical order.
    pub fn singleton_supports(&mut self) -> Result<Vec<(EdgeId, Support)>> {
        (0..self.num_items)
            .map(|idx| {
                let item = EdgeId::new(idx as u32);
                self.support(item).map(|s| (item, s))
            })
            .collect()
    }

    /// Builds the `{pivot}`-projected database by following each pivot entry's
    /// pointer chain ("extract relevant transactions from the DSTable").
    pub fn project(&mut self, pivot: EdgeId) -> Result<ProjectedDb> {
        if pivot.index() >= self.num_items {
            return Ok(ProjectedDb::new());
        }
        let pivot_row = self.load_row(pivot.index())?;
        // Cache rows already pulled from disk while chasing pointers.
        let mut cache: BTreeMap<u32, Vec<Entry>> = BTreeMap::new();
        let mut suffixes: Vec<Vec<EdgeId>> = Vec::new();
        for entry in &pivot_row {
            let mut suffix = Vec::new();
            let mut cursor = *entry;
            while let Some((row, col)) = cursor {
                suffix.push(EdgeId::new(row));
                if let std::collections::btree_map::Entry::Vacant(e) = cache.entry(row) {
                    let loaded = self.load_row(row as usize)?;
                    e.insert(loaded);
                }
                let row_entries = &cache[&row];
                cursor = *row_entries.get(col as usize).ok_or_else(|| {
                    FsmError::corrupt(format!(
                        "dangling DSTable pointer to row {row} column {col}"
                    ))
                })?;
            }
            if !suffix.is_empty() {
                suffixes.push(suffix);
            }
        }
        // Merge identical suffixes into weighted entries.
        suffixes.sort();
        let mut merged = ProjectedDb::new();
        for suffix in suffixes {
            match merged.last_mut() {
                Some((prev, count)) if *prev == suffix => *count += 1,
                _ => merged.push((suffix, 1)),
            }
        }
        Ok(merged)
    }

    /// Bytes resident in memory: the `m × w` boundary values plus window
    /// bookkeeping plus (for the memory backend) the entry payloads.
    pub fn resident_bytes(&self) -> usize {
        let boundary_bytes: usize = self
            .boundaries
            .iter()
            .map(|b| b.len() * std::mem::size_of::<usize>())
            .sum();
        let bookkeeping = self.window.num_batches() * std::mem::size_of::<(u64, usize)>();
        boundary_bytes + bookkeeping + self.rows.resident_bytes()
    }

    /// Bytes on disk (zero for the memory backend).
    pub fn on_disk_bytes(&self) -> u64 {
        self.rows.on_disk_bytes()
    }

    fn load_row(&mut self, idx: usize) -> Result<Vec<Entry>> {
        if !self.rows.contains_row(idx) {
            return Ok(Vec::new());
        }
        decode_row(&self.rows.get_row(idx)?)
    }
}

impl std::fmt::Debug for DsTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsTable")
            .field("items", &self.num_items)
            .field("transactions", &self.num_transactions())
            .field("batches", &self.num_batches())
            .field("disk_backed", &self.is_disk_backed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_types::Transaction;

    fn paper_batches() -> Vec<Batch> {
        let e = |raw: &[u32]| Transaction::from_raw(raw.iter().copied());
        vec![
            Batch::from_transactions(0, vec![e(&[2, 3, 5]), e(&[0, 4, 5]), e(&[0, 2, 5])]),
            Batch::from_transactions(1, vec![e(&[0, 2, 3, 5]), e(&[0, 3, 4, 5]), e(&[0, 1, 2])]),
            Batch::from_transactions(2, vec![e(&[0, 2, 5]), e(&[0, 2, 3, 5]), e(&[1, 2, 3])]),
        ]
    }

    fn table(backend: StorageBackend, w: usize) -> DsTable {
        DsTable::new(DsTableConfig {
            window: WindowConfig::new(w).unwrap(),
            backend,
            expected_edges: 6,
        })
        .unwrap()
    }

    #[test]
    fn supports_match_example_5_after_slide() {
        for backend in [StorageBackend::Memory, StorageBackend::DiskTemp] {
            let mut t = table(backend, 2);
            for batch in paper_batches() {
                t.ingest_batch(&batch).unwrap();
            }
            let supports = t.singleton_supports().unwrap();
            let expected = [5u64, 2, 5, 4, 1, 4];
            for (idx, &want) in expected.iter().enumerate() {
                assert_eq!(supports[idx].1, want, "support of item {idx}");
            }
            assert_eq!(t.num_transactions(), 6);
        }
    }

    #[test]
    fn projection_matches_example_2() {
        let mut t = table(StorageBackend::Memory, 2);
        for batch in paper_batches() {
            t.ingest_batch(&batch).unwrap();
        }
        let db = t.project(EdgeId::new(0)).unwrap();
        let as_strings: Vec<(String, Support)> = db
            .iter()
            .map(|(items, c)| (items.iter().map(|e| e.symbol()).collect::<String>(), *c))
            .collect();
        assert!(as_strings.contains(&("cdf".to_string(), 2)));
        assert!(as_strings.contains(&("def".to_string(), 1)));
        assert!(as_strings.contains(&("bc".to_string(), 1)));
        assert!(as_strings.contains(&("cf".to_string(), 1)));
        let total: Support = db.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5);

        let db_b = t.project(EdgeId::new(1)).unwrap();
        let as_strings: Vec<(String, Support)> = db_b
            .iter()
            .map(|(items, c)| (items.iter().map(|e| e.symbol()).collect::<String>(), *c))
            .collect();
        assert_eq!(as_strings.len(), 2);
        assert!(as_strings.contains(&("c".to_string(), 1)));
        assert!(as_strings.contains(&("cd".to_string(), 1)));

        // The largest item has no suffix.
        assert!(t.project(EdgeId::new(5)).unwrap().is_empty());
        // Unknown items project to nothing.
        assert!(t.project(EdgeId::new(99)).unwrap().is_empty());
    }

    #[test]
    fn pointer_chains_survive_window_slides() {
        // Slide several times with a tiny window and verify the chains still
        // resolve (no dangling pointers) and supports stay correct.
        let mut t = table(StorageBackend::Memory, 1);
        for batch in paper_batches() {
            t.ingest_batch(&batch).unwrap();
        }
        // Window = E7..E9 = {a,c,f},{a,c,d,f},{b,c,d}.
        assert_eq!(t.support(EdgeId::new(0)).unwrap(), 2);
        assert_eq!(t.support(EdgeId::new(2)).unwrap(), 3);
        assert_eq!(t.support(EdgeId::new(4)).unwrap(), 0);
        let db = t.project(EdgeId::new(0)).unwrap();
        let as_strings: Vec<String> = db
            .iter()
            .map(|(items, _)| items.iter().map(|e| e.symbol()).collect::<String>())
            .collect();
        assert!(as_strings.contains(&"cf".to_string()));
        assert!(as_strings.contains(&"cdf".to_string()));
    }

    #[test]
    fn new_items_in_later_batches_grow_the_table() {
        let mut t = DsTable::new(DsTableConfig {
            window: WindowConfig::new(3).unwrap(),
            backend: StorageBackend::Memory,
            expected_edges: 0,
        })
        .unwrap();
        let e = |raw: &[u32]| Transaction::from_raw(raw.iter().copied());
        t.ingest_batch(&Batch::from_transactions(0, vec![e(&[0, 1])]))
            .unwrap();
        t.ingest_batch(&Batch::from_transactions(1, vec![e(&[3])]))
            .unwrap();
        assert_eq!(t.num_items(), 4);
        assert_eq!(t.support(EdgeId::new(3)).unwrap(), 1);
        assert_eq!(t.support(EdgeId::new(2)).unwrap(), 0);
    }

    #[test]
    fn disk_backend_spills_entries() {
        let mut t = table(StorageBackend::DiskTemp, 2);
        for batch in paper_batches() {
            t.ingest_batch(&batch).unwrap();
        }
        assert!(t.is_disk_backed());
        assert!(t.on_disk_bytes() > 0);
        // Boundary values (m × w) stay resident — the overhead the paper
        // attributes to the DSTable.
        assert!(t.resident_bytes() >= 6 * 2 * std::mem::size_of::<usize>());
    }

    #[test]
    fn empty_transactions_are_skipped() {
        let mut t = table(StorageBackend::Memory, 2);
        t.ingest_batch(&Batch::from_transactions(
            0,
            vec![Transaction::new(), Transaction::from_raw([1])],
        ))
        .unwrap();
        assert_eq!(t.support(EdgeId::new(1)).unwrap(), 1);
        assert_eq!(t.num_transactions(), 2);
    }
}
