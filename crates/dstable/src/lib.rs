//! The DSTable baseline (Cameron, Cuzzocrea & Leung, SAC 2013) as described
//! in §2.2 of the paper.
//!
//! The DSTable is a two-dimensional, **disk-resident** table: one row per
//! domain item (in canonical order), one entry per occurrence of that item in
//! a window transaction.  Each entry is a *pointer* — the (row, column)
//! location of the entry for the *next* item of the same transaction — and
//! every row keeps `w` boundary values so that the oldest batch's entries can
//! be dropped when the window slides.
//!
//! The paper keeps the DSTable as the middle ground between the fully
//! memory-resident DSTree and the bit-packed DSMatrix: it spills the window to
//! disk but pays `m × w` boundary values and one pointer per item occurrence,
//! which on dense streams dwarfs the `m × |T|` *bits* of the DSMatrix.  The
//! implementation reproduces both the structure and those costs so the space
//! experiment (E2) can measure them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod table;

pub use table::{DsTable, DsTableConfig};
