//! A brute-force exact miner used as the correctness oracle.
//!
//! The oracle enumerates candidate edge collections level-wise (Apriori
//! style) directly over an in-memory window of transactions, with none of the
//! paper's data structures involved.  Tests and the accuracy experiment use
//! it as the ground truth every algorithm must match.

use std::collections::BTreeSet;

use fsm_types::{EdgeCatalog, EdgeId, EdgeSet, FrequentPattern, Support, Transaction};

use crate::algorithm::ConnectivityMode;
use crate::connectivity::ConnectivityChecker;

/// Mines every frequent collection of co-occurring edges from `transactions`
/// by level-wise candidate generation, optionally keeping only connected
/// collections.
pub fn mine_oracle(
    transactions: &[Transaction],
    minsup: Support,
    max_len: Option<usize>,
) -> Vec<FrequentPattern> {
    let minsup = minsup.max(1);
    let mut results: Vec<FrequentPattern> = Vec::new();

    // Level 1: frequent single edges.
    let mut domain: BTreeSet<EdgeId> = BTreeSet::new();
    for t in transactions {
        domain.extend(t.iter());
    }
    let mut current: Vec<EdgeSet> = Vec::new();
    for &edge in &domain {
        let set = EdgeSet::singleton(edge);
        let support = support_of(transactions, &set);
        if support >= minsup {
            results.push(FrequentPattern::new(set.clone(), support));
            current.push(set);
        }
    }

    let mut level = 1;
    while !current.is_empty() && max_len.is_none_or(|m| level < m) {
        level += 1;
        let mut next: Vec<EdgeSet> = Vec::new();
        let mut seen: BTreeSet<EdgeSet> = BTreeSet::new();
        for set in &current {
            let largest = set.edges().last().copied().unwrap_or(EdgeId::new(0));
            for &edge in domain.iter().filter(|e| **e > largest) {
                let candidate = set.with(edge);
                if !seen.insert(candidate.clone()) {
                    continue;
                }
                let support = support_of(transactions, &candidate);
                if support >= minsup {
                    results.push(FrequentPattern::new(candidate.clone(), support));
                    next.push(candidate);
                }
            }
        }
        current = next;
    }

    results.sort();
    results
}

/// Mines frequent **connected** collections: the oracle result filtered by
/// connectivity, which is what every one of the paper's five algorithms (and
/// both baselines) must return.
pub fn mine_connected_oracle(
    transactions: &[Transaction],
    catalog: &EdgeCatalog,
    minsup: Support,
    max_len: Option<usize>,
    mode: ConnectivityMode,
) -> Vec<FrequentPattern> {
    let mut all = mine_oracle(transactions, minsup, max_len);
    let checker = ConnectivityChecker::new(catalog, mode);
    checker.prune_disconnected(&mut all);
    all
}

fn support_of(transactions: &[Transaction], set: &EdgeSet) -> Support {
    transactions
        .iter()
        .filter(|t| set.iter().all(|e| t.contains(e)))
        .count() as Support
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_window() -> Vec<Transaction> {
        // E4..E9.
        [
            vec![0u32, 2, 3, 5],
            vec![0, 3, 4, 5],
            vec![0, 1, 2],
            vec![0, 2, 5],
            vec![0, 2, 3, 5],
            vec![1, 2, 3],
        ]
        .into_iter()
        .map(Transaction::from_raw)
        .collect()
    }

    #[test]
    fn oracle_finds_the_17_collections_of_example_2() {
        let results = mine_oracle(&paper_window(), 2, None);
        assert_eq!(results.len(), 17);
    }

    #[test]
    fn connected_oracle_finds_the_15_of_example_6() {
        let catalog = EdgeCatalog::complete(4);
        let results =
            mine_connected_oracle(&paper_window(), &catalog, 2, None, ConnectivityMode::Exact);
        assert_eq!(results.len(), 15);
        // The disjoint pairs are gone.
        assert!(!results.iter().any(|p| p.edges.symbols() == "{a,f}"));
        assert!(!results.iter().any(|p| p.edges.symbols() == "{c,d}"));
    }

    #[test]
    fn max_len_caps_the_levels() {
        let results = mine_oracle(&paper_window(), 2, Some(2));
        assert!(results.iter().all(|p| p.len() <= 2));
        let singles = mine_oracle(&paper_window(), 2, Some(1));
        assert_eq!(singles.len(), 5);
    }

    #[test]
    fn empty_window_yields_nothing() {
        assert!(mine_oracle(&[], 1, None).is_empty());
    }
}
