//! The neighbourhood algebra of §4 (equations 1 and 2).

use std::collections::BTreeSet;

use fsm_types::{EdgeCatalog, EdgeId, EdgeSet, Result};

/// The set of edges adjacent to a growing connected subgraph, maintained
/// incrementally as the paper's equations (1) and (2) prescribe:
///
/// ```text
/// neighbor({x, y})   = neighbor({x}) ∪ neighbor({y}) − {x, y}
/// neighbor(X ∪ {y})  = neighbor(X)  ∪ neighbor({y}) − X − {y}
/// ```
///
/// The direct vertical algorithm only ever intersects bit vectors of edges
/// drawn from this set, which is what restricts it to connected collections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Neighborhood {
    members: BTreeSet<EdgeId>,
    neighbors: BTreeSet<EdgeId>,
}

impl Neighborhood {
    /// The neighbourhood of a single edge (the paper's Table 2 row).
    pub fn of_edge(catalog: &EdgeCatalog, edge: EdgeId) -> Result<Self> {
        let neighbors: BTreeSet<EdgeId> = catalog.neighbors(edge)?.iter().copied().collect();
        let mut members = BTreeSet::new();
        members.insert(edge);
        Ok(Self { members, neighbors })
    }

    /// Extends the subgraph with `edge` (which should be one of the current
    /// neighbours), producing the neighbourhood of `X ∪ {edge}` per Eq. (2).
    pub fn extend(&self, catalog: &EdgeCatalog, edge: EdgeId) -> Result<Self> {
        let mut members = self.members.clone();
        members.insert(edge);
        let mut neighbors = self.neighbors.clone();
        neighbors.extend(catalog.neighbors(edge)?.iter().copied());
        for member in &members {
            neighbors.remove(member);
        }
        Ok(Self { members, neighbors })
    }

    /// The member edges of the subgraph.
    pub fn members(&self) -> &BTreeSet<EdgeId> {
        &self.members
    }

    /// The neighbouring edges (candidates for connected extension).
    pub fn neighbors(&self) -> &BTreeSet<EdgeId> {
        &self.neighbors
    }

    /// Returns `true` if `edge` is adjacent to the current subgraph.
    pub fn is_neighbor(&self, edge: EdgeId) -> bool {
        self.neighbors.contains(&edge)
    }
}

/// Computes `neighbor(X)` for an arbitrary edge set non-incrementally (used to
/// cross-check the incremental algebra in tests and by the oracle).
pub fn neighborhood_of_set(catalog: &EdgeCatalog, set: &EdgeSet) -> Result<BTreeSet<EdgeId>> {
    let mut neighbors = BTreeSet::new();
    for edge in set.iter() {
        neighbors.extend(catalog.neighbors(edge)?.iter().copied());
    }
    for edge in set.iter() {
        neighbors.remove(&edge);
    }
    Ok(neighbors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(set: &BTreeSet<EdgeId>) -> String {
        set.iter().map(|e| e.symbol()).collect()
    }

    #[test]
    fn single_edge_neighbourhood_matches_table_2() {
        let catalog = EdgeCatalog::complete(4);
        let a = Neighborhood::of_edge(&catalog, EdgeId::new(0)).unwrap();
        assert_eq!(sym(a.neighbors()), "bcde");
        assert!(a.is_neighbor(EdgeId::new(2)));
        assert!(!a.is_neighbor(EdgeId::new(5)), "f is not adjacent to a");
    }

    #[test]
    fn extension_follows_equation_1() {
        // neighbor({a,c}) = neighbor(a) ∪ neighbor(c) − {a,c} = {b,d,e,f}.
        let catalog = EdgeCatalog::complete(4);
        let a = Neighborhood::of_edge(&catalog, EdgeId::new(0)).unwrap();
        let ac = a.extend(&catalog, EdgeId::new(2)).unwrap();
        assert_eq!(sym(ac.neighbors()), "bdef");
        assert_eq!(sym(ac.members()), "ac");
    }

    #[test]
    fn extension_follows_equation_2() {
        // neighbor({a,c,d}) = neighbor({a,c}) ∪ neighbor(d) − {a,c,d} = {b,e,f}.
        let catalog = EdgeCatalog::complete(4);
        let a = Neighborhood::of_edge(&catalog, EdgeId::new(0)).unwrap();
        let ac = a.extend(&catalog, EdgeId::new(2)).unwrap();
        let acd = ac.extend(&catalog, EdgeId::new(3)).unwrap();
        assert_eq!(sym(acd.neighbors()), "bef");
        // neighbor({a,d}) = {b,c,e,f} (Example 7).
        let ad = a.extend(&catalog, EdgeId::new(3)).unwrap();
        assert_eq!(sym(ad.neighbors()), "bcef");
        // neighbor({c,f}) = {a,b,d,e} (Example 7).
        let c = Neighborhood::of_edge(&catalog, EdgeId::new(2)).unwrap();
        let cf = c.extend(&catalog, EdgeId::new(5)).unwrap();
        assert_eq!(sym(cf.neighbors()), "abde");
    }

    #[test]
    fn incremental_and_batch_computation_agree() {
        let catalog = EdgeCatalog::complete(5);
        // Build {0, 1, 4} incrementally (each step adjacent) and compare with
        // the non-incremental computation.
        let n0 = Neighborhood::of_edge(&catalog, EdgeId::new(0)).unwrap();
        let step = n0.extend(&catalog, EdgeId::new(1)).unwrap();
        let step = step.extend(&catalog, EdgeId::new(4)).unwrap();
        let batch = neighborhood_of_set(&catalog, &EdgeSet::from_raw([0, 1, 4])).unwrap();
        assert_eq!(step.neighbors(), &batch);
    }

    #[test]
    fn unknown_edges_are_errors() {
        let catalog = EdgeCatalog::complete(3);
        assert!(Neighborhood::of_edge(&catalog, EdgeId::new(9)).is_err());
        assert!(neighborhood_of_set(&catalog, &EdgeSet::from_raw([0, 9])).is_err());
    }
}
