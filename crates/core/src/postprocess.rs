//! Result post-processing utilities: closed / maximal filtering and top-k
//! selection.
//!
//! The paper's related-work section contrasts its output (all frequent
//! connected collections) with mining *closed* graphs (Bifet et al.) and
//! *top-k dense* subgraphs (Valari et al.).  These utilities derive those
//! condensed representations from a [`MiningResult`] so downstream users can
//! trade completeness for output size without re-mining.

use fsm_types::FrequentPattern;

use crate::result::MiningResult;

/// Returns the closed patterns: those with no proper superset of equal
/// support in the result.
///
/// The closed set loses no information — every frequent pattern's support can
/// be recovered as the maximum support of its closed supersets.
pub fn closed_patterns(result: &MiningResult) -> Vec<FrequentPattern> {
    let patterns = result.patterns();
    patterns
        .iter()
        .filter(|candidate| {
            !patterns.iter().any(|other| {
                other.support == candidate.support
                    && other.len() > candidate.len()
                    && candidate.edges.is_subset_of(&other.edges)
            })
        })
        .cloned()
        .collect()
}

/// Returns the maximal patterns: those with no proper frequent superset at
/// all.  This is the most aggressive condensation; supports of subsets are
/// not recoverable.
pub fn maximal_patterns(result: &MiningResult) -> Vec<FrequentPattern> {
    let patterns = result.patterns();
    patterns
        .iter()
        .filter(|candidate| {
            !patterns.iter().any(|other| {
                other.len() > candidate.len() && candidate.edges.is_subset_of(&other.edges)
            })
        })
        .cloned()
        .collect()
}

/// Returns the `k` patterns with the highest support, breaking ties in favour
/// of larger (more informative) collections and then canonical order.
pub fn top_k(result: &MiningResult, k: usize) -> Vec<FrequentPattern> {
    let mut patterns: Vec<FrequentPattern> = result.patterns().to_vec();
    patterns.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(b.len().cmp(&a.len()))
            .then(a.edges.cmp(&b.edges))
    });
    patterns.truncate(k);
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::MiningStats;
    use fsm_types::EdgeSet;

    fn pattern(raw: &[u32], support: u64) -> FrequentPattern {
        FrequentPattern::new(EdgeSet::from_raw(raw.iter().copied()), support)
    }

    /// The 15 connected collections of the paper's running example.
    fn example_result() -> MiningResult {
        MiningResult::new(
            vec![
                pattern(&[0], 5),
                pattern(&[1], 2),
                pattern(&[2], 5),
                pattern(&[3], 4),
                pattern(&[5], 4),
                pattern(&[0, 2], 4),
                pattern(&[0, 2, 3], 2),
                pattern(&[0, 2, 3, 5], 2),
                pattern(&[0, 2, 5], 3),
                pattern(&[0, 3], 3),
                pattern(&[0, 3, 5], 3),
                pattern(&[1, 2], 2),
                pattern(&[2, 3, 5], 2),
                pattern(&[2, 5], 3),
                pattern(&[3, 5], 3),
            ],
            MiningStats::default(),
        )
    }

    #[test]
    fn closed_patterns_drop_subsets_with_equal_support() {
        let closed = closed_patterns(&example_result());
        let symbols: Vec<String> = closed.iter().map(|p| p.edges.symbols()).collect();
        // {a,c,d} (support 2) is absorbed by {a,c,d,f} (support 2)…
        assert!(!symbols.contains(&"{a,c,d}".to_string()));
        assert!(symbols.contains(&"{a,c,d,f}".to_string()));
        // …but {a,c} (support 4) survives: its supersets have lower support.
        assert!(symbols.contains(&"{a,c}".to_string()));
        // {b} (support 2) is absorbed by {b,c} (support 2).
        assert!(!symbols.contains(&"{b}".to_string()));
        assert!(closed.len() < example_result().len());
    }

    #[test]
    fn maximal_patterns_drop_every_subsumed_pattern() {
        let maximal = maximal_patterns(&example_result());
        let symbols: Vec<String> = maximal.iter().map(|p| p.edges.symbols()).collect();
        assert!(symbols.contains(&"{a,c,d,f}".to_string()));
        assert!(symbols.contains(&"{b,c}".to_string()));
        assert!(!symbols.contains(&"{a,c}".to_string()));
        assert!(!symbols.contains(&"{a}".to_string()));
        // Maximal ⊆ closed.
        let closed = closed_patterns(&example_result());
        for pattern in &maximal {
            assert!(closed.contains(pattern));
        }
    }

    #[test]
    fn every_pattern_support_is_recoverable_from_the_closed_set() {
        let result = example_result();
        let closed = closed_patterns(&result);
        for pattern in result.patterns() {
            let recovered = closed
                .iter()
                .filter(|c| pattern.edges.is_subset_of(&c.edges))
                .map(|c| c.support)
                .max();
            assert_eq!(recovered, Some(pattern.support), "{}", pattern.edges);
        }
    }

    #[test]
    fn top_k_orders_by_support_then_size() {
        let top = top_k(&example_result(), 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].support, 5);
        assert_eq!(top[1].support, 5);
        assert!(top[2].support >= 4);
        // Requesting more than available returns everything.
        assert_eq!(top_k(&example_result(), 100).len(), 15);
        assert!(top_k(&example_result(), 0).is_empty());
    }
}
