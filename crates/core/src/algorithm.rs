//! Algorithm selection and connectivity-check modes.

use std::fmt;

/// The five mining algorithms proposed by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Algorithm {
    /// §3.1 — recursive FP-trees per projected database (bottom-up), with the
    /// connectivity filter applied as a post-processing step.
    MultiTree,
    /// §3.2 — a single FP-tree per frequent edge whose node-path subsets are
    /// counted during one traversal, with post-processing.
    SingleTree,
    /// §3.3 — a single FP-tree per frequent edge mined top-down, with
    /// post-processing.
    TopDown,
    /// §3.4 + §3.5 — vertical bit-vector mining of all frequent edge
    /// collections, with post-processing.
    Vertical,
    /// §4 — direct vertical mining of connected collections only, guided by
    /// edge neighbourhoods; no post-processing step is needed.
    DirectVertical,
}

impl Algorithm {
    /// All five algorithms in paper order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::MultiTree,
        Algorithm::SingleTree,
        Algorithm::TopDown,
        Algorithm::Vertical,
        Algorithm::DirectVertical,
    ];

    /// Returns `true` if the algorithm needs the §3.5 post-processing step to
    /// remove disconnected collections.
    pub fn needs_postprocessing(self) -> bool {
        !matches!(self, Algorithm::DirectVertical)
    }

    /// Returns `true` if the algorithm mines with bit-vector intersections
    /// rather than FP-trees.
    pub fn is_vertical(self) -> bool {
        matches!(self, Algorithm::Vertical | Algorithm::DirectVertical)
    }

    /// Short stable identifier used in reports and CSV output.
    pub fn key(self) -> &'static str {
        match self {
            Algorithm::MultiTree => "multi-tree",
            Algorithm::SingleTree => "single-tree",
            Algorithm::TopDown => "top-down",
            Algorithm::Vertical => "vertical",
            Algorithm::DirectVertical => "direct-vertical",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// How the connectivity of an edge collection is decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConnectivityMode {
    /// Exact union–find over the edges' endpoints (default).
    #[default]
    Exact,
    /// The paper's §3.5 vertex-frequency rule: every member edge must have an
    /// endpoint shared with at least one other member edge.  This is a
    /// necessary condition only; it is kept for fidelity and for the ablation
    /// that measures how often it differs from the exact check.
    PaperRule,
}

impl fmt::Display for ConnectivityMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectivityMode::Exact => f.write_str("exact"),
            ConnectivityMode::PaperRule => f.write_str("paper-rule"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_the_direct_algorithm_skips_postprocessing() {
        for algorithm in Algorithm::ALL {
            assert_eq!(
                algorithm.needs_postprocessing(),
                algorithm != Algorithm::DirectVertical
            );
        }
    }

    #[test]
    fn vertical_classification() {
        assert!(Algorithm::Vertical.is_vertical());
        assert!(Algorithm::DirectVertical.is_vertical());
        assert!(!Algorithm::MultiTree.is_vertical());
        assert!(!Algorithm::SingleTree.is_vertical());
        assert!(!Algorithm::TopDown.is_vertical());
    }

    #[test]
    fn keys_are_unique_and_displayed() {
        let keys: std::collections::BTreeSet<&str> =
            Algorithm::ALL.iter().map(|a| a.key()).collect();
        assert_eq!(keys.len(), 5);
        assert_eq!(Algorithm::MultiTree.to_string(), "multi-tree");
        assert_eq!(ConnectivityMode::Exact.to_string(), "exact");
        assert_eq!(ConnectivityMode::PaperRule.to_string(), "paper-rule");
    }
}
