//! Mining results: the frequent connected collections plus run statistics.

use std::collections::BTreeMap;
use std::fmt;

use fsm_types::{EdgeSet, FrequentPattern, Support};

use crate::instrument::MiningStats;

/// The outcome of one mining call.
#[derive(Debug, Clone, Default)]
pub struct MiningResult {
    patterns: Vec<FrequentPattern>,
    stats: MiningStats,
}

impl MiningResult {
    /// Builds a result, canonicalising the pattern order so two results can be
    /// compared verbatim (the accuracy experiment E1 relies on this).
    pub fn new(mut patterns: Vec<FrequentPattern>, stats: MiningStats) -> Self {
        patterns.sort();
        patterns.dedup();
        Self { patterns, stats }
    }

    /// The frequent collections, in canonical order.
    pub fn patterns(&self) -> &[FrequentPattern] {
        &self.patterns
    }

    /// Run statistics.
    pub fn stats(&self) -> &MiningStats {
        &self.stats
    }

    /// Number of collections found.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` if no collection was found.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Support of a specific collection, if it was found.
    pub fn support_of(&self, edges: &EdgeSet) -> Option<Support> {
        self.patterns
            .iter()
            .find(|p| &p.edges == edges)
            .map(|p| p.support)
    }

    /// Number of collections per cardinality (1-edge, 2-edge, …), useful for
    /// report tables.
    pub fn counts_by_size(&self) -> BTreeMap<usize, usize> {
        let mut counts = BTreeMap::new();
        for p in &self.patterns {
            *counts.entry(p.len()).or_insert(0) += 1;
        }
        counts
    }

    /// Returns `true` if both results contain exactly the same collections
    /// with the same supports (the accuracy criterion of experiment E1).
    pub fn same_patterns_as(&self, other: &MiningResult) -> bool {
        self.patterns == other.patterns
    }

    /// The collections whose supports differ between two results (for
    /// diagnostics when an accuracy check fails).
    pub fn diff(&self, other: &MiningResult) -> Vec<String> {
        let mut lines = Vec::new();
        let mine: BTreeMap<&EdgeSet, Support> = self
            .patterns
            .iter()
            .map(|p| (&p.edges, p.support))
            .collect();
        let theirs: BTreeMap<&EdgeSet, Support> = other
            .patterns
            .iter()
            .map(|p| (&p.edges, p.support))
            .collect();
        for (set, support) in &mine {
            match theirs.get(set) {
                None => lines.push(format!("only in left: {set}:{support}")),
                Some(other_support) if other_support != support => lines.push(format!(
                    "support mismatch for {set}: {support} vs {other_support}"
                )),
                _ => {}
            }
        }
        for (set, support) in &theirs {
            if !mine.contains_key(set) {
                lines.push(format!("only in right: {set}:{support}"));
            }
        }
        lines
    }
}

impl fmt::Display for MiningResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} frequent connected collections:", self.patterns.len())?;
        for p in &self.patterns {
            writeln!(f, "  {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_types::EdgeSet;

    fn pattern(raw: &[u32], support: Support) -> FrequentPattern {
        FrequentPattern::new(EdgeSet::from_raw(raw.iter().copied()), support)
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let result = MiningResult::new(
            vec![pattern(&[2], 5), pattern(&[0], 5), pattern(&[0], 5)],
            MiningStats::default(),
        );
        assert_eq!(result.len(), 2);
        assert_eq!(result.patterns()[0].edges.symbols(), "{a}");
        assert!(!result.is_empty());
    }

    #[test]
    fn support_lookup_and_size_histogram() {
        let result = MiningResult::new(
            vec![pattern(&[0], 5), pattern(&[0, 2], 4), pattern(&[0, 3], 3)],
            MiningStats::default(),
        );
        assert_eq!(result.support_of(&EdgeSet::from_raw([0, 2])), Some(4));
        assert_eq!(result.support_of(&EdgeSet::from_raw([1])), None);
        let hist = result.counts_by_size();
        assert_eq!(hist.get(&1), Some(&1));
        assert_eq!(hist.get(&2), Some(&2));
    }

    #[test]
    fn equality_and_diff() {
        let left = MiningResult::new(
            vec![pattern(&[0], 5), pattern(&[0, 2], 4)],
            MiningStats::default(),
        );
        let same = MiningResult::new(
            vec![pattern(&[0, 2], 4), pattern(&[0], 5)],
            MiningStats::default(),
        );
        let different = MiningResult::new(
            vec![pattern(&[0], 5), pattern(&[0, 2], 3), pattern(&[1], 2)],
            MiningStats::default(),
        );
        assert!(left.same_patterns_as(&same));
        assert!(left.diff(&same).is_empty());
        assert!(!left.same_patterns_as(&different));
        let diff = left.diff(&different);
        assert_eq!(diff.len(), 2);
        assert!(diff.iter().any(|l| l.contains("support mismatch")));
        assert!(diff.iter().any(|l| l.contains("only in right")));
    }

    #[test]
    fn display_lists_patterns() {
        let result = MiningResult::new(vec![pattern(&[0, 2], 4)], MiningStats::default());
        let text = result.to_string();
        assert!(text.contains("1 frequent connected collections"));
        assert!(text.contains("{a,c}:4"));
    }
}
