//! Frequent connected subgraph mining from streams of linked graph structured
//! data — the paper's contribution.
//!
//! The crate provides five mining algorithms over the [`fsm_dsmatrix::DsMatrix`]
//! capture structure, the connectivity post-processing step, the neighbourhood
//! algebra used by the direct algorithm, the DSTree/DSTable baseline miners
//! used in the accuracy experiment, and the [`StreamMiner`] facade that ties
//! capture and mining together behind one builder-style API:
//!
//! ```
//! use fsm_core::{Algorithm, StreamMinerBuilder};
//! use fsm_types::{Batch, EdgeCatalog, MinSup, Transaction};
//!
//! // The paper's running example: complete graph over v1..v4, edges a..f.
//! let catalog = EdgeCatalog::complete(4);
//! let mut miner = StreamMinerBuilder::new()
//!     .algorithm(Algorithm::DirectVertical)
//!     .window_batches(2)
//!     .min_support(MinSup::absolute(2))
//!     .catalog(catalog)
//!     .build()
//!     .unwrap();
//!
//! let batch = Batch::from_transactions(0, vec![
//!     Transaction::from_raw([2, 3, 5]),
//!     Transaction::from_raw([0, 4, 5]),
//!     Transaction::from_raw([0, 2, 5]),
//! ]);
//! miner.ingest_batch(&batch).unwrap();
//! let result = miner.mine().unwrap();
//! assert!(result.patterns().iter().all(|p| p.support >= 2));
//! ```
//!
//! | Algorithm | Paper section | Strategy |
//! |-----------|---------------|----------|
//! | [`Algorithm::MultiTree`] | §3.1 | recursive FP-trees per projected database |
//! | [`Algorithm::SingleTree`] | §3.2 | one FP-tree per frequent edge, subset counting |
//! | [`Algorithm::TopDown`] | §3.3 | one FP-tree per frequent edge, top-down mining |
//! | [`Algorithm::Vertical`] | §3.4 + §3.5 | bit-vector intersections, post-processing |
//! | [`Algorithm::DirectVertical`] | §4 | neighbourhood-guided bit-vector intersections |
//!
//! # Execution engine
//!
//! All five algorithms run on a zero-allocation, optionally multi-threaded
//! engine:
//!
//! * **Threading model** — the top-level enumeration (one subtree per
//!   frequent single edge for the vertical family, one projected database
//!   per pivot edge for the horizontal family) fans out over scoped worker
//!   threads with dynamic load balancing ([`parallel`]).  Configure it with
//!   [`StreamMinerBuilder::threads`] / [`MinerConfig::threads`]: `1`
//!   (default) is sequential, `0` uses every available core.  Per-worker
//!   results merge back in canonical edge order ([`MiningStats::merge`]), so
//!   pattern lists and statistics are byte-identical for every thread count —
//!   property-tested for all five algorithms in
//!   `crates/core/tests/miner_agreement.rs`.
//! * **Scratch-arena lifetimes** — each worker owns a
//!   [`scratch::ScratchArena`] for the duration of one mining call: one
//!   intersection buffer per recursion depth, created the first time the
//!   depth is reached and reused by every sibling subtree at that depth.
//!   Buffers move out of the arena while a recursion level is live and move
//!   back when it completes, so holding a buffer never blocks deeper levels.
//! * **Allocation discipline** — candidates are screened with the fused
//!   [`fsm_storage::BitVec::and_count`] kernel before any materialisation;
//!   only candidates that meet the support threshold write into a scratch
//!   buffer (via [`fsm_storage::BitVec::and_into`]).  Infrequent candidates
//!   therefore cost one popcount pass and zero allocations.  The horizontal
//!   miners snapshot the matrix once ([`fsm_dsmatrix::DsMatrix::snapshot`])
//!   and each worker recycles one [`fsm_dsmatrix::ProjectionScratch`], so
//!   steady-state projection allocates nothing either.
//! * **Incremental capture** — the DSMatrix itself never rewrites surviving
//!   rows on a window slide (see [`fsm_dsmatrix`]); the words it does write
//!   surface as [`MiningStats::capture_words_written`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod baseline;
pub mod config;
pub mod connectivity;
pub mod delta;
pub mod instrument;
pub mod miner;
pub mod miners;
pub mod neighborhood;
pub mod oracle;
pub mod parallel;
pub mod postprocess;
pub mod result;
pub mod scratch;
pub mod session;

pub use algorithm::{Algorithm, ConnectivityMode};
pub use baseline::{mine_dstable, mine_dstree, BaselineStructure};
pub use config::{MinerConfig, StreamMinerBuilder};
pub use connectivity::ConnectivityChecker;
pub use delta::DeltaMiner;
pub use fsm_dsmatrix::{DurabilityConfig, RecoveryReport};
pub use instrument::{DeltaStats, MiningStats};
pub use miner::{MinerSnapshot, StreamMiner};
pub use neighborhood::{neighborhood_of_set, Neighborhood};
pub use parallel::{Exec, WorkerPool};
pub use postprocess::{closed_patterns, maximal_patterns, top_k};
pub use result::MiningResult;
pub use scratch::ScratchArena;
pub use session::{
    validate_tenant_id, IngestOutcome, LifecycleState, RegistryConfig, Session, SessionRegistry,
    SessionStatus, Subscription,
};
