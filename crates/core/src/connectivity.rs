//! The connectivity post-processing step (§3.5).

use fsm_types::{EdgeCatalog, EdgeSet, FrequentPattern};

use crate::algorithm::ConnectivityMode;

/// Decides whether frequent edge collections form connected subgraphs and
/// filters out those that do not — the paper's post-processing step.
#[derive(Debug, Clone)]
pub struct ConnectivityChecker<'a> {
    catalog: &'a EdgeCatalog,
    mode: ConnectivityMode,
}

impl<'a> ConnectivityChecker<'a> {
    /// Creates a checker over `catalog` using the given mode.
    pub fn new(catalog: &'a EdgeCatalog, mode: ConnectivityMode) -> Self {
        Self { catalog, mode }
    }

    /// The active connectivity mode.
    pub fn mode(&self) -> ConnectivityMode {
        self.mode
    }

    /// Returns `true` if the edge set forms a connected subgraph.
    pub fn is_connected(&self, set: &EdgeSet) -> bool {
        match self.mode {
            ConnectivityMode::Exact => set.is_connected(self.catalog),
            ConnectivityMode::PaperRule => set.is_connected_paper_rule(self.catalog),
        }
    }

    /// Removes disconnected collections in place, returning how many were
    /// pruned ("check and prune away {a,f} because it is a pair of disjoint
    /// edges", Example 6).
    pub fn prune_disconnected(&self, patterns: &mut Vec<FrequentPattern>) -> usize {
        let before = patterns.len();
        patterns.retain(|p| self.is_connected(&p.edges));
        before - patterns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_types::EdgeSet;

    fn patterns(raws: &[(&[u32], u64)]) -> Vec<FrequentPattern> {
        raws.iter()
            .map(|(edges, support)| {
                FrequentPattern::new(EdgeSet::from_raw(edges.iter().copied()), *support)
            })
            .collect()
    }

    #[test]
    fn prunes_the_two_disjoint_pairs_of_example_6() {
        let catalog = EdgeCatalog::complete(4);
        // A selection of Example 6's collections: {a,c} connected, {a,f} and
        // {c,d} disjoint, {a,d} connected.
        let mut found = patterns(&[
            (&[0, 2], 4),
            (&[0, 5], 4),
            (&[2, 3], 3),
            (&[0, 3], 3),
            (&[0], 5),
        ]);
        let checker = ConnectivityChecker::new(&catalog, ConnectivityMode::Exact);
        let pruned = checker.prune_disconnected(&mut found);
        assert_eq!(pruned, 2);
        let remaining: Vec<String> = found.iter().map(|p| p.edges.symbols()).collect();
        assert_eq!(remaining, vec!["{a,c}", "{a,d}", "{a}"]);
    }

    #[test]
    fn paper_rule_and_exact_agree_on_small_patterns() {
        let catalog = EdgeCatalog::complete(4);
        let exact = ConnectivityChecker::new(&catalog, ConnectivityMode::Exact);
        let rule = ConnectivityChecker::new(&catalog, ConnectivityMode::PaperRule);
        for raw in [
            vec![0u32, 2],
            vec![0, 5],
            vec![2, 3],
            vec![0, 2, 3, 5],
            vec![1, 2],
        ] {
            let set = EdgeSet::from_raw(raw.clone());
            assert_eq!(exact.is_connected(&set), rule.is_connected(&set), "{set}");
        }
        assert_eq!(exact.mode(), ConnectivityMode::Exact);
        assert_eq!(rule.mode(), ConnectivityMode::PaperRule);
    }

    #[test]
    fn singletons_survive_pruning() {
        let catalog = EdgeCatalog::complete(4);
        let mut found = patterns(&[(&[0], 5), (&[5], 4)]);
        let checker = ConnectivityChecker::new(&catalog, ConnectivityMode::Exact);
        assert_eq!(checker.prune_disconnected(&mut found), 0);
        assert_eq!(found.len(), 2);
    }
}
