//! Minimal data-parallel fan-out for the mining hot path.
//!
//! The top level of all five algorithms is an embarrassingly parallel loop
//! over the frequent single edges: a vertical subtree rooted at edge *i* only
//! reads the shared frequent-row table, and a horizontal pivot *i* only reads
//! the shared row snapshot — either way each task writes its own
//! [`crate::miners::RawMiningOutput`].  This module distributes those tasks
//! over `std::thread::scope` workers with dynamic (atomic-counter) load
//! balancing — task costs are heavily skewed towards small indices (they see
//! the most extensions / the largest projected databases), so static chunking
//! would idle most workers.
//!
//! Results are returned **in task-index order**, which keeps the merged
//! pattern list identical to the sequential traversal and the whole engine
//! deterministic regardless of thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

pub use fsm_pool::WorkerPool;

/// How a mine call fans its top-level subtree tasks out over threads.
///
/// The single-tenant shape is [`Exec::Scoped`]: spawn `threads` scoped
/// workers for this one mine and join them before returning — exactly the
/// behaviour every algorithm had before the service layer existed.  The
/// multi-tenant shape is [`Exec::Pool`]: the calling thread participates
/// while a process-wide [`WorkerPool`] lends however many of its fixed
/// workers are idle, so a thousand concurrent tenant mines share one worker
/// set instead of spawning a thousand scoped sets.
///
/// Either way tasks are claimed off an atomic counter and results return in
/// task-index order, so the merged pattern list — and therefore the final
/// output — is byte-identical across executors, thread counts and pool
/// sizes.  The `miner_agreement` / `epoch_agreement` / `tenant_isolation`
/// property suites pin this.
#[derive(Clone)]
pub enum Exec {
    /// Spawn `threads` scoped workers per mine (`0` = all cores) and join
    /// them before returning.  The pre-service default.
    Scoped {
        /// Worker threads per mine; `0` resolves to all available cores.
        threads: usize,
    },
    /// Participate from the calling thread while the shared pool's fixed
    /// workers help with whatever capacity is idle.
    Pool(Arc<WorkerPool>),
}

impl std::fmt::Debug for Exec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exec::Scoped { threads } => f.debug_struct("Scoped").field("threads", threads).finish(),
            Exec::Pool(pool) => f.debug_tuple("Pool").field(pool).finish(),
        }
    }
}

impl Exec {
    /// Per-mine scoped workers (`0` = all cores) — the single-tenant shape.
    pub fn scoped(threads: usize) -> Self {
        Exec::Scoped { threads }
    }

    /// Shared-pool execution — the multi-tenant shape.
    pub fn pool(pool: Arc<WorkerPool>) -> Self {
        Exec::Pool(pool)
    }

    /// Runs `task(0..tasks)` under this executor and returns the results in
    /// index order; see [`run_indexed_stateful`] for the state contract.
    pub fn run_indexed_stateful<T, S, I, F>(&self, tasks: usize, init: I, task: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        match self {
            Exec::Scoped { threads } => {
                run_indexed_stateful(tasks, effective_threads(*threads, tasks), init, task)
            }
            Exec::Pool(pool) => pool.run_indexed_stateful(tasks, init, task),
        }
    }
}

/// Resolves a user-facing thread-count knob: `0` means "all available
/// cores", and the result is clamped to `[1, tasks]` so tiny workloads never
/// pay spawn overhead for idle workers.
pub fn effective_threads(requested: usize, tasks: usize) -> usize {
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let requested = if requested == 0 { hardware } else { requested };
    requested.clamp(1, tasks.max(1))
}

/// Runs `task(0..tasks)` across `threads` scoped workers and returns the
/// results in index order.  Every worker owns one `init()`-created state for
/// its whole lifetime (the miners use this to share one scratch arena across
/// all subtrees a worker processes, so buffers warm up once per worker, not
/// once per subtree).  With one thread, a single state serves every task.
pub fn run_indexed_stateful<T, S, I, F>(tasks: usize, threads: usize, init: I, task: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = threads.clamp(1, tasks.max(1));
    if threads <= 1 {
        let mut state = init();
        return (0..tasks).map(|index| task(&mut state, index)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..tasks).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= tasks {
                        break;
                    }
                    let value = task(&mut state, index);
                    let mut slots = slots.lock().unwrap_or_else(|p| p.into_inner());
                    slots[index] = Some(value);
                }
            });
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(|p| p.into_inner())
        .into_iter()
        .map(|slot| slot.expect("every index was claimed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 4, 8] {
            let results = run_indexed_stateful(37, threads, || (), |(), i| i * i);
            assert_eq!(results, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_and_tiny_task_counts_are_safe() {
        assert!(run_indexed_stateful(0, 4, || (), |(), i| i).is_empty());
        assert_eq!(run_indexed_stateful(1, 4, || (), |(), i| i), vec![0]);
    }

    #[test]
    fn effective_threads_resolves_auto_and_clamps() {
        assert_eq!(effective_threads(3, 100), 3);
        assert_eq!(effective_threads(8, 2), 2);
        assert_eq!(effective_threads(1, 0), 1);
        assert!(effective_threads(0, 1000) >= 1, "auto resolves to >= 1");
    }

    #[test]
    fn stateful_variant_reuses_one_state_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let results = run_indexed_stateful(
            20,
            1,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |state, index| {
                *state += 1;
                (*state, index)
            },
        );
        // One thread: one state serves every task and counts them all.
        assert_eq!(inits.load(Ordering::Relaxed), 1);
        assert_eq!(results.last(), Some(&(20, 19)));
        // Multi-threaded: at most one state per worker.
        let inits = AtomicUsize::new(0);
        run_indexed_stateful(
            20,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |(), _| (),
        );
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn exec_variants_agree_with_each_other() {
        let expected: Vec<usize> = (0..53).map(|i| i * 7 + 1).collect();
        for exec in [
            Exec::scoped(1),
            Exec::scoped(4),
            Exec::scoped(0),
            Exec::pool(Arc::new(WorkerPool::inline_only())),
            Exec::pool(Arc::new(WorkerPool::new(3))),
        ] {
            let results = exec.run_indexed_stateful(53, || (), |(), i| i * 7 + 1);
            assert_eq!(results, expected, "executor {exec:?} diverged");
        }
    }

    #[test]
    fn work_is_shared_between_workers() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let results = run_indexed_stateful(
            64,
            4,
            || (),
            |(), i| {
                // Make tasks slow enough that several workers participate.
                std::thread::sleep(std::time::Duration::from_micros(200));
                seen.lock().unwrap().insert(std::thread::current().id());
                i
            },
        );
        assert_eq!(results.len(), 64);
        assert!(seen.lock().unwrap().len() > 1, "expected multiple workers");
    }
}
