//! Minimal data-parallel fan-out for the mining hot path.
//!
//! The top level of all five algorithms is an embarrassingly parallel loop
//! over the frequent single edges: a vertical subtree rooted at edge *i* only
//! reads the shared frequent-row table, and a horizontal pivot *i* only reads
//! the shared row snapshot — either way each task writes its own
//! [`crate::miners::RawMiningOutput`].  This module distributes those tasks
//! over `std::thread::scope` workers with dynamic (atomic-counter) load
//! balancing — task costs are heavily skewed towards small indices (they see
//! the most extensions / the largest projected databases), so static chunking
//! would idle most workers.
//!
//! Results are returned **in task-index order**, which keeps the merged
//! pattern list identical to the sequential traversal and the whole engine
//! deterministic regardless of thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a user-facing thread-count knob: `0` means "all available
/// cores", and the result is clamped to `[1, tasks]` so tiny workloads never
/// pay spawn overhead for idle workers.
pub fn effective_threads(requested: usize, tasks: usize) -> usize {
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let requested = if requested == 0 { hardware } else { requested };
    requested.clamp(1, tasks.max(1))
}

/// Runs `task(0..tasks)` across `threads` scoped workers and returns the
/// results in index order.  Every worker owns one `init()`-created state for
/// its whole lifetime (the miners use this to share one scratch arena across
/// all subtrees a worker processes, so buffers warm up once per worker, not
/// once per subtree).  With one thread, a single state serves every task.
pub fn run_indexed_stateful<T, S, I, F>(tasks: usize, threads: usize, init: I, task: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = threads.clamp(1, tasks.max(1));
    if threads <= 1 {
        let mut state = init();
        return (0..tasks).map(|index| task(&mut state, index)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..tasks).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= tasks {
                        break;
                    }
                    let value = task(&mut state, index);
                    let mut slots = slots.lock().unwrap_or_else(|p| p.into_inner());
                    slots[index] = Some(value);
                }
            });
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(|p| p.into_inner())
        .into_iter()
        .map(|slot| slot.expect("every index was claimed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 4, 8] {
            let results = run_indexed_stateful(37, threads, || (), |(), i| i * i);
            assert_eq!(results, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_and_tiny_task_counts_are_safe() {
        assert!(run_indexed_stateful(0, 4, || (), |(), i| i).is_empty());
        assert_eq!(run_indexed_stateful(1, 4, || (), |(), i| i), vec![0]);
    }

    #[test]
    fn effective_threads_resolves_auto_and_clamps() {
        assert_eq!(effective_threads(3, 100), 3);
        assert_eq!(effective_threads(8, 2), 2);
        assert_eq!(effective_threads(1, 0), 1);
        assert!(effective_threads(0, 1000) >= 1, "auto resolves to >= 1");
    }

    #[test]
    fn stateful_variant_reuses_one_state_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let results = run_indexed_stateful(
            20,
            1,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |state, index| {
                *state += 1;
                (*state, index)
            },
        );
        // One thread: one state serves every task and counts them all.
        assert_eq!(inits.load(Ordering::Relaxed), 1);
        assert_eq!(results.last(), Some(&(20, 19)));
        // Multi-threaded: at most one state per worker.
        let inits = AtomicUsize::new(0);
        run_indexed_stateful(
            20,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |(), _| (),
        );
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn work_is_shared_between_workers() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let results = run_indexed_stateful(
            64,
            4,
            || (),
            |(), i| {
                // Make tasks slow enough that several workers participate.
                std::thread::sleep(std::time::Duration::from_micros(200));
                seen.lock().unwrap().insert(std::thread::current().id());
                i
            },
        );
        assert_eq!(results.len(), 64);
        assert!(seen.lock().unwrap().len() > 1, "expected multiple workers");
    }
}
