//! §4 — direct vertical mining of frequent *connected* subgraphs.

use std::collections::BTreeMap;

use fsm_dsmatrix::WindowView;
use fsm_fptree::MiningLimits;
use fsm_storage::RowRef;
use fsm_types::{EdgeCatalog, EdgeId, EdgeSet, FrequentPattern, Result, Support};

use super::{Bytes, RawMiningOutput};
use crate::neighborhood::Neighborhood;
use crate::parallel::Exec;
use crate::scratch::ScratchArena;

/// Mines frequent connected subgraphs directly, without a post-processing
/// step, by only intersecting the bit vectors of *neighbouring* edges.
///
/// The enumeration grows a connected subgraph one adjacent edge at a time,
/// with candidate edges drawn from the incrementally maintained neighbourhood
/// (equations (1) and (2) of the paper).  To enumerate every connected
/// pattern exactly once, an extension is only explored when it is the
/// pattern's *canonical growth step*: starting from the pattern's smallest
/// edge and always absorbing the smallest adjacent member, the last edge
/// absorbed must be the edge we are about to add.  Example 7's run is exactly
/// this sequence of intersections (e.g. `{c,d,f}` is reached from `{c,f}` by
/// adding `d`, never from `{c,d}`, which is not connected).
///
/// Like [`crate::miners::vertical::mine_vertical`], the hot loop is
/// allocation-free: candidates are screened with the fused
/// [`RowRef::and_count`] kernel and surviving intersections land in per-depth
/// [`ScratchArena`] buffers, while the fan-out over frequent single edges
/// runs under `exec` (scoped workers or the shared pool) and merges
/// deterministically.
/// Singleton rows are borrowed zero-copy from the [`WindowView`] — the live
/// one or a frozen [`fsm_dsmatrix::EpochSnapshot`]'s — as [`RowRef`]s (flat
/// cached rows on the memory backend, pinned-chunk cursors on a budgeted
/// disk backend) and their supports come from ingest-time counters, so in
/// both steady states setup materialises no window data.
pub fn mine_direct(
    view: &WindowView<'_>,
    catalog: &EdgeCatalog,
    minsup: Support,
    limits: MiningLimits,
    exec: &Exec,
) -> Result<RawMiningOutput> {
    let minsup = minsup.max(1);
    let mut output = RawMiningOutput::default();

    // Frequent single edges and their rows, borrowed zero-copy from the
    // window view (supports come from ingest-time counters).
    let mut rows: BTreeMap<EdgeId, RowRef<'_>> = BTreeMap::new();
    let mut frequent: Vec<(EdgeId, Support)> = Vec::new();
    for (edge, support) in view.singleton_supports() {
        if support >= minsup {
            let row = view.row(edge).ok_or_else(|| {
                // A view that lists an edge it cannot serve is corrupt;
                // surface it instead of aborting the (possibly
                // multi-tenant) process.
                fsm_types::FsmError::corrupt(format!(
                    "window view lists edge {} but cannot serve its row",
                    edge.index()
                ))
            })?;
            rows.insert(edge, row);
            frequent.push((edge, support));
        }
    }
    let base_bytes: usize = rows.values().map(|row| row.heap_bytes()).sum();
    output.stats.peak_bitvector_bytes = base_bytes;

    // Singletons are patterns of length 1 and obey the same cardinality cap
    // as everything else.
    if !limits.allows(1) {
        return Ok(output);
    }

    let worker = |scratch: &mut ScratchArena, idx: usize| -> Result<RawMiningOutput> {
        let (edge, support) = frequent[idx];
        let mut sub = RawMiningOutput::default();
        sub.patterns
            .push(FrequentPattern::new(EdgeSet::singleton(edge), support));
        if !limits.allows(2) || edge.index() >= catalog.num_edges() {
            return Ok(sub);
        }
        let neighborhood = Neighborhood::of_edge(catalog, edge)?;
        grow(
            catalog,
            &rows,
            &neighborhood,
            rows[&edge],
            minsup,
            limits,
            Bytes {
                base: base_bytes,
                ancestors: 0,
            },
            scratch,
            &mut sub,
        )?;
        Ok(sub)
    };

    // Each worker owns one scratch arena for all the subtrees it processes,
    // so intersection buffers are allocated once per worker per depth.
    for sub in exec.run_indexed_stateful(frequent.len(), ScratchArena::new, worker) {
        output.merge(sub?);
    }

    output.stats.patterns_before_postprocess = output.patterns.len();
    Ok(output)
}

/// Extends the connected subgraph described by `neighborhood` with every
/// frequent neighbouring edge whose addition is the canonical growth step.
#[allow(clippy::too_many_arguments)]
fn grow(
    catalog: &EdgeCatalog,
    rows: &BTreeMap<EdgeId, RowRef<'_>>,
    neighborhood: &Neighborhood,
    vector: RowRef<'_>,
    minsup: Support,
    limits: MiningLimits,
    bytes: Bytes,
    scratch: &mut ScratchArena,
    output: &mut RawMiningOutput,
) -> Result<()> {
    let members = neighborhood.members();
    let depth = members.len();
    let mut buffer = scratch.take(depth);
    for &candidate in neighborhood.neighbors() {
        // Only frequent edges are ever intersected ("the algorithm only
        // intersects vectors of frequent edges").
        let Some(row) = rows.get(&candidate) else {
            continue;
        };
        if !is_canonical_extension(catalog, members, candidate) {
            continue;
        }
        output.stats.intersections += 1;
        // Fused popcount screen: infrequent candidates never materialise.
        let support = vector.and_count(row);
        if support < minsup {
            continue;
        }
        let written = vector.and_into(row, &mut buffer);
        debug_assert_eq!(written, support);
        let next = neighborhood.extend(catalog, candidate)?;
        output.patterns.push(FrequentPattern::new(
            EdgeSet::from_edges(next.members().iter().copied()),
            support,
        ));
        // Working set: the frequent rows plus the intersection buffer of
        // every live recursion level (ancestors + this one).
        let live = bytes.ancestors + buffer.heap_bytes();
        output.stats.peak_bitvector_bytes =
            output.stats.peak_bitvector_bytes.max(bytes.base + live);
        if limits.allows(next.members().len() + 1) {
            grow(
                catalog,
                rows,
                &next,
                RowRef::Flat(&buffer),
                minsup,
                limits,
                Bytes {
                    base: bytes.base,
                    ancestors: live,
                },
                scratch,
                output,
            )?;
        }
    }
    scratch.put(depth, buffer);
    Ok(())
}

/// Returns `true` if adding `candidate` to `members` is the canonical growth
/// step of the resulting pattern: rebuilding the pattern from its smallest
/// edge by repeatedly absorbing the smallest adjacent member must absorb
/// `candidate` last.
fn is_canonical_extension(
    catalog: &EdgeCatalog,
    members: &std::collections::BTreeSet<EdgeId>,
    candidate: EdgeId,
) -> bool {
    let mut remaining: Vec<EdgeId> = members.iter().copied().collect();
    remaining.push(candidate);
    remaining.sort_unstable();
    // The canonical sequence starts from the smallest edge of the pattern.
    let mut absorbed: Vec<EdgeId> = vec![remaining.remove(0)];
    let mut last = absorbed[0];
    while !remaining.is_empty() {
        let next_pos = remaining.iter().position(|&edge| {
            absorbed
                .iter()
                .any(|&member| catalog.are_adjacent(member, edge))
        });
        match next_pos {
            Some(pos) => {
                last = remaining.remove(pos);
                absorbed.push(last);
            }
            // Disconnected (cannot happen for neighbourhood-grown patterns,
            // but be safe): never canonical.
            None => return false,
        }
    }
    last == candidate
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_dsmatrix::{DsMatrix, DsMatrixConfig};
    use fsm_pool::WorkerPool;
    use fsm_storage::StorageBackend;
    use fsm_stream::WindowConfig;
    use fsm_types::{Batch, Transaction};
    use std::sync::Arc;

    fn paper_matrix() -> DsMatrix {
        let e = |raw: &[u32]| Transaction::from_raw(raw.iter().copied());
        let batches = vec![
            Batch::from_transactions(0, vec![e(&[2, 3, 5]), e(&[0, 4, 5]), e(&[0, 2, 5])]),
            Batch::from_transactions(1, vec![e(&[0, 2, 3, 5]), e(&[0, 3, 4, 5]), e(&[0, 1, 2])]),
            Batch::from_transactions(2, vec![e(&[0, 2, 5]), e(&[0, 2, 3, 5]), e(&[1, 2, 3])]),
        ];
        let mut m = DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(2).unwrap(),
            StorageBackend::Memory,
            6,
        ))
        .unwrap();
        for b in &batches {
            m.ingest_batch(b).unwrap();
        }
        m
    }

    fn pattern_strings(output: &RawMiningOutput) -> Vec<String> {
        let mut v: Vec<String> = output
            .patterns
            .iter()
            .map(|p| format!("{}:{}", p.edges.symbols(), p.support))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn reproduces_example_7_exactly() {
        let catalog = EdgeCatalog::complete(4);
        let mut m = paper_matrix();
        let output = mine_direct(
            &m.view().unwrap(),
            &catalog,
            2,
            MiningLimits::UNBOUNDED,
            &Exec::scoped(1),
        )
        .unwrap();
        // Example 7 / Example 6: the direct algorithm returns the 15 connected
        // collections — the 17 of Example 2 minus the disjoint {a,f} and {c,d}.
        let expected: Vec<String> = vec![
            "{a}:5",
            "{b}:2",
            "{c}:5",
            "{d}:4",
            "{f}:4",
            "{a,c}:4",
            "{a,c,d}:2",
            "{a,c,d,f}:2",
            "{a,c,f}:3",
            "{a,d}:3",
            "{a,d,f}:3",
            "{b,c}:2",
            "{c,d,f}:2",
            "{c,f}:3",
            "{d,f}:3",
        ]
        .into_iter()
        .map(String::from)
        .collect();
        let mut expected_sorted = expected.clone();
        expected_sorted.sort();
        assert_eq!(pattern_strings(&output), expected_sorted);
        assert_eq!(output.patterns.len(), 15);
        // {a,f} and {c,d} are never produced (not even counted and discarded).
        assert!(!pattern_strings(&output)
            .iter()
            .any(|s| s.starts_with("{a,f}")));
        assert!(!pattern_strings(&output)
            .iter()
            .any(|s| s.starts_with("{c,d}:")));
    }

    #[test]
    fn never_intersects_non_neighbours() {
        // Example 7 performs strictly fewer intersections than the plain
        // vertical algorithm because {a,f}, {c,d}, … are never tried.
        let catalog = EdgeCatalog::complete(4);
        let mut m = paper_matrix();
        let view = m.view().unwrap();
        let direct = mine_direct(
            &view,
            &catalog,
            2,
            MiningLimits::UNBOUNDED,
            &Exec::scoped(1),
        )
        .unwrap();
        let vertical = super::super::vertical::mine_vertical(
            &view,
            2,
            MiningLimits::UNBOUNDED,
            &Exec::scoped(1),
        )
        .unwrap();
        assert!(direct.stats.intersections > 0);
        assert!(direct.stats.intersections < vertical.stats.intersections);
    }

    #[test]
    fn parallel_run_is_identical_to_sequential() {
        let catalog = EdgeCatalog::complete(4);
        let mut m = paper_matrix();
        let view = m.view().unwrap();
        for minsup in 1..=4 {
            let sequential = mine_direct(
                &view,
                &catalog,
                minsup,
                MiningLimits::UNBOUNDED,
                &Exec::scoped(1),
            )
            .unwrap();
            let execs = [
                Exec::scoped(2),
                Exec::scoped(4),
                Exec::scoped(0),
                Exec::pool(Arc::new(WorkerPool::new(2))),
                Exec::pool(Arc::new(WorkerPool::inline_only())),
            ];
            for exec in &execs {
                let parallel =
                    mine_direct(&view, &catalog, minsup, MiningLimits::UNBOUNDED, exec).unwrap();
                assert_eq!(
                    parallel.patterns, sequential.patterns,
                    "exec {exec:?}, minsup {minsup}"
                );
                assert_eq!(
                    parallel.stats.intersections, sequential.stats.intersections,
                    "exec {exec:?}, minsup {minsup}"
                );
            }
        }
    }

    #[test]
    fn canonical_extension_enumerates_each_pattern_once() {
        let catalog = EdgeCatalog::complete(4);
        let mut m = paper_matrix();
        let output = mine_direct(
            &m.view().unwrap(),
            &catalog,
            1,
            MiningLimits::UNBOUNDED,
            &Exec::scoped(1),
        )
        .unwrap();
        let mut sets: Vec<String> = output.patterns.iter().map(|p| p.edges.symbols()).collect();
        let before = sets.len();
        sets.sort();
        sets.dedup();
        assert_eq!(before, sets.len(), "no pattern may be emitted twice");
    }

    #[test]
    fn respects_limits_and_handles_edge_cases() {
        let catalog = EdgeCatalog::complete(4);
        let mut m = paper_matrix();
        let view = m.view().unwrap();
        let pairs = mine_direct(
            &view,
            &catalog,
            2,
            MiningLimits::with_max_len(2),
            &Exec::scoped(1),
        )
        .unwrap();
        assert!(pairs.patterns.iter().all(|p| p.len() <= 2));
        let singles = mine_direct(
            &view,
            &catalog,
            2,
            MiningLimits::with_max_len(1),
            &Exec::scoped(1),
        )
        .unwrap();
        assert!(singles.patterns.iter().all(|p| p.len() == 1));
        // A zero cap forbids even singletons.
        let nothing = mine_direct(
            &view,
            &catalog,
            2,
            MiningLimits::with_max_len(0),
            &Exec::scoped(1),
        )
        .unwrap();
        assert!(nothing.patterns.is_empty());
        let unsupported = mine_direct(
            &view,
            &catalog,
            99,
            MiningLimits::UNBOUNDED,
            &Exec::scoped(1),
        )
        .unwrap();
        assert!(unsupported.patterns.is_empty());
    }

    #[test]
    fn edges_outside_the_catalog_are_reported_as_singletons_only() {
        // A stream can mention an edge the catalog does not know about (e.g. a
        // late schema change); the direct algorithm still reports the frequent
        // singleton but cannot grow it.
        let catalog = EdgeCatalog::complete(2); // knows only edge a
        let e = |raw: &[u32]| Transaction::from_raw(raw.iter().copied());
        let mut m = DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(1).unwrap(),
            StorageBackend::Memory,
            3,
        ))
        .unwrap();
        m.ingest_batch(&Batch::from_transactions(0, vec![e(&[0, 2]), e(&[0, 2])]))
            .unwrap();
        let output = mine_direct(
            &m.view().unwrap(),
            &catalog,
            2,
            MiningLimits::UNBOUNDED,
            &Exec::scoped(1),
        )
        .unwrap();
        let strings = pattern_strings(&output);
        assert!(strings.contains(&"{a}:2".to_string()));
        assert!(strings.contains(&"{c}:2".to_string()));
        assert_eq!(output.patterns.len(), 2);
    }
}
