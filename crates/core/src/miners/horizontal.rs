//! The three horizontal (FP-tree based) algorithms: §3.1, §3.2 and §3.3.
//!
//! All three follow the same outline — find the frequent single edges from the
//! DSMatrix row sums, build the `{x}`-projected database for each frequent
//! edge `x` by extracting matrix columns downwards, and mine that projected
//! database — and differ only in *how* the projected database is mined:
//!
//! * **multi-tree** (§3.1) mines it with recursive FP-growth, so conditional
//!   trees pile up in memory;
//! * **single-tree** (§3.2) builds one FP-tree and counts node-path subsets;
//! * **top-down** (§3.3) builds one FP-tree and mines it top-down.
//!
//! The per-pivot work units are independent (pivot `x`'s projected database
//! only reads rows after `x`), so all three algorithms fan the pivots out
//! over the [`crate::parallel`] engine: workers share one zero-copy
//! [`WindowView`] (the live [`fsm_dsmatrix::DsMatrix::view`] or a frozen
//! [`fsm_dsmatrix::EpochSnapshot::view`] — nothing is copied on the memory
//! backend, and a budgeted disk backend lends rows straight out of pinned
//! decoded chunks; only budget-0 disk mines assemble rows once per call),
//! each worker owns one [`ProjectionScratch`] for allocation-free
//! projection, and per-pivot outputs merge back in canonical edge order —
//! pattern lists and statistics are byte-identical for every thread count.

use fsm_dsmatrix::{ProjectionScratch, WindowView};
use fsm_fptree::growth::MineOutcome;
use fsm_fptree::{MiningLimits, ProjectedDb};
use fsm_types::{EdgeId, EdgeSet, FrequentPattern, Result, Support};

use super::RawMiningOutput;
use crate::parallel::Exec;

/// §3.1 — mining with multiple recursive FP-trees.
pub fn mine_multi_tree(
    view: &WindowView<'_>,
    minsup: Support,
    limits: MiningLimits,
    exec: &Exec,
) -> Result<RawMiningOutput> {
    mine_horizontal(view, minsup, limits, exec, fsm_fptree::mine_recursive)
}

/// §3.2 — frequency counting on a single FP-tree per frequent edge.
pub fn mine_single_tree(
    view: &WindowView<'_>,
    minsup: Support,
    limits: MiningLimits,
    exec: &Exec,
) -> Result<RawMiningOutput> {
    mine_horizontal(
        view,
        minsup,
        limits,
        exec,
        fsm_fptree::mine_by_subset_enumeration,
    )
}

/// §3.3 — top-down mining of a single FP-tree per frequent edge.
pub fn mine_top_down(
    view: &WindowView<'_>,
    minsup: Support,
    limits: MiningLimits,
    exec: &Exec,
) -> Result<RawMiningOutput> {
    mine_horizontal(view, minsup, limits, exec, fsm_fptree::mine_top_down)
}

/// Shared outline of the three horizontal algorithms, parameterised by the
/// projected-database mining strategy.
///
/// `exec` fans the per-pivot loop out over workers (per-mine scoped threads
/// or the shared pool); each worker reuses one projection scratch for every
/// pivot it processes, and results merge in canonical order so the output
/// never depends on the worker count.
fn mine_horizontal(
    view: &WindowView<'_>,
    minsup: Support,
    limits: MiningLimits,
    exec: &Exec,
    strategy: fn(&ProjectedDb, Support, MiningLimits) -> MineOutcome,
) -> Result<RawMiningOutput> {
    let minsup = minsup.max(1);
    let mut output = RawMiningOutput::default();

    // The limit passed to the projected-database miner applies to the suffix
    // (the pattern minus the pivot edge).
    let suffix_limits = match limits.max_pattern_len {
        Some(0) => return Ok(output),
        Some(max) => MiningLimits::with_max_len(max.saturating_sub(1).max(1)),
        None => MiningLimits::UNBOUNDED,
    };
    let singles_only = matches!(limits.max_pattern_len, Some(1));

    // Step 1: frequent single edges come from the view's ingest-time support
    // counters.  The rows the view exposes are the mining working set of the
    // horizontal family (the trees come and go on top of them), so their
    // bytes are recorded the same way the vertical miners record their
    // resident frequent rows — on the memory backend they are shared with
    // the capture structure, not copied.
    output.stats.peak_bitvector_bytes = view.heap_bytes();
    let frequent: Vec<(EdgeId, Support)> = view
        .singleton_supports()
        .into_iter()
        .filter(|(_, support)| *support >= minsup)
        .collect();

    // Step 2: one projected database per frequent edge, mined in parallel.
    // Pivot costs are skewed (small pivots see the largest projected
    // databases), which is exactly the case the dynamic load balancer of
    // the executor's dynamic load balancer handles.
    let per_pivot =
        exec.run_indexed_stateful(frequent.len(), ProjectionScratch::new, |scratch, idx| {
            let (edge, support) = frequent[idx];
            let mut out = RawMiningOutput::default();
            out.patterns
                .push(FrequentPattern::new(EdgeSet::singleton(edge), support));
            if singles_only {
                return out;
            }
            let projected = view.project_into(edge, scratch);
            if projected.is_empty() {
                return out;
            }
            let outcome = strategy(projected, minsup, suffix_limits);
            out.stats
                .tree_footprint
                .merge_sequential(&outcome.footprint);
            for (suffix, suffix_support) in outcome.sets {
                let mut edges = Vec::with_capacity(suffix.len() + 1);
                edges.push(edge);
                edges.extend(suffix);
                out.patterns.push(FrequentPattern::new(
                    EdgeSet::from_edges(edges),
                    suffix_support,
                ));
            }
            out
        });
    for subtree in per_pivot {
        output.merge(subtree);
    }

    output.stats.patterns_before_postprocess = output.patterns.len();
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_dsmatrix::{DsMatrix, DsMatrixConfig};
    use fsm_pool::WorkerPool;
    use fsm_storage::StorageBackend;
    use fsm_stream::WindowConfig;
    use fsm_types::{Batch, Transaction};
    use std::sync::Arc;

    /// DSMatrix holding the paper's window E4..E9.
    fn paper_matrix() -> DsMatrix {
        let e = |raw: &[u32]| Transaction::from_raw(raw.iter().copied());
        let batches = vec![
            Batch::from_transactions(0, vec![e(&[2, 3, 5]), e(&[0, 4, 5]), e(&[0, 2, 5])]),
            Batch::from_transactions(1, vec![e(&[0, 2, 3, 5]), e(&[0, 3, 4, 5]), e(&[0, 1, 2])]),
            Batch::from_transactions(2, vec![e(&[0, 2, 5]), e(&[0, 2, 3, 5]), e(&[1, 2, 3])]),
        ];
        let mut m = DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(2).unwrap(),
            StorageBackend::Memory,
            6,
        ))
        .unwrap();
        for b in &batches {
            m.ingest_batch(b).unwrap();
        }
        m
    }

    fn pattern_strings(output: &RawMiningOutput) -> Vec<String> {
        let mut v: Vec<String> = output
            .patterns
            .iter()
            .map(|p| format!("{}:{}", p.edges.symbols(), p.support))
            .collect();
        v.sort();
        v
    }

    /// The 17 collections of Example 2 with the supports of Examples 3 and 5.
    fn expected_17() -> Vec<String> {
        let mut v: Vec<String> = vec![
            "{a}:5",
            "{b}:2",
            "{c}:5",
            "{d}:4",
            "{f}:4", // 5 singletons
            "{a,c}:4",
            "{a,c,d}:2",
            "{a,c,d,f}:2",
            "{a,c,f}:3",
            "{a,d}:3",
            "{a,d,f}:3",
            "{a,f}:4", // 7 from the {a}-projected database
            "{b,c}:2", // 1 from {b}
            "{c,d}:3",
            "{c,d,f}:2",
            "{c,f}:3", // 3 from {c}
            "{d,f}:3", // 1 from {d}
        ]
        .into_iter()
        .map(String::from)
        .collect();
        v.sort();
        v
    }

    #[test]
    fn multi_tree_finds_the_17_collections_of_example_2() {
        let mut m = paper_matrix();
        let output = mine_multi_tree(
            &m.view().unwrap(),
            2,
            MiningLimits::UNBOUNDED,
            &Exec::scoped(1),
        )
        .unwrap();
        assert_eq!(output.patterns.len(), 17);
        assert_eq!(pattern_strings(&output), expected_17());
        assert!(
            output.stats.tree_footprint.peak_trees >= 2,
            "the multi-tree algorithm keeps several FP-trees alive"
        );
    }

    #[test]
    fn single_tree_finds_the_same_collections_with_one_tree_at_a_time() {
        let mut m = paper_matrix();
        let output = mine_single_tree(
            &m.view().unwrap(),
            2,
            MiningLimits::UNBOUNDED,
            &Exec::scoped(1),
        )
        .unwrap();
        assert_eq!(pattern_strings(&output), expected_17());
        assert_eq!(
            output.stats.tree_footprint.peak_trees, 1,
            "only one FP-tree is alive at any moment (§3.2)"
        );
    }

    #[test]
    fn top_down_finds_the_same_collections_with_one_tree_at_a_time() {
        let mut m = paper_matrix();
        let output = mine_top_down(
            &m.view().unwrap(),
            2,
            MiningLimits::UNBOUNDED,
            &Exec::scoped(1),
        )
        .unwrap();
        assert_eq!(pattern_strings(&output), expected_17());
        assert_eq!(output.stats.tree_footprint.peak_trees, 1);
    }

    #[test]
    fn parallel_run_is_identical_to_sequential() {
        let mut m = paper_matrix();
        let view = m.view().unwrap();
        for miner in [mine_multi_tree, mine_single_tree, mine_top_down] {
            for minsup in 1..=5 {
                let sequential =
                    miner(&view, minsup, MiningLimits::UNBOUNDED, &Exec::scoped(1)).unwrap();
                let execs = [
                    Exec::scoped(2),
                    Exec::scoped(4),
                    Exec::scoped(0),
                    Exec::pool(Arc::new(WorkerPool::new(2))),
                    Exec::pool(Arc::new(WorkerPool::inline_only())),
                ];
                for exec in &execs {
                    let parallel = miner(&view, minsup, MiningLimits::UNBOUNDED, exec).unwrap();
                    // Not just as sets: the merged order must match exactly.
                    assert_eq!(
                        parallel.patterns, sequential.patterns,
                        "exec {exec:?}, minsup {minsup}"
                    );
                    assert_eq!(
                        parallel.stats, sequential.stats,
                        "exec {exec:?}, minsup {minsup}"
                    );
                }
            }
        }
    }

    #[test]
    fn higher_minsup_reduces_the_result() {
        let mut m = paper_matrix();
        let output = mine_multi_tree(
            &m.view().unwrap(),
            4,
            MiningLimits::UNBOUNDED,
            &Exec::scoped(1),
        )
        .unwrap();
        // minsup 4: singletons a:5, c:5, d:4, f:4 plus pairs {a,c}:4, {a,f}:4.
        assert_eq!(
            pattern_strings(&output),
            vec![
                "{a,c}:4".to_string(),
                "{a,f}:4".to_string(),
                "{a}:5".to_string(),
                "{c}:5".to_string(),
                "{d}:4".to_string(),
                "{f}:4".to_string(),
            ]
        );
    }

    #[test]
    fn max_pattern_len_caps_results() {
        let mut m = paper_matrix();
        let view = m.view().unwrap();
        let output =
            mine_single_tree(&view, 2, MiningLimits::with_max_len(2), &Exec::scoped(1)).unwrap();
        assert!(output.patterns.iter().all(|p| p.len() <= 2));
        assert!(output.patterns.iter().any(|p| p.len() == 2));
        let singles_only =
            mine_top_down(&view, 2, MiningLimits::with_max_len(1), &Exec::scoped(1)).unwrap();
        assert!(singles_only.patterns.iter().all(|p| p.len() == 1));
        assert_eq!(singles_only.patterns.len(), 5);
        // A zero cap forbids even singletons, matching the vertical miners.
        for strategy in [mine_multi_tree, mine_single_tree, mine_top_down] {
            let nothing =
                strategy(&view, 2, MiningLimits::with_max_len(0), &Exec::scoped(1)).unwrap();
            assert!(nothing.patterns.is_empty());
        }
    }

    #[test]
    fn unsatisfiable_minsup_returns_nothing() {
        let mut m = paper_matrix();
        let output = mine_multi_tree(
            &m.view().unwrap(),
            100,
            MiningLimits::UNBOUNDED,
            &Exec::scoped(1),
        )
        .unwrap();
        assert!(output.patterns.is_empty());
        assert_eq!(output.stats.patterns_before_postprocess, 0);
    }
}
