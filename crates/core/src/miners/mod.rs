//! The five mining algorithms over the DSMatrix.
//!
//! Every algorithm consumes the same inputs — a [`fsm_dsmatrix::WindowView`]
//! over the window being mined (either the live window through
//! [`fsm_dsmatrix::DsMatrix::view`] or a frozen epoch through
//! [`fsm_dsmatrix::EpochSnapshot::view`]), the edge catalog, a resolved
//! absolute minimum support and optional pattern-length limits — and
//! produces the same output type, a list of frequent patterns plus raw
//! statistics.  The [`crate::miner::StreamMiner`] facade dispatches on
//! [`crate::algorithm::Algorithm`] and applies the connectivity
//! post-processing step where required.

pub mod direct;
pub mod horizontal;
pub mod vertical;

use fsm_dsmatrix::{DsMatrix, WindowView};
use fsm_fptree::MiningLimits;
use fsm_types::{EdgeCatalog, FrequentPattern, Result, Support};

use crate::algorithm::Algorithm;
use crate::instrument::MiningStats;
use crate::parallel::Exec;

/// Working-set accounting the vertical miners thread through their
/// recursion: the resident frequent rows (`base`) plus the intersection
/// buffers of every live ancestor recursion level (`ancestors`).
#[derive(Clone, Copy)]
pub(crate) struct Bytes {
    /// Heap bytes of the frequent singleton rows, alive for the whole call.
    pub base: usize,
    /// Heap bytes of the intersection buffers held by enclosing levels.
    pub ancestors: usize,
}

/// Raw output of one algorithm before post-processing.
#[derive(Debug, Clone, Default)]
pub struct RawMiningOutput {
    /// Frequent collections (connected *and* disconnected for algorithms 1–4,
    /// connected only for the direct algorithm).
    pub patterns: Vec<FrequentPattern>,
    /// Statistics accumulated while mining (timing is filled in by the
    /// caller).
    pub stats: MiningStats,
}

impl RawMiningOutput {
    /// Appends the patterns of a parallel worker's subtree and folds its
    /// statistics in (see [`MiningStats::merge`]).  Merging the per-singleton
    /// subtrees in canonical (edge-index) order reproduces the sequential
    /// traversal's pattern order exactly.
    pub fn merge(&mut self, other: RawMiningOutput) {
        self.patterns.extend(other.patterns);
        self.stats.merge(&other.stats);
    }
}

/// Runs the selected algorithm over the live window of `matrix`
/// (stop-the-world: takes the view and mines it in one call).
///
/// This is the dispatch point used by the facade and by the experiment
/// harness when it wants raw (pre-post-processing) output.  `exec` fans
/// every algorithm's top-level enumeration — per-singleton subtrees for the
/// vertical family, per-pivot projected databases for the horizontal family —
/// out over worker threads: [`Exec::scoped`] spawns per-mine scoped workers
/// (`0` = all available cores, `1` = sequential), [`Exec::pool`] multiplexes
/// the tasks over a process-wide [`crate::parallel::WorkerPool`].  Results
/// are byte-identical for every executor, thread count and pool size.
pub fn run_algorithm(
    algorithm: Algorithm,
    matrix: &mut DsMatrix,
    catalog: &EdgeCatalog,
    minsup: Support,
    limits: MiningLimits,
    exec: &Exec,
) -> Result<RawMiningOutput> {
    let view = matrix.view()?;
    run_algorithm_on_view(algorithm, &view, catalog, minsup, limits, exec)
}

/// Runs the selected algorithm over an already-taken [`WindowView`] — the
/// live view or a frozen [`fsm_dsmatrix::EpochSnapshot`]'s; the algorithms
/// cannot tell the difference, which is what makes snapshot mining
/// byte-identical to stop-the-world mining at the same epoch
/// (property-tested in `crates/core/tests/epoch_agreement.rs`).
pub fn run_algorithm_on_view(
    algorithm: Algorithm,
    view: &WindowView<'_>,
    catalog: &EdgeCatalog,
    minsup: Support,
    limits: MiningLimits,
    exec: &Exec,
) -> Result<RawMiningOutput> {
    match algorithm {
        Algorithm::MultiTree => horizontal::mine_multi_tree(view, minsup, limits, exec),
        Algorithm::SingleTree => horizontal::mine_single_tree(view, minsup, limits, exec),
        Algorithm::TopDown => horizontal::mine_top_down(view, minsup, limits, exec),
        Algorithm::Vertical => vertical::mine_vertical(view, minsup, limits, exec),
        Algorithm::DirectVertical => direct::mine_direct(view, catalog, minsup, limits, exec),
    }
}
