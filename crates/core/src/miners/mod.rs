//! The five mining algorithms over the DSMatrix.
//!
//! Every algorithm consumes the same inputs — a [`fsm_dsmatrix::DsMatrix`]
//! holding the current window, the edge catalog, a resolved absolute minimum
//! support and optional pattern-length limits — and produces the same output
//! type, a list of frequent patterns plus raw statistics.  The
//! [`crate::miner::StreamMiner`] facade dispatches on
//! [`crate::algorithm::Algorithm`] and applies the connectivity
//! post-processing step where required.

pub mod direct;
pub mod horizontal;
pub mod vertical;

use fsm_dsmatrix::DsMatrix;
use fsm_fptree::MiningLimits;
use fsm_types::{EdgeCatalog, FrequentPattern, Result, Support};

use crate::algorithm::Algorithm;
use crate::instrument::MiningStats;

/// Raw output of one algorithm before post-processing.
#[derive(Debug, Clone, Default)]
pub struct RawMiningOutput {
    /// Frequent collections (connected *and* disconnected for algorithms 1–4,
    /// connected only for the direct algorithm).
    pub patterns: Vec<FrequentPattern>,
    /// Statistics accumulated while mining (timing is filled in by the
    /// caller).
    pub stats: MiningStats,
}

/// Runs the selected algorithm over the matrix.
///
/// This is the dispatch point used by the facade and by the experiment
/// harness when it wants raw (pre-post-processing) output.
pub fn run_algorithm(
    algorithm: Algorithm,
    matrix: &mut DsMatrix,
    catalog: &EdgeCatalog,
    minsup: Support,
    limits: MiningLimits,
) -> Result<RawMiningOutput> {
    match algorithm {
        Algorithm::MultiTree => horizontal::mine_multi_tree(matrix, minsup, limits),
        Algorithm::SingleTree => horizontal::mine_single_tree(matrix, minsup, limits),
        Algorithm::TopDown => horizontal::mine_top_down(matrix, minsup, limits),
        Algorithm::Vertical => vertical::mine_vertical(matrix, minsup, limits),
        Algorithm::DirectVertical => direct::mine_direct(matrix, catalog, minsup, limits),
    }
}
