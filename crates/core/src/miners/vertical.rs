//! §3.4 — vertical bit-vector mining of all frequent edge collections.

use fsm_dsmatrix::WindowView;
use fsm_fptree::MiningLimits;
use fsm_storage::RowRef;
use fsm_types::{EdgeId, EdgeSet, FrequentPattern, FsmError, Result, Support};

use super::{Bytes, RawMiningOutput};
use crate::parallel::Exec;
use crate::scratch::ScratchArena;

/// Mines every frequent edge collection by intersecting DSMatrix rows.
///
/// The algorithm first computes the row sum of every row (the singleton
/// supports), then repeatedly intersects the bit vectors of frequent patterns
/// with the rows of larger frequent edges, depth-first in canonical order —
/// the classic vertical (Eclat-style) enumeration the paper describes in
/// Example 5.  Connected and disconnected collections alike are produced; the
/// §3.5 post-processing step prunes the disconnected ones afterwards.
///
/// Two engine-level optimisations keep the hot loop allocation-free: every
/// candidate is screened with the fused [`RowRef::and_count`] kernel (so
/// infrequent candidates never materialise an intersection vector at all),
/// and surviving intersections are written into a per-depth [`ScratchArena`]
/// buffer via [`RowRef::and_into`].  The top-level fan-out over frequent
/// single edges runs under `exec` (per-mine scoped workers or the shared
/// pool); per-edge subtrees are merged back in canonical order, so the
/// output is identical to the sequential traversal.
///
/// Rows are read through the zero-copy [`WindowView`] as [`RowRef`]s —
/// either the live view ([`fsm_dsmatrix::DsMatrix::view`]) or a frozen
/// epoch's ([`fsm_dsmatrix::EpochSnapshot::view`]): singleton supports come
/// from ingest-time counters and the frequent rows are *borrowed* — from the
/// matrix's incrementally-maintained cache on the memory backend, or
/// streamed out of pinned decoded chunks on a budgeted disk backend — rather
/// than assembled per call, so in both steady states this function
/// materialises no window data at all.
pub fn mine_vertical(
    view: &WindowView<'_>,
    minsup: Support,
    limits: MiningLimits,
    exec: &Exec,
) -> Result<RawMiningOutput> {
    let minsup = minsup.max(1);
    let mut output = RawMiningOutput::default();

    // Frequent single edges with their rows borrowed from the view.  All
    // rows of one view share the same column alignment, so the intersection
    // kernels below see exactly the flat-matrix bit strings.
    let frequent: Vec<(EdgeId, Support, RowRef<'_>)> = view
        .singleton_supports()
        .into_iter()
        .filter(|(_, support)| *support >= minsup)
        .map(|(edge, support)| match view.row(edge) {
            Some(row) => Ok((edge, support, row)),
            // A view that lists an edge it cannot serve is corrupt; surface
            // it as an error (one tenant's damaged window must not abort a
            // multi-tenant process).
            None => Err(FsmError::corrupt(format!(
                "window view lists edge {} but cannot serve its row",
                edge.index()
            ))),
        })
        .collect::<Result<_>>()?;
    let row_bytes: usize = frequent.iter().map(|(_, _, row)| row.heap_bytes()).sum();
    output.stats.peak_bitvector_bytes = row_bytes;

    // Singletons are patterns of length 1 and obey the same cardinality cap
    // as everything else.
    if !limits.allows(1) {
        return Ok(output);
    }

    // Each worker owns one scratch arena for all the subtrees it processes,
    // so intersection buffers are allocated once per worker per depth.
    let subtrees = exec.run_indexed_stateful(frequent.len(), ScratchArena::new, |scratch, idx| {
        mine_subtree(&frequent, idx, minsup, limits, row_bytes, scratch)
    });
    for sub in subtrees {
        output.merge(sub);
    }

    output.stats.patterns_before_postprocess = output.patterns.len();
    Ok(output)
}

/// Mines the enumeration subtree rooted at `frequent[idx]`: the singleton
/// pattern itself plus every extension by edges after it in canonical order.
fn mine_subtree(
    frequent: &[(EdgeId, Support, RowRef<'_>)],
    idx: usize,
    minsup: Support,
    limits: MiningLimits,
    base_bytes: usize,
    scratch: &mut ScratchArena,
) -> RawMiningOutput {
    let (edge, support, row) = &frequent[idx];
    let mut output = RawMiningOutput::default();
    output
        .patterns
        .push(FrequentPattern::new(EdgeSet::singleton(*edge), *support));
    if limits.allows(2) {
        extend(
            frequent,
            idx,
            &mut vec![*edge],
            *row,
            minsup,
            limits,
            Bytes {
                base: base_bytes,
                ancestors: 0,
            },
            scratch,
            &mut output,
        );
    }
    output
}

/// Depth-first extension of `prefix` (whose transaction set is `vector`) with
/// every frequent edge after position `from` in canonical order.
///
/// `vector` is a [`RowRef`] so the root level can intersect borrowed rows in
/// whatever representation the view served (flat or pinned-chunked); deeper
/// levels always pass flat scratch buffers.
#[allow(clippy::too_many_arguments)]
fn extend(
    frequent: &[(EdgeId, Support, RowRef<'_>)],
    from: usize,
    prefix: &mut Vec<EdgeId>,
    vector: RowRef<'_>,
    minsup: Support,
    limits: MiningLimits,
    bytes: Bytes,
    scratch: &mut ScratchArena,
    output: &mut RawMiningOutput,
) {
    let depth = prefix.len();
    let mut buffer = scratch.take(depth);
    for (next_idx, (edge, _, row)) in frequent.iter().enumerate().skip(from + 1) {
        output.stats.intersections += 1;
        // Fused popcount screen: infrequent candidates are rejected without
        // materialising (or allocating) the intersection vector.
        let support = vector.and_count(row);
        if support < minsup {
            continue;
        }
        let written = vector.and_into(row, &mut buffer);
        debug_assert_eq!(written, support);
        prefix.push(*edge);
        output.patterns.push(FrequentPattern::new(
            EdgeSet::from_edges(prefix.iter().copied()),
            support,
        ));
        // Working set: the frequent rows plus the intersection buffer of
        // every live recursion level (ancestors + this one).
        let live = bytes.ancestors + buffer.heap_bytes();
        output.stats.peak_bitvector_bytes =
            output.stats.peak_bitvector_bytes.max(bytes.base + live);
        if limits.allows(prefix.len() + 1) {
            extend(
                frequent,
                next_idx,
                prefix,
                RowRef::Flat(&buffer),
                minsup,
                limits,
                Bytes {
                    base: bytes.base,
                    ancestors: live,
                },
                scratch,
                output,
            );
        }
        prefix.pop();
    }
    scratch.put(depth, buffer);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_dsmatrix::{DsMatrix, DsMatrixConfig};
    use fsm_pool::WorkerPool;
    use fsm_storage::StorageBackend;
    use fsm_stream::WindowConfig;
    use fsm_types::{Batch, Transaction};
    use std::sync::Arc;

    fn paper_matrix() -> DsMatrix {
        let e = |raw: &[u32]| Transaction::from_raw(raw.iter().copied());
        let batches = vec![
            Batch::from_transactions(0, vec![e(&[2, 3, 5]), e(&[0, 4, 5]), e(&[0, 2, 5])]),
            Batch::from_transactions(1, vec![e(&[0, 2, 3, 5]), e(&[0, 3, 4, 5]), e(&[0, 1, 2])]),
            Batch::from_transactions(2, vec![e(&[0, 2, 5]), e(&[0, 2, 3, 5]), e(&[1, 2, 3])]),
        ];
        let mut m = DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(2).unwrap(),
            StorageBackend::Memory,
            6,
        ))
        .unwrap();
        for b in &batches {
            m.ingest_batch(b).unwrap();
        }
        m
    }

    fn pattern_strings(output: &RawMiningOutput) -> Vec<String> {
        let mut v: Vec<String> = output
            .patterns
            .iter()
            .map(|p| format!("{}:{}", p.edges.symbols(), p.support))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn reproduces_example_5() {
        let mut m = paper_matrix();
        let output = mine_vertical(
            &m.view().unwrap(),
            2,
            MiningLimits::UNBOUNDED,
            &Exec::scoped(1),
        )
        .unwrap();
        // Example 5 finds the same 17 collections as the tree-based runs, and
        // spells out the key supports: {a,c}:4, {a,d}:3, {a,f}:4, {b,c}:2,
        // {c,d}:3, {c,f}:3, {d,f}:3.
        assert_eq!(output.patterns.len(), 17);
        let strings = pattern_strings(&output);
        for expected in [
            "{a,c}:4",
            "{a,d}:3",
            "{a,f}:4",
            "{b,c}:2",
            "{c,d}:3",
            "{c,f}:3",
            "{d,f}:3",
            "{a,c,d}:2",
            "{a,c,f}:3",
            "{a,d,f}:3",
            "{a,c,d,f}:2",
        ] {
            assert!(
                strings.contains(&expected.to_string()),
                "missing {expected}"
            );
        }
        assert!(output.stats.intersections > 0);
        assert!(output.stats.peak_bitvector_bytes > 0);
        assert_eq!(output.stats.tree_footprint.trees_built, 0);
    }

    #[test]
    fn agrees_with_the_horizontal_algorithms() {
        let mut m = paper_matrix();
        let view = m.view().unwrap();
        for minsup in 1..=5 {
            let vertical = pattern_strings(
                &mine_vertical(&view, minsup, MiningLimits::UNBOUNDED, &Exec::scoped(1)).unwrap(),
            );
            let horizontal = pattern_strings(
                &super::super::horizontal::mine_multi_tree(
                    &view,
                    minsup,
                    MiningLimits::UNBOUNDED,
                    &Exec::scoped(1),
                )
                .unwrap(),
            );
            assert_eq!(vertical, horizontal, "minsup {minsup}");
        }
    }

    #[test]
    fn parallel_run_is_identical_to_sequential() {
        let mut m = paper_matrix();
        let view = m.view().unwrap();
        for minsup in 1..=5 {
            let sequential =
                mine_vertical(&view, minsup, MiningLimits::UNBOUNDED, &Exec::scoped(1)).unwrap();
            let execs = [
                Exec::scoped(2),
                Exec::scoped(4),
                Exec::scoped(0),
                Exec::pool(Arc::new(WorkerPool::new(2))),
                Exec::pool(Arc::new(WorkerPool::inline_only())),
            ];
            for exec in &execs {
                let parallel = mine_vertical(&view, minsup, MiningLimits::UNBOUNDED, exec).unwrap();
                // Not just as sets: the merged order must match exactly.
                assert_eq!(
                    parallel.patterns, sequential.patterns,
                    "exec {exec:?}, minsup {minsup}"
                );
                assert_eq!(
                    parallel.stats.intersections, sequential.stats.intersections,
                    "exec {exec:?}, minsup {minsup}"
                );
            }
        }
    }

    #[test]
    fn respects_pattern_length_limit() {
        let mut m = paper_matrix();
        let view = m.view().unwrap();
        let output =
            mine_vertical(&view, 2, MiningLimits::with_max_len(2), &Exec::scoped(1)).unwrap();
        assert!(output.patterns.iter().all(|p| p.len() <= 2));
        let singles =
            mine_vertical(&view, 2, MiningLimits::with_max_len(1), &Exec::scoped(1)).unwrap();
        assert!(singles.patterns.iter().all(|p| p.len() == 1));
        assert_eq!(singles.stats.intersections, 0);
        // A zero cap forbids even singletons.
        let nothing =
            mine_vertical(&view, 2, MiningLimits::with_max_len(0), &Exec::scoped(1)).unwrap();
        assert!(nothing.patterns.is_empty());
        assert_eq!(nothing.stats.intersections, 0);
    }

    #[test]
    fn empty_matrix_and_high_minsup() {
        let mut empty = DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(2).unwrap(),
            StorageBackend::Memory,
            4,
        ))
        .unwrap();
        assert!(mine_vertical(
            &empty.view().unwrap(),
            1,
            MiningLimits::UNBOUNDED,
            &Exec::scoped(1)
        )
        .unwrap()
        .patterns
        .is_empty());
        let mut m = paper_matrix();
        assert!(mine_vertical(
            &m.view().unwrap(),
            7,
            MiningLimits::UNBOUNDED,
            &Exec::scoped(1)
        )
        .unwrap()
        .patterns
        .is_empty());
    }
}
