//! §3.4 — vertical bit-vector mining of all frequent edge collections.

use fsm_dsmatrix::DsMatrix;
use fsm_fptree::MiningLimits;
use fsm_storage::BitVec;
use fsm_types::{EdgeId, EdgeSet, FrequentPattern, Result, Support};

use super::RawMiningOutput;

/// Mines every frequent edge collection by intersecting DSMatrix rows.
///
/// The algorithm first computes the row sum of every row (the singleton
/// supports), then repeatedly intersects the bit vectors of frequent patterns
/// with the rows of larger frequent edges, depth-first in canonical order —
/// the classic vertical (Eclat-style) enumeration the paper describes in
/// Example 5.  Connected and disconnected collections alike are produced; the
/// §3.5 post-processing step prunes the disconnected ones afterwards.
pub fn mine_vertical(
    matrix: &mut DsMatrix,
    minsup: Support,
    limits: MiningLimits,
) -> Result<RawMiningOutput> {
    let minsup = minsup.max(1);
    let mut output = RawMiningOutput::default();

    // Frequent single edges with their rows loaded once.
    let singletons = matrix.singleton_supports()?;
    let mut frequent: Vec<(EdgeId, Support, BitVec)> = Vec::new();
    for (edge, support) in singletons {
        if support >= minsup {
            frequent.push((edge, support, matrix.row(edge)?));
        }
    }
    let row_bytes: usize = frequent.iter().map(|(_, _, row)| row.heap_bytes()).sum();
    output.stats.peak_bitvector_bytes = row_bytes;

    for (idx, (edge, support, row)) in frequent.iter().enumerate() {
        output
            .patterns
            .push(FrequentPattern::new(EdgeSet::singleton(*edge), *support));
        if limits.allows(2) {
            extend(
                &frequent,
                idx,
                &mut vec![*edge],
                row,
                minsup,
                limits,
                row_bytes,
                &mut output,
            );
        }
    }

    output.stats.patterns_before_postprocess = output.patterns.len();
    Ok(output)
}

/// Depth-first extension of `prefix` (whose transaction set is `vector`) with
/// every frequent edge after position `from` in canonical order.
#[allow(clippy::too_many_arguments)]
fn extend(
    frequent: &[(EdgeId, Support, BitVec)],
    from: usize,
    prefix: &mut Vec<EdgeId>,
    vector: &BitVec,
    minsup: Support,
    limits: MiningLimits,
    base_bytes: usize,
    output: &mut RawMiningOutput,
) {
    for (next_idx, (edge, _, row)) in frequent.iter().enumerate().skip(from + 1) {
        output.stats.intersections += 1;
        let intersection = vector.and(row);
        let support = intersection.count_ones();
        if support < minsup {
            continue;
        }
        prefix.push(*edge);
        output.patterns.push(FrequentPattern::new(
            EdgeSet::from_edges(prefix.iter().copied()),
            support,
        ));
        // Working set: the frequent rows plus one intersection vector per
        // recursion level.
        let depth_bytes = base_bytes + prefix.len() * intersection.heap_bytes();
        output.stats.peak_bitvector_bytes = output.stats.peak_bitvector_bytes.max(depth_bytes);
        if limits.allows(prefix.len() + 1) {
            extend(
                frequent,
                next_idx,
                prefix,
                &intersection,
                minsup,
                limits,
                base_bytes,
                output,
            );
        }
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_dsmatrix::DsMatrixConfig;
    use fsm_storage::StorageBackend;
    use fsm_stream::WindowConfig;
    use fsm_types::{Batch, Transaction};

    fn paper_matrix() -> DsMatrix {
        let e = |raw: &[u32]| Transaction::from_raw(raw.iter().copied());
        let batches = vec![
            Batch::from_transactions(0, vec![e(&[2, 3, 5]), e(&[0, 4, 5]), e(&[0, 2, 5])]),
            Batch::from_transactions(1, vec![e(&[0, 2, 3, 5]), e(&[0, 3, 4, 5]), e(&[0, 1, 2])]),
            Batch::from_transactions(2, vec![e(&[0, 2, 5]), e(&[0, 2, 3, 5]), e(&[1, 2, 3])]),
        ];
        let mut m = DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(2).unwrap(),
            StorageBackend::Memory,
            6,
        ))
        .unwrap();
        for b in &batches {
            m.ingest_batch(b).unwrap();
        }
        m
    }

    fn pattern_strings(output: &RawMiningOutput) -> Vec<String> {
        let mut v: Vec<String> = output
            .patterns
            .iter()
            .map(|p| format!("{}:{}", p.edges.symbols(), p.support))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn reproduces_example_5() {
        let mut m = paper_matrix();
        let output = mine_vertical(&mut m, 2, MiningLimits::UNBOUNDED).unwrap();
        // Example 5 finds the same 17 collections as the tree-based runs, and
        // spells out the key supports: {a,c}:4, {a,d}:3, {a,f}:4, {b,c}:2,
        // {c,d}:3, {c,f}:3, {d,f}:3.
        assert_eq!(output.patterns.len(), 17);
        let strings = pattern_strings(&output);
        for expected in [
            "{a,c}:4",
            "{a,d}:3",
            "{a,f}:4",
            "{b,c}:2",
            "{c,d}:3",
            "{c,f}:3",
            "{d,f}:3",
            "{a,c,d}:2",
            "{a,c,f}:3",
            "{a,d,f}:3",
            "{a,c,d,f}:2",
        ] {
            assert!(
                strings.contains(&expected.to_string()),
                "missing {expected}"
            );
        }
        assert!(output.stats.intersections > 0);
        assert!(output.stats.peak_bitvector_bytes > 0);
        assert_eq!(output.stats.tree_footprint.trees_built, 0);
    }

    #[test]
    fn agrees_with_the_horizontal_algorithms() {
        let mut m = paper_matrix();
        for minsup in 1..=5 {
            let vertical =
                pattern_strings(&mine_vertical(&mut m, minsup, MiningLimits::UNBOUNDED).unwrap());
            let horizontal = pattern_strings(
                &super::super::horizontal::mine_multi_tree(&mut m, minsup, MiningLimits::UNBOUNDED)
                    .unwrap(),
            );
            assert_eq!(vertical, horizontal, "minsup {minsup}");
        }
    }

    #[test]
    fn respects_pattern_length_limit() {
        let mut m = paper_matrix();
        let output = mine_vertical(&mut m, 2, MiningLimits::with_max_len(2)).unwrap();
        assert!(output.patterns.iter().all(|p| p.len() <= 2));
        let singles = mine_vertical(&mut m, 2, MiningLimits::with_max_len(1)).unwrap();
        assert!(singles.patterns.iter().all(|p| p.len() == 1));
        assert_eq!(singles.stats.intersections, 0);
    }

    #[test]
    fn empty_matrix_and_high_minsup() {
        let mut empty = DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(2).unwrap(),
            StorageBackend::Memory,
            4,
        ))
        .unwrap();
        assert!(mine_vertical(&mut empty, 1, MiningLimits::UNBOUNDED)
            .unwrap()
            .patterns
            .is_empty());
        let mut m = paper_matrix();
        assert!(mine_vertical(&mut m, 7, MiningLimits::UNBOUNDED)
            .unwrap()
            .patterns
            .is_empty());
    }
}
