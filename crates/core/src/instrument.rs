//! Runtime and memory instrumentation attached to every mining run.

use std::fmt;
use std::time::Duration;

use fsm_fptree::growth::Footprint;

/// Measurements collected while one mining call executed.
///
/// These are the quantities the paper's evaluation compares across
/// algorithms: wall-clock runtime (experiment E3 / Figure 2), the number and
/// peak size of in-memory FP-trees (experiment E2), the bit-vector working-set
/// of the vertical algorithms, and how much the post-processing step pruned.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MiningStats {
    /// Wall-clock time of the mining call (capture time is not included; the
    /// paper's "delayed" mining separates the two).
    pub elapsed: Duration,
    /// FP-tree construction footprint (zero for the vertical algorithms).
    pub tree_footprint: Footprint,
    /// Number of bit-vector intersections performed (zero for the horizontal
    /// algorithms).
    pub intersections: u64,
    /// Peak bytes of simultaneously-alive bit vectors: intersection working
    /// set for the vertical algorithms, the materialised row snapshot for the
    /// horizontal ones.
    pub peak_bitvector_bytes: usize,
    /// Number of frequent collections found before the connectivity filter.
    pub patterns_before_postprocess: usize,
    /// Number of collections removed by the connectivity filter (always zero
    /// for the direct algorithm).
    pub patterns_pruned: usize,
    /// Resident bytes of the capture structure at mining time.
    pub capture_resident_bytes: usize,
    /// Bytes the capture structure keeps on disk at mining time.
    pub capture_on_disk_bytes: u64,
    /// Cumulative 64-bit words the capture structure has written since it was
    /// created (the incremental-slide cost counter; see
    /// [`fsm_dsmatrix::DsMatrix::capture_stats`]).
    pub capture_words_written: u64,
    /// 64-bit words of window data the read path materialised *for this mine
    /// call* (the read-amplification counter; see
    /// [`fsm_dsmatrix::DsMatrix::read_stats`]).  Zero on the memory backend,
    /// whose miners borrow the incrementally-maintained row cache zero-copy;
    /// on the disk backends it is the eager row-assembly fallback.
    pub read_words_assembled: u64,
    /// Disk pages the read path fetched *for this mine call* (zero on the
    /// memory backend).  With a [`crate::MinerConfig::cache_budget_bytes`]
    /// budget covering the touched working set, a steady-state disk mine
    /// fetches only the pages the preceding window slide invalidated.
    pub pages_read: u64,
    /// Chunk reads this mine call served from the budgeted decoded-chunk
    /// cache instead of the paged file (always zero with a zero budget).
    pub cache_hits: u64,
    /// Disk-backend view rows this mine call served straight from pinned
    /// cache chunks — rows that paid zero flat-row assembly.  With a budget
    /// covering the touched working set this is every row, and
    /// `read_words_assembled` drops to zero (matching the memory backend);
    /// always zero at budget 0 and on the memory backend.
    pub rows_pinned: u64,
    /// Number of window transactions the run mined over.
    pub window_transactions: usize,
    /// The absolute minimum support the thresholds resolved to.
    pub resolved_minsup: u64,
    /// Cumulative bytes appended to the write-ahead log since the miner was
    /// created (durable configurations only; always zero otherwise).
    pub wal_bytes_written: u64,
    /// Cumulative `fsync` calls issued by the durability layer (WAL commits,
    /// segment syncs, checkpoint writes; durable configurations only).
    pub fsyncs: u64,
    /// Cumulative bytes of checkpoint files written (durable configurations
    /// only).
    pub checkpoint_bytes: u64,
    /// Batches crash recovery replayed from the WAL tail to rebuild this
    /// miner's window (zero unless the miner was built by recovery).
    pub recovery_replayed_batches: u64,
    /// Incremental-maintenance counters of the last
    /// [`crate::StreamMiner::mine_delta`] call (all zero for full re-mines).
    pub delta: DeltaStats,
}

/// Counters of one [`crate::DeltaMiner`] advance: how much of the maintained
/// pattern tree a slide actually touched.
///
/// The headline comparison is `patterns_reexamined` (support evaluations the
/// advance performed: arrival-walk chunk probes, crossing materialisations,
/// sweep screens) against the bit-vector intersections a full re-mine spends
/// at the same epoch — steady state evaluates only the patterns the slide
/// affected, against one segment's chunks, instead of re-screening every
/// candidate against full window rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Window slides (segment departures + arrivals) this advance applied.
    pub slides_applied: u64,
    /// Full window rebuilds this advance fell back to (first call, a minsup
    /// or limit change, or a window discontinuity; steady state is zero).
    pub full_rebuilds: u64,
    /// Live frequent collections tracked after the advance.
    pub patterns_tracked: usize,
    /// Support updates applied to tracked patterns (departure subtractions,
    /// arrival contributions, patterns newly created by a crossing).  May
    /// exceed `patterns_reexamined`: a departure updates a recorded count
    /// without evaluating anything.
    pub patterns_affected: u64,
    /// Support evaluations the advance performed in total — the delta-mine
    /// analogue of a full re-mine's candidate screens.
    pub patterns_reexamined: u64,
    /// Border entries (infrequent extensions armed for promotion) after the
    /// advance.
    pub border_size: usize,
    /// Border-entry support updates this advance applied (each one costs a
    /// segment-chunk intersection or a recorded-contribution subtraction).
    pub border_updates: u64,
    /// Border entries promoted to frequent patterns this advance (each one
    /// re-expands its subtree).
    pub border_promotions: u64,
    /// Subtrees cut because their root's support fell below minsup.
    pub subtree_prunes: u64,
    /// Tree-wide sweeps run because a singleton newly crossed minsup.
    pub singleton_sweeps: u64,
}

impl DeltaStats {
    /// Folds another advance's counters into this accumulator: work counters
    /// add, state sizes (`patterns_tracked`, `border_size`) take the latest
    /// observed maximum.
    pub fn merge(&mut self, other: &DeltaStats) {
        self.slides_applied += other.slides_applied;
        self.full_rebuilds += other.full_rebuilds;
        self.patterns_tracked = self.patterns_tracked.max(other.patterns_tracked);
        self.patterns_affected += other.patterns_affected;
        self.patterns_reexamined += other.patterns_reexamined;
        self.border_size = self.border_size.max(other.border_size);
        self.border_updates += other.border_updates;
        self.border_promotions += other.border_promotions;
        self.subtree_prunes += other.subtree_prunes;
        self.singleton_sweeps += other.singleton_sweeps;
    }
}

impl fmt::Display for DeltaStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tracked, {} re-examined ({} affected), border {} ({} updates, {} promotions), \
             {} prunes, {} sweeps, {} slides, {} rebuilds",
            self.patterns_tracked,
            self.patterns_reexamined,
            self.patterns_affected,
            self.border_size,
            self.border_updates,
            self.border_promotions,
            self.subtree_prunes,
            self.singleton_sweeps,
            self.slides_applied,
            self.full_rebuilds,
        )
    }
}

impl MiningStats {
    /// Folds the statistics of a subtree mined by a parallel worker into this
    /// accumulator: work counters (`intersections`, tree totals, pattern
    /// counts) add, peaks and window-level quantities take the maximum.
    ///
    /// Merging in any order yields the same result, so the parallel engine
    /// stays deterministic regardless of worker scheduling.
    pub fn merge(&mut self, other: &MiningStats) {
        self.elapsed = self.elapsed.max(other.elapsed);
        self.tree_footprint.merge_sequential(&other.tree_footprint);
        self.intersections += other.intersections;
        self.peak_bitvector_bytes = self.peak_bitvector_bytes.max(other.peak_bitvector_bytes);
        self.patterns_before_postprocess += other.patterns_before_postprocess;
        self.patterns_pruned += other.patterns_pruned;
        self.capture_resident_bytes = self
            .capture_resident_bytes
            .max(other.capture_resident_bytes);
        self.capture_on_disk_bytes = self.capture_on_disk_bytes.max(other.capture_on_disk_bytes);
        self.capture_words_written = self.capture_words_written.max(other.capture_words_written);
        self.read_words_assembled = self.read_words_assembled.max(other.read_words_assembled);
        self.pages_read = self.pages_read.max(other.pages_read);
        self.cache_hits = self.cache_hits.max(other.cache_hits);
        self.rows_pinned = self.rows_pinned.max(other.rows_pinned);
        self.window_transactions = self.window_transactions.max(other.window_transactions);
        self.resolved_minsup = self.resolved_minsup.max(other.resolved_minsup);
        // Durability counters are cumulative window-level quantities sampled
        // once per mine, not per-worker work: the maximum is the truth.
        self.wal_bytes_written = self.wal_bytes_written.max(other.wal_bytes_written);
        self.fsyncs = self.fsyncs.max(other.fsyncs);
        self.checkpoint_bytes = self.checkpoint_bytes.max(other.checkpoint_bytes);
        self.recovery_replayed_batches = self
            .recovery_replayed_batches
            .max(other.recovery_replayed_batches);
        self.delta.merge(&other.delta);
    }

    /// Peak working-set estimate of the mining step itself (trees or bit
    /// vectors, whichever the algorithm uses).
    pub fn peak_mining_bytes(&self) -> usize {
        self.tree_footprint
            .peak_tree_bytes
            .max(self.peak_bitvector_bytes)
    }

    /// Number of collections returned after post-processing.
    pub fn patterns_after_postprocess(&self) -> usize {
        self.patterns_before_postprocess
            .saturating_sub(self.patterns_pruned)
    }
}

impl fmt::Display for MiningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} elapsed, {} trees (peak {} bytes), {} intersections (peak {} bytes), \
             {} patterns (-{} pruned), capture {} bytes resident / {} on disk",
            self.elapsed,
            self.tree_footprint.trees_built,
            self.tree_footprint.peak_tree_bytes,
            self.intersections,
            self.peak_bitvector_bytes,
            self.patterns_before_postprocess,
            self.patterns_pruned,
            self.capture_resident_bytes,
            self.capture_on_disk_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_mining_bytes_takes_the_larger_working_set() {
        let mut stats = MiningStats {
            peak_bitvector_bytes: 100,
            ..MiningStats::default()
        };
        stats.tree_footprint.peak_tree_bytes = 50;
        assert_eq!(stats.peak_mining_bytes(), 100);
        stats.tree_footprint.peak_tree_bytes = 500;
        assert_eq!(stats.peak_mining_bytes(), 500);
    }

    #[test]
    fn pattern_counts_are_consistent() {
        let stats = MiningStats {
            patterns_before_postprocess: 17,
            patterns_pruned: 2,
            ..MiningStats::default()
        };
        assert_eq!(stats.patterns_after_postprocess(), 15);
    }

    #[test]
    fn merge_adds_work_and_maxes_peaks() {
        let mut a = MiningStats {
            intersections: 10,
            peak_bitvector_bytes: 100,
            patterns_before_postprocess: 3,
            window_transactions: 6,
            ..MiningStats::default()
        };
        let b = MiningStats {
            intersections: 5,
            peak_bitvector_bytes: 400,
            patterns_before_postprocess: 2,
            window_transactions: 6,
            ..MiningStats::default()
        };
        a.merge(&b);
        assert_eq!(a.intersections, 15);
        assert_eq!(a.peak_bitvector_bytes, 400);
        assert_eq!(a.patterns_before_postprocess, 5);
        assert_eq!(a.window_transactions, 6);
    }

    #[test]
    fn display_includes_headline_numbers() {
        let stats = MiningStats {
            patterns_before_postprocess: 17,
            patterns_pruned: 2,
            intersections: 12,
            ..MiningStats::default()
        };
        let text = stats.to_string();
        assert!(text.contains("17 patterns"));
        assert!(text.contains("12 intersections"));
    }
}
