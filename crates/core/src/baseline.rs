//! Baseline miners over the DSTree and the DSTable (§2.1, §2.2).
//!
//! The paper's first experiment checks that mining with the DSTree or the
//! DSTable returns exactly the same frequent collections as the five
//! DSMatrix algorithms.  These functions mine both baseline structures with
//! recursive FP-growth and return results in the same [`MiningResult`] shape
//! so the accuracy experiment can compare them verbatim.

use std::time::Instant;

use fsm_dstable::DsTable;
use fsm_dstree::DsTree;
use fsm_fptree::{mine_recursive, MiningLimits};
use fsm_types::{EdgeCatalog, EdgeId, EdgeSet, FrequentPattern, Result, Support};

use crate::algorithm::ConnectivityMode;
use crate::connectivity::ConnectivityChecker;
use crate::instrument::MiningStats;
use crate::result::MiningResult;

/// Which baseline capture structure a result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineStructure {
    /// The in-memory DSTree.
    DsTree,
    /// The disk-resident DSTable.
    DsTable,
}

impl std::fmt::Display for BaselineStructure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineStructure::DsTree => f.write_str("dstree"),
            BaselineStructure::DsTable => f.write_str("dstable"),
        }
    }
}

/// Mines all frequent connected collections from a DSTree.
///
/// The DSTree projects *prefix* paths (items smaller than the pivot), so the
/// patterns produced for pivot `x` are those whose largest edge is `x`;
/// together they cover every frequent collection exactly once.
pub fn mine_dstree(
    tree: &DsTree,
    catalog: &EdgeCatalog,
    minsup: Support,
    limits: MiningLimits,
    connectivity: ConnectivityMode,
) -> Result<MiningResult> {
    let start = Instant::now();
    let minsup = minsup.max(1);
    let mut stats = MiningStats {
        capture_resident_bytes: tree.resident_bytes(),
        window_transactions: tree.num_transactions(),
        resolved_minsup: minsup,
        ..MiningStats::default()
    };

    let mut patterns = Vec::new();
    let suffix_limits = suffix_limits(limits);
    for (edge, support) in tree.items() {
        if support < minsup {
            continue;
        }
        patterns.push(FrequentPattern::new(EdgeSet::singleton(edge), support));
        if matches!(limits.max_pattern_len, Some(1)) {
            continue;
        }
        let projected = tree.project(edge);
        if projected.is_empty() {
            continue;
        }
        let outcome = mine_recursive(&projected, minsup, suffix_limits);
        stats.tree_footprint.merge_sequential(&outcome.footprint);
        for (prefix, prefix_support) in outcome.sets {
            let mut edges = prefix;
            edges.push(edge);
            patterns.push(FrequentPattern::new(
                EdgeSet::from_edges(edges),
                prefix_support,
            ));
        }
    }

    stats.patterns_before_postprocess = patterns.len();
    let checker = ConnectivityChecker::new(catalog, connectivity);
    stats.patterns_pruned = checker.prune_disconnected(&mut patterns);
    stats.elapsed = start.elapsed();
    Ok(MiningResult::new(patterns, stats))
}

/// Mines all frequent connected collections from a DSTable.
///
/// The DSTable projects *suffix* chains (items larger than the pivot), so the
/// patterns produced for pivot `x` are those whose smallest edge is `x`.
pub fn mine_dstable(
    table: &mut DsTable,
    catalog: &EdgeCatalog,
    minsup: Support,
    limits: MiningLimits,
    connectivity: ConnectivityMode,
) -> Result<MiningResult> {
    let start = Instant::now();
    let minsup = minsup.max(1);
    let mut stats = MiningStats {
        capture_resident_bytes: table.resident_bytes(),
        capture_on_disk_bytes: table.on_disk_bytes(),
        window_transactions: table.num_transactions(),
        resolved_minsup: minsup,
        ..MiningStats::default()
    };

    let mut patterns = Vec::new();
    let suffix_limits = suffix_limits(limits);
    for (edge, support) in table.singleton_supports()? {
        if support < minsup {
            continue;
        }
        patterns.push(FrequentPattern::new(EdgeSet::singleton(edge), support));
        if matches!(limits.max_pattern_len, Some(1)) {
            continue;
        }
        let projected = table.project(edge)?;
        if projected.is_empty() {
            continue;
        }
        let outcome = mine_recursive(&projected, minsup, suffix_limits);
        stats.tree_footprint.merge_sequential(&outcome.footprint);
        for (suffix, suffix_support) in outcome.sets {
            let mut edges = Vec::with_capacity(suffix.len() + 1);
            edges.push(edge);
            edges.extend(suffix);
            patterns.push(FrequentPattern::new(
                EdgeSet::from_edges(edges),
                suffix_support,
            ));
        }
    }

    stats.patterns_before_postprocess = patterns.len();
    let checker = ConnectivityChecker::new(catalog, connectivity);
    stats.patterns_pruned = checker.prune_disconnected(&mut patterns);
    stats.elapsed = start.elapsed();
    Ok(MiningResult::new(patterns, stats))
}

fn suffix_limits(limits: MiningLimits) -> MiningLimits {
    match limits.max_pattern_len {
        Some(max) => MiningLimits::with_max_len(max.saturating_sub(1).max(1)),
        None => MiningLimits::UNBOUNDED,
    }
}

/// Convenience: mines singletons only (used by a couple of tests and the
/// harness when characterising workloads).
pub fn frequent_edges_of_tree(tree: &DsTree, minsup: Support) -> Vec<(EdgeId, Support)> {
    tree.items()
        .into_iter()
        .filter(|(_, s)| *s >= minsup)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_dstable::DsTableConfig;
    use fsm_dstree::DsTreeConfig;
    use fsm_storage::StorageBackend;
    use fsm_stream::WindowConfig;
    use fsm_types::{Batch, Transaction};

    fn paper_batches() -> Vec<Batch> {
        let e = |raw: &[u32]| Transaction::from_raw(raw.iter().copied());
        vec![
            Batch::from_transactions(0, vec![e(&[2, 3, 5]), e(&[0, 4, 5]), e(&[0, 2, 5])]),
            Batch::from_transactions(1, vec![e(&[0, 2, 3, 5]), e(&[0, 3, 4, 5]), e(&[0, 1, 2])]),
            Batch::from_transactions(2, vec![e(&[0, 2, 5]), e(&[0, 2, 3, 5]), e(&[1, 2, 3])]),
        ]
    }

    fn expected_15() -> Vec<String> {
        let mut v: Vec<String> = vec![
            "{a}:5",
            "{b}:2",
            "{c}:5",
            "{d}:4",
            "{f}:4",
            "{a,c}:4",
            "{a,c,d}:2",
            "{a,c,d,f}:2",
            "{a,c,f}:3",
            "{a,d}:3",
            "{a,d,f}:3",
            "{b,c}:2",
            "{c,d,f}:2",
            "{c,f}:3",
            "{d,f}:3",
        ]
        .into_iter()
        .map(String::from)
        .collect();
        v.sort();
        v
    }

    fn strings(result: &MiningResult) -> Vec<String> {
        let mut v: Vec<String> = result
            .patterns()
            .iter()
            .map(|p| format!("{}:{}", p.edges.symbols(), p.support))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn dstree_baseline_finds_the_15_connected_collections() {
        let catalog = EdgeCatalog::complete(4);
        let mut tree = DsTree::new(DsTreeConfig {
            window: WindowConfig::new(2).unwrap(),
        });
        for batch in paper_batches() {
            tree.ingest_batch(&batch).unwrap();
        }
        let result = mine_dstree(
            &tree,
            &catalog,
            2,
            MiningLimits::UNBOUNDED,
            ConnectivityMode::Exact,
        )
        .unwrap();
        assert_eq!(strings(&result), expected_15());
        assert_eq!(result.stats().patterns_before_postprocess, 17);
        assert_eq!(result.stats().patterns_pruned, 2);
        assert!(result.stats().capture_resident_bytes > 0);
    }

    #[test]
    fn dstable_baseline_finds_the_15_connected_collections() {
        let catalog = EdgeCatalog::complete(4);
        let mut table = DsTable::new(DsTableConfig {
            window: WindowConfig::new(2).unwrap(),
            backend: StorageBackend::Memory,
            expected_edges: 6,
        })
        .unwrap();
        for batch in paper_batches() {
            table.ingest_batch(&batch).unwrap();
        }
        let result = mine_dstable(
            &mut table,
            &catalog,
            2,
            MiningLimits::UNBOUNDED,
            ConnectivityMode::Exact,
        )
        .unwrap();
        assert_eq!(strings(&result), expected_15());
        assert_eq!(result.stats().patterns_pruned, 2);
    }

    #[test]
    fn singleton_only_limits_work_on_baselines() {
        let catalog = EdgeCatalog::complete(4);
        let mut tree = DsTree::new(DsTreeConfig {
            window: WindowConfig::new(2).unwrap(),
        });
        for batch in paper_batches() {
            tree.ingest_batch(&batch).unwrap();
        }
        let result = mine_dstree(
            &tree,
            &catalog,
            2,
            MiningLimits::with_max_len(1),
            ConnectivityMode::Exact,
        )
        .unwrap();
        assert_eq!(result.len(), 5);
        assert_eq!(frequent_edges_of_tree(&tree, 2).len(), 5);
    }

    #[test]
    fn display_names() {
        assert_eq!(BaselineStructure::DsTree.to_string(), "dstree");
        assert_eq!(BaselineStructure::DsTable.to_string(), "dstable");
    }
}
