//! Configuration and builder for the [`crate::miner::StreamMiner`] facade.

use std::path::PathBuf;
use std::sync::Arc;

use fsm_fptree::MiningLimits;
use fsm_storage::{BudgetGovernor, StorageBackend};
use fsm_stream::WindowConfig;
use fsm_types::{EdgeCatalog, MinSup, Result};

use crate::algorithm::{Algorithm, ConnectivityMode};
use crate::miner::StreamMiner;

/// Full configuration of a streaming miner.
///
/// `MinerConfig` is plain data: build one directly when you want to spell
/// every knob out, or go through [`StreamMinerBuilder`] for the fluent path.
///
/// ```
/// use fsm_core::{Algorithm, MinerConfig, StreamMiner};
/// use fsm_storage::StorageBackend;
/// use fsm_types::{EdgeCatalog, MinSup};
///
/// let config = MinerConfig {
///     algorithm: Algorithm::SingleTree,
///     min_support: MinSup::absolute(2),
///     backend: StorageBackend::Memory,
///     catalog: Some(EdgeCatalog::complete(4)),
///     threads: 0, // all available cores; output identical to threads: 1
///     ..MinerConfig::default()
/// };
/// let miner = StreamMiner::new(config).unwrap();
/// assert_eq!(miner.config().algorithm, Algorithm::SingleTree);
/// assert_eq!(miner.config().threads, 0);
/// ```
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Which of the five algorithms to run when [`StreamMiner::mine`] is
    /// called.
    pub algorithm: Algorithm,
    /// Sliding-window size in batches (`w`).
    pub window: WindowConfig,
    /// Minimum support threshold.
    pub min_support: MinSup,
    /// Connectivity decision procedure for the post-processing step.
    pub connectivity: ConnectivityMode,
    /// Optional cap on pattern cardinality.
    pub limits: MiningLimits,
    /// Storage backend of the DSMatrix.
    pub backend: StorageBackend,
    /// Edge vocabulary.  When `None`, the vocabulary is built incrementally
    /// from ingested graph snapshots (and mining transactions directly
    /// requires edges the catalog already knows).
    pub catalog: Option<EdgeCatalog>,
    /// Worker threads for the top-level mining fan-out — per-singleton
    /// subtrees for the vertical algorithms, per-pivot projected databases
    /// for the horizontal (FP-tree) algorithms.
    ///
    /// `1` (the default) mines sequentially; `0` uses every available core;
    /// any other value pins the worker count.  Results are identical for
    /// every setting — per-worker outputs merge back in canonical order.
    pub threads: usize,
    /// Byte budget of the decoded-chunk cache the disk backends read
    /// through.  `0` (the default) disables it: every mine re-reads and
    /// re-assembles the window from disk, the strictest space posture.  With
    /// a budget configured, mining reads rows *straight from pinned cached
    /// chunks* — no per-mine flat-row assembly for any row whose chunks fit
    /// the budget — so a budget covering the touched working set makes
    /// steady-state disk mines fetch only the pages a window slide
    /// invalidated and assemble **zero** words, matching the memory
    /// backend.  Results are byte-identical for every setting.  Ignored by
    /// the memory backend.
    pub cache_budget_bytes: usize,
    /// Durable-directory root for the WAL + checkpoint layer (disk backends
    /// only).  `None` (the default) keeps the matrix volatile; `Some(dir)`
    /// makes every ingested batch crash-recoverable via
    /// [`StreamMiner::recover`].
    pub durable_dir: Option<PathBuf>,
    /// Checkpoint interval in window slides for the durable layer (ignored
    /// without [`MinerConfig::durable_dir`]).
    pub checkpoint_every: usize,
    /// Route [`StreamMiner::mine`] through the incremental
    /// [`crate::DeltaMiner`] ([`StreamMiner::mine_delta`]): the
    /// frequent-pattern set is maintained across window slides and each mine
    /// pays only for the patterns the slide affected, instead of
    /// re-enumerating the window.  Output is byte-identical to a full
    /// re-mine at the same epoch.  `false` by default.
    pub delta: bool,
    /// Process-wide arbitration of [`MinerConfig::cache_budget_bytes`]
    /// across many miners (the multi-tenant service's one memory cap).
    /// `None` (the default) keeps the budget private to this miner; with a
    /// governor, the configured budget becomes this miner's *desired*
    /// budget and the matrix applies whatever the governor's cap and
    /// fair-share rule grant, re-requesting at ingest/view boundaries.
    /// Ignored by the memory backend.  Results are byte-identical either
    /// way — budgets only move bytes between disk and cache.
    pub cache_governor: Option<Arc<BudgetGovernor>>,
}

impl Default for MinerConfig {
    fn default() -> Self {
        Self {
            algorithm: Algorithm::DirectVertical,
            window: WindowConfig::default(),
            min_support: MinSup::default(),
            connectivity: ConnectivityMode::Exact,
            limits: MiningLimits::UNBOUNDED,
            backend: StorageBackend::default(),
            catalog: None,
            threads: 1,
            cache_budget_bytes: 0,
            durable_dir: None,
            checkpoint_every: fsm_dsmatrix::DurabilityConfig::DEFAULT_CHECKPOINT_EVERY,
            delta: false,
            cache_governor: None,
        }
    }
}

/// Builder-style construction of a [`StreamMiner`].
///
/// ```
/// use fsm_core::{Algorithm, StreamMinerBuilder};
/// use fsm_types::{EdgeCatalog, MinSup};
///
/// let miner = StreamMinerBuilder::new()
///     .algorithm(Algorithm::Vertical)
///     .window_batches(5)
///     .min_support(MinSup::relative(0.1))
///     .catalog(EdgeCatalog::complete(4))
///     .build()
///     .unwrap();
/// assert_eq!(miner.config().algorithm, Algorithm::Vertical);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamMinerBuilder {
    config: MinerConfig,
    window_batches: Option<usize>,
    recover: bool,
}

impl StreamMinerBuilder {
    /// Starts from the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the mining algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.config.algorithm = algorithm;
        self
    }

    /// Sets the sliding-window size in batches.
    pub fn window_batches(mut self, batches: usize) -> Self {
        self.window_batches = Some(batches);
        self
    }

    /// Sets the minimum support threshold.
    pub fn min_support(mut self, min_support: MinSup) -> Self {
        self.config.min_support = min_support;
        self
    }

    /// Sets the connectivity decision procedure.
    pub fn connectivity(mut self, mode: ConnectivityMode) -> Self {
        self.config.connectivity = mode;
        self
    }

    /// Caps the pattern cardinality.
    pub fn max_pattern_len(mut self, max: usize) -> Self {
        self.config.limits = MiningLimits::with_max_len(max);
        self
    }

    /// Selects the DSMatrix storage backend.
    pub fn backend(mut self, backend: StorageBackend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Sets the worker-thread count for mining — all five algorithms honour
    /// it (`0` = all available cores, `1` = sequential), and every setting
    /// produces byte-identical results.
    ///
    /// ```
    /// use fsm_core::{Algorithm, StreamMinerBuilder};
    /// use fsm_types::EdgeCatalog;
    ///
    /// let miner = StreamMinerBuilder::new()
    ///     .algorithm(Algorithm::TopDown)
    ///     .threads(0) // fan the per-pivot FP-trees over every core
    ///     .catalog(EdgeCatalog::complete(4))
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(miner.config().threads, 0);
    /// ```
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Budgets the decoded-chunk cache of the disk backends (`0` disables
    /// it; ignored by the memory backend).  Mining output is byte-identical
    /// for every budget — only the per-mine read work changes: rows whose
    /// chunks fit the budget are mined straight from pinned cached chunks
    /// (zero assembly, pages only for what the last slide invalidated),
    /// the rest fall back to eager per-mine assembly.
    ///
    /// ```
    /// use fsm_core::StreamMinerBuilder;
    /// use fsm_storage::StorageBackend;
    /// use fsm_types::EdgeCatalog;
    ///
    /// let miner = StreamMinerBuilder::new()
    ///     .backend(StorageBackend::DiskTemp)
    ///     .cache_budget_bytes(1 << 20) // pin up to 1 MiB of decoded chunks
    ///     .catalog(EdgeCatalog::complete(4))
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(miner.config().cache_budget_bytes, 1 << 20);
    /// ```
    pub fn cache_budget_bytes(mut self, budget_bytes: usize) -> Self {
        self.config.cache_budget_bytes = budget_bytes;
        self
    }

    /// Makes the window durable: every ingested batch is WAL-logged and
    /// `fsync`ed before it is applied, checkpoints land in `dir`, and a
    /// crashed process can rebuild the exact window with
    /// [`StreamMiner::recover`].  Requires a disk backend.
    ///
    /// ```
    /// use fsm_core::StreamMinerBuilder;
    /// use fsm_storage::StorageBackend;
    /// use fsm_types::EdgeCatalog;
    ///
    /// let dir = fsm_storage::TempDir::new("miner-durable").unwrap();
    /// let miner = StreamMinerBuilder::new()
    ///     .backend(StorageBackend::DiskTemp)
    ///     .durable(dir.path())
    ///     .checkpoint_every(4)
    ///     .catalog(EdgeCatalog::complete(4))
    ///     .build()
    ///     .unwrap();
    /// assert!(miner.is_durable());
    /// ```
    pub fn durable(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.config.durable_dir = Some(dir.into());
        self
    }

    /// Sets the durable layer's checkpoint interval in window slides
    /// (ignored without [`StreamMinerBuilder::durable`]).
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.config.checkpoint_every = every;
        self
    }

    /// Subordinates this miner's chunk-cache budget to a process-wide
    /// [`BudgetGovernor`] (see [`MinerConfig::cache_governor`]).
    pub fn cache_governor(mut self, governor: Arc<BudgetGovernor>) -> Self {
        self.config.cache_governor = Some(governor);
        self
    }

    /// Makes [`StreamMinerBuilder::build`] recover the window from the
    /// durable directory ([`StreamMiner::recover`]) instead of starting
    /// fresh.  Requires [`StreamMinerBuilder::durable`].
    pub fn recover(mut self) -> Self {
        self.recover = true;
        self
    }

    /// Enables delta mining: [`StreamMiner::mine`] maintains the
    /// frequent-pattern set across window slides
    /// ([`StreamMiner::mine_delta`]) instead of re-enumerating the window on
    /// every call.  Output stays byte-identical to a full re-mine; the
    /// incremental work performed is reported in
    /// [`crate::MiningStats::delta`].
    ///
    /// ```
    /// use fsm_core::StreamMinerBuilder;
    /// use fsm_types::{Batch, EdgeCatalog, MinSup, Transaction};
    ///
    /// let mut miner = StreamMinerBuilder::new()
    ///     .window_batches(2)
    ///     .min_support(MinSup::absolute(2))
    ///     .delta(true)
    ///     .catalog(EdgeCatalog::complete(4))
    ///     .build()
    ///     .unwrap();
    /// for id in 0..3 {
    ///     let batch = Batch::from_transactions(id, vec![
    ///         Transaction::from_raw([0, 2, 5]),
    ///         Transaction::from_raw([2, 3, 5]),
    ///     ]);
    ///     miner.ingest_batch(&batch).unwrap();
    ///     let result = miner.mine().unwrap(); // incremental after the first call
    ///     assert!(result.stats().delta.patterns_tracked > 0);
    /// }
    /// ```
    pub fn delta(mut self, delta: bool) -> Self {
        self.config.delta = delta;
        self
    }

    /// Provides the edge vocabulary up front.
    pub fn catalog(mut self, catalog: EdgeCatalog) -> Self {
        self.config.catalog = Some(catalog);
        self
    }

    /// Declares the vertex universe as `1..=n`, using the complete graph over
    /// it as the edge vocabulary (the convention of the paper's running
    /// example).
    pub fn complete_graph_vertices(mut self, n: u32) -> Self {
        self.config.catalog = Some(EdgeCatalog::complete(n));
        self
    }

    /// Builds the miner.
    pub fn build(mut self) -> Result<StreamMiner> {
        if let Some(batches) = self.window_batches {
            self.config.window = WindowConfig::new(batches)?;
        }
        if self.recover {
            StreamMiner::recover(self.config)
        } else {
            StreamMiner::new(self.config)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_is_sensible() {
        let config = MinerConfig::default();
        assert_eq!(config.algorithm, Algorithm::DirectVertical);
        assert_eq!(config.window.window_batches, 5);
        assert_eq!(config.connectivity, ConnectivityMode::Exact);
        assert!(config.catalog.is_none());
    }

    #[test]
    fn builder_sets_every_knob() {
        let miner = StreamMinerBuilder::new()
            .algorithm(Algorithm::MultiTree)
            .window_batches(3)
            .min_support(MinSup::absolute(4))
            .connectivity(ConnectivityMode::PaperRule)
            .max_pattern_len(3)
            .backend(StorageBackend::Memory)
            .threads(4)
            .complete_graph_vertices(4)
            .build()
            .unwrap();
        let config = miner.config();
        assert_eq!(config.algorithm, Algorithm::MultiTree);
        assert_eq!(config.window.window_batches, 3);
        assert_eq!(config.connectivity, ConnectivityMode::PaperRule);
        assert_eq!(config.limits.max_pattern_len, Some(3));
        assert_eq!(config.threads, 4);
        assert_eq!(miner.catalog().num_edges(), 6);
    }

    #[test]
    fn zero_window_is_rejected() {
        assert!(StreamMinerBuilder::new().window_batches(0).build().is_err());
    }
}
