//! Delta mining: maintain the frequent-pattern set across window slides
//! instead of re-enumerating the window on every mine.
//!
//! A window slide changes exactly one segment in and one out, so between
//! consecutive epochs the frequent-pattern set differs only where a support
//! count crossed the minimum-support threshold.  The [`DeltaMiner`] exploits
//! this with three pieces of state, all keyed to the frozen
//! [`EpochSnapshot`]s of the capture structure:
//!
//! 1. **Per-segment support contributions.**  Every tracked pattern's support
//!    is stored split by window segment (recorded with
//!    [`fsm_storage::BitVec::count_range`] over the segment column ranges
//!    when the pattern is first materialised).  A departing segment is then
//!    *subtracted* — one integer per pattern the segment actually supported —
//!    and an arriving segment is *added* by a top-down walk over the pattern
//!    tree that intersects only the new segment's chunks, pruning every
//!    subtree the segment does not reach.  Patterns untouched by the slide
//!    are never visited.
//! 2. **A border set, maintained exactly.**  Every enumeration screen that
//!    *fails* (an extension whose support is below minsup) is remembered on
//!    its parent node as a `BorderEntry` carrying its own per-segment
//!    contributions, instead of being forgotten the way a full re-mine
//!    forgets it.  Border supports then ride the same slide machinery as
//!    tracked patterns: a departing segment subtracts its recorded
//!    contribution, and the arrival walk adds one chunk intersection per
//!    entry of each visited node (the entry's tidset is nested in its
//!    parent's, so a skipped subtree provably contributes nothing).  An
//!    entry's support is therefore exact at every epoch — a candidate
//!    promotes at precisely the slide where it crosses minsup, with no
//!    conservative re-counting in between.
//! 3. **Targeted re-expansion.**  Only when a support count crosses minsup
//!    does enumeration run, and only under the affected prefix: a border
//!    crossing materialises that one candidate and re-expands just its
//!    subtree via the same screen-then-materialise kernels the §3.4 vertical
//!    miner uses; a singleton crossing up runs a canonical-order sweep that
//!    visits only tree paths whose screens pass.  Subtrees whose root fell
//!    below minsup are cut in one step (sound by anti-monotonicity), their
//!    contribution records moving onto the border entry left behind for the
//!    reverse crossing.
//!
//! Steady state — no threshold crossings — therefore costs O(patterns and
//! border candidates whose support the slide changed), not O(window): a mine
//! call subtracts the departed segment's contribution records, walks the
//! arriving segment's chunks down the tree, and collects the result, each
//! touch costing one segment-sized chunk operation rather than a
//! window-sized row intersection.
//!
//! The full re-mine stays authoritative: `StreamMiner::mine_delta` output is
//! byte-identical to [`crate::StreamMiner::mine`] at the same epoch,
//! property-tested across randomized slide sequences in
//! `crates/core/tests/delta_agreement.rs` with a brute-force support recount
//! shadowing the border bookkeeping.

use std::collections::{BTreeMap, HashMap};

use fsm_dsmatrix::{EpochSnapshot, WindowView};
use fsm_fptree::MiningLimits;
use fsm_storage::{BitVec, EpochSegment, RowRef};
use fsm_types::{EdgeId, EdgeSet, FrequentPattern, FsmError, Result, Support};

use crate::instrument::DeltaStats;

/// Generational handle to a pattern-tree slot: stale handles (left behind in
/// contribution indexes after a subtree prune) resolve to `None` instead of
/// aliasing a reused slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NodeRef {
    idx: u32,
    generation: u32,
}

/// One tracked frequent collection: a node of the Eclat-style prefix tree,
/// identified by the edges on its root path (ascending canonical order).
#[derive(Debug)]
struct Node {
    edge: EdgeId,
    parent: Option<NodeRef>,
    support: Support,
    /// Per-segment support contributions: `(segment uid, count)` for every
    /// window segment with at least one supporting column.  Always sums to
    /// `support`.
    contribs: Vec<(u64, Support)>,
    /// Child nodes, ascending by child edge.
    children: Vec<NodeRef>,
    /// Infrequent extensions of this node, ascending by edge — the border.
    border: Vec<BorderEntry>,
}

/// An arena slot; `generation` increments on every free so old [`NodeRef`]s
/// die with their node.
#[derive(Debug)]
struct Slot {
    generation: u32,
    node: Option<Node>,
}

/// A remembered failed extension: pattern `parent ∪ {edge}` with its exact
/// support (< minsup until the slide that promotes it) and the per-segment
/// contributions that keep that support exact across slides.
///
/// `seq` uniquely identifies this arming: the per-segment indexes reference
/// entries as `(parent, edge, seq)`, so rows pointing at a superseded entry
/// (re-armed by a sweep, or consumed by a promotion) are skipped instead of
/// corrupting the replacement's support.
///
/// `deep` marks entries created by an interrupted singleton sweep: promotion
/// must resume the sweep below the parent (the failed screen skipped the
/// descendants without recording their own entries), whereas entries from
/// ordinary expansion or subtree prunes re-expand only their own subtree.
#[derive(Debug, Clone)]
struct BorderEntry {
    edge: EdgeId,
    support: Support,
    seq: u64,
    deep: bool,
    /// Per-segment support contributions, like [`Node::contribs`].
    contribs: Vec<(u64, Support)>,
}

/// Incrementally maintains the set of frequent edge collections across
/// window slides.
///
/// Drive it with [`DeltaMiner::advance`] once per mine against the current
/// [`EpochSnapshot`]; the first call (and any call after a minsup, limit, or
/// window discontinuity) falls back to a full rebuild, every later call pays
/// only for the patterns the slide affected.  The returned collections are
/// exactly what the §3.4 vertical enumeration would produce at the same
/// epoch — connected and disconnected alike, so the caller applies the same
/// §3.5 connectivity post-processing as a full mine.
///
/// The preferred entry point is the [`crate::StreamMiner::mine_delta`]
/// facade, which wires snapshots, threshold resolution, and post-processing
/// exactly like [`crate::StreamMiner::mine`].
#[derive(Debug)]
pub struct DeltaMiner {
    /// Resolved absolute threshold the current state was built against.
    minsup: Support,
    limits: MiningLimits,
    /// Epoch of the snapshot the state reflects (`None` before first use).
    epoch: Option<u64>,
    num_items: usize,
    /// Window segments the state reflects: `(uid, cols)`, oldest first.
    segments: Vec<(u64, usize)>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Live length-1 patterns, by edge.
    roots: BTreeMap<EdgeId, NodeRef>,
    /// Per-segment contribution index for tracked patterns: segment uid →
    /// nodes it supports.  The counts live on the nodes; a departing segment
    /// drains its index row and subtracts each node's recorded contribution.
    contribs: HashMap<u64, Vec<NodeRef>>,
    /// Per-segment contribution index for border entries: segment uid →
    /// `(parent, edge, seq)` of entries the segment supports.
    border_index: HashMap<u64, Vec<(NodeRef, EdgeId, u64)>>,
    /// Next border-entry arming sequence number.
    next_seq: u64,
    /// Which singletons are currently frequent (extension alphabet).
    frequent: Vec<bool>,
    live_nodes: usize,
    border_entries: usize,
    stats: DeltaStats,
}

impl Default for DeltaMiner {
    fn default() -> Self {
        Self::new()
    }
}

impl DeltaMiner {
    /// Creates an empty miner; the first [`DeltaMiner::advance`] performs a
    /// full rebuild.
    pub fn new() -> Self {
        Self {
            minsup: 0,
            limits: MiningLimits::UNBOUNDED,
            epoch: None,
            num_items: 0,
            segments: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            roots: BTreeMap::new(),
            contribs: HashMap::new(),
            border_index: HashMap::new(),
            next_seq: 0,
            frequent: Vec::new(),
            live_nodes: 0,
            border_entries: 0,
            stats: DeltaStats::default(),
        }
    }

    /// Counters of the most recent [`DeltaMiner::advance`] call.
    pub fn stats(&self) -> &DeltaStats {
        &self.stats
    }

    /// Number of frequent collections currently tracked.
    pub fn patterns_tracked(&self) -> usize {
        self.live_nodes
    }

    /// Number of border (infrequent but remembered) candidates currently
    /// armed.
    pub fn border_size(&self) -> usize {
        self.border_entries
    }

    /// Brings the maintained pattern set to `snapshot`'s epoch and returns
    /// every frequent edge collection there (pre-connectivity, like the raw
    /// §3.4 output; unsorted — [`crate::MiningResult::new`] canonicalises).
    ///
    /// Incremental when the snapshot continues the previously seen window
    /// under the same resolved `minsup` and `limits`; otherwise (first call,
    /// threshold re-resolution, domain growth, or a window discontinuity of
    /// more than the full window) it falls back to one full rebuild and
    /// records that in [`DeltaStats::full_rebuilds`].
    ///
    /// Errors surface a corrupt maintained state ([`FsmError::CorruptStructure`])
    /// instead of panicking, so one tenant's damaged delta state cannot abort
    /// a multi-tenant process.
    pub fn advance(
        &mut self,
        snapshot: &EpochSnapshot,
        minsup: Support,
        limits: MiningLimits,
    ) -> Result<Vec<FrequentPattern>> {
        let minsup = minsup.max(1);
        self.stats = DeltaStats::default();
        let unchanged_config = self.minsup == minsup
            && self.limits == limits
            && self.num_items == snapshot.num_items();
        if self.epoch == Some(snapshot.epoch()) && unchanged_config {
            self.finish_stats();
            return self.collect();
        }
        let metas: Vec<(u64, usize)> = snapshot
            .segments()
            .iter()
            .map(|seg| (seg.uid(), seg.cols()))
            .collect();
        let overlap = self.window_overlap(&metas);
        let contiguous = overlap > 0 || self.segments.is_empty() || metas.is_empty();
        if self.epoch.is_some() && unchanged_config && contiguous {
            self.apply_slides(snapshot, &metas, overlap)?;
        } else {
            self.rebuild(snapshot, &metas, minsup, limits)?;
        }
        self.epoch = Some(snapshot.epoch());
        self.finish_stats();
        self.collect()
    }

    fn finish_stats(&mut self) {
        self.stats.patterns_tracked = self.live_nodes;
        self.stats.border_size = self.border_entries;
    }

    /// Longest suffix of the tracked window that is a prefix of the
    /// snapshot's window (slides drop oldest segments and append newest).
    fn window_overlap(&self, metas: &[(u64, usize)]) -> usize {
        let max_k = self.segments.len().min(metas.len());
        (0..=max_k)
            .rev()
            .find(|&k| self.segments[self.segments.len() - k..] == metas[..k])
            .unwrap_or(0)
    }

    // ----- incremental path ------------------------------------------------

    fn apply_slides(
        &mut self,
        snapshot: &EpochSnapshot,
        metas: &[(u64, usize)],
        overlap: usize,
    ) -> Result<()> {
        let departed: Vec<u64> = self.segments[..self.segments.len() - overlap]
            .iter()
            .map(|(uid, _)| *uid)
            .collect();
        let arrivals = &snapshot.segments()[overlap..];
        self.stats.slides_applied = departed.len().max(arrivals.len()) as u64;

        let mut touched = Vec::new();
        for uid in departed {
            self.subtract_segment(uid, &mut touched);
        }
        self.segments = metas.to_vec();
        let mut crossings = Vec::new();
        for seg in arrivals {
            self.add_segment(seg, &mut crossings)?;
        }
        self.prune_touched(touched)?;

        // Threshold crossings: only they need row access, so the view (and
        // with it any disk-backend row decoding) is built lazily — a steady
        // slide never touches window rows at all.  The singleton alphabet is
        // refreshed first so the expansions below extend over it.
        let promoted = self.detect_singleton_crossings(snapshot);
        if !promoted.is_empty() || !crossings.is_empty() {
            let view = snapshot.view();
            for (parent, edge) in crossings {
                self.promote_border(&view, parent, edge)?;
            }
            for edge in promoted {
                self.promote_singleton(snapshot, &view, edge)?;
            }
        }
        Ok(())
    }

    /// Subtracts one departed segment's recorded contributions from tracked
    /// patterns and border entries alike.  Exact: a stored support is always
    /// the sum of its live contribution records, so removal leaves the
    /// support over the remaining segments.
    fn subtract_segment(&mut self, uid: u64, touched: &mut Vec<NodeRef>) {
        for nref in self.contribs.remove(&uid).unwrap_or_default() {
            let Some(node) = self.node_mut(nref) else {
                continue;
            };
            let Some(pos) = node.contribs.iter().position(|(u, _)| *u == uid) else {
                continue;
            };
            let (_, contrib) = node.contribs.remove(pos);
            node.support -= contrib;
            // A subtraction is O(1) integer work on a recorded count, not a
            // support evaluation — it counts as affected, not re-examined.
            self.stats.patterns_affected += 1;
            touched.push(nref);
        }
        for (parent, edge, seq) in self.border_index.remove(&uid).unwrap_or_default() {
            let Some(node) = self.node_mut(parent) else {
                continue;
            };
            let Ok(i) = node.border.binary_search_by_key(&edge, |b| b.edge) else {
                continue;
            };
            let entry = &mut node.border[i];
            if entry.seq != seq {
                continue; // superseded arming; its records died with it
            }
            let Some(pos) = entry.contribs.iter().position(|(u, _)| *u == uid) else {
                continue;
            };
            let (_, contrib) = entry.contribs.remove(pos);
            entry.support -= contrib;
            self.stats.border_updates += 1;
        }
    }

    /// Adds one arriving segment: a top-down walk intersecting only the
    /// segment's chunks.  A node whose pattern the segment does not support
    /// prunes its whole subtree — and that subtree's border — from the walk
    /// (every tidset below is nested in the node's, so the segment cannot
    /// contribute to any of them), keeping the cost proportional to what the
    /// segment actually touches.  Border entries that cross minsup are
    /// collected for promotion once the walk is done.
    fn add_segment(
        &mut self,
        seg: &EpochSegment,
        crossings: &mut Vec<(NodeRef, EdgeId)>,
    ) -> Result<()> {
        let mut records = Vec::new();
        let roots: Vec<NodeRef> = self.roots.values().copied().collect();
        for root in roots {
            self.add_segment_walk(seg, root, None, &mut records, crossings)?;
        }
        if !records.is_empty() {
            self.contribs.insert(seg.uid(), records);
        }
        Ok(())
    }

    fn add_segment_walk(
        &mut self,
        seg: &EpochSegment,
        nref: NodeRef,
        prefix_chunk: Option<&BitVec>,
        records: &mut Vec<NodeRef>,
        crossings: &mut Vec<(NodeRef, EdgeId)>,
    ) -> Result<()> {
        self.stats.patterns_reexamined += 1;
        let edge = self.live(nref, "segment-arrival walk")?.edge;
        let Some(own) = seg.chunk(edge.index()) else {
            return Ok(());
        };
        let (contrib, materialised) = match prefix_chunk {
            // Root level: the pattern's columns within the segment are the
            // edge's chunk itself — no intersection, the popcount is free.
            None => (own.count_ones(), None),
            Some(prefix) => {
                let mut buf = BitVec::new();
                let contrib = prefix.and_into(own, &mut buf);
                (contrib, Some(buf))
            }
        };
        if contrib == 0 {
            return Ok(());
        }
        let uid = seg.uid();
        {
            let node = self.live_mut(nref, "segment-arrival walk")?;
            node.support += contrib;
            node.contribs.push((uid, contrib));
        }
        self.stats.patterns_affected += 1;
        records.push(nref);

        let chunk: &BitVec = materialised.as_ref().unwrap_or(own);
        // Border entries ride the same walk: each costs one chunk-sized
        // intersection against the arriving segment (entry tidset = node
        // tidset ∧ singleton row, restricted to this segment's columns).
        let gains: Vec<(EdgeId, u64, Support)> = self
            .live(nref, "segment-arrival walk")?
            .border
            .iter()
            .filter_map(|entry| {
                let gain = seg
                    .chunk(entry.edge.index())
                    .map_or(0, |row| chunk.and_count(row));
                (gain > 0).then_some((entry.edge, entry.seq, gain))
            })
            .collect();
        let minsup = self.minsup;
        for (border_edge, seq, gain) in gains {
            let mut recorded = false;
            let mut crossed = false;
            if let Some(node) = self.node_mut(nref) {
                if let Ok(i) = node.border.binary_search_by_key(&border_edge, |b| b.edge) {
                    let entry = &mut node.border[i];
                    if entry.seq == seq {
                        let was = entry.support;
                        entry.support += gain;
                        entry.contribs.push((uid, gain));
                        recorded = true;
                        crossed = was < minsup && entry.support >= minsup;
                    }
                }
            }
            if recorded {
                self.stats.border_updates += 1;
                self.border_index
                    .entry(uid)
                    .or_default()
                    .push((nref, border_edge, seq));
            }
            if crossed {
                crossings.push((nref, border_edge));
            }
        }

        let children = self.live(nref, "segment-arrival walk")?.children.clone();
        for child in children {
            self.add_segment_walk(seg, child, Some(chunk), records, crossings)?;
        }
        Ok(())
    }

    /// Cuts every touched node whose support fell below minsup, subtree and
    /// all (anti-monotone: no superset can stay frequent), leaving a border
    /// entry on the parent so the reverse crossing can resurrect it exactly.
    fn prune_touched(&mut self, touched: Vec<NodeRef>) -> Result<()> {
        for nref in touched {
            let Some(node) = self.node(nref) else {
                continue; // already freed by an ancestor's prune
            };
            if node.support >= self.minsup {
                continue;
            }
            self.prune_subtree(nref)?;
        }
        Ok(())
    }

    fn prune_subtree(&mut self, nref: NodeRef) -> Result<()> {
        self.stats.subtree_prunes += 1;
        let (edge, support, parent, contribs) = {
            let node = self.live_mut(nref, "subtree prune")?;
            (
                node.edge,
                node.support,
                node.parent,
                std::mem::take(&mut node.contribs),
            )
        };
        match parent {
            // A root going infrequent is a singleton crossing; those are
            // re-detected from the snapshot's exact support counters, so no
            // border entry is needed.
            None => {
                self.roots.remove(&edge);
            }
            Some(parent) => {
                if let Some(node) = self.node_mut(parent) {
                    node.children.retain(|c| *c != nref);
                }
                // The pruned node's contribution records move onto the
                // border entry, so its support keeps sliding exactly.
                self.arm_border(parent, edge, support, false, contribs)?;
            }
        }
        self.free_subtree(nref);
        Ok(())
    }

    /// Updates the frequent-singleton alphabet against the snapshot's frozen
    /// support counters and returns the edges that newly crossed *up*.
    /// Downward crossings need no work here: every tracked superset lost
    /// support through exact subtraction and was already pruned, and a
    /// border entry's maintained support can never reach minsup while its
    /// singleton's is below it.
    fn detect_singleton_crossings(&mut self, snapshot: &EpochSnapshot) -> Vec<EdgeId> {
        let mut promoted = Vec::new();
        for idx in 0..self.num_items {
            let now = snapshot.singleton_support(idx) >= self.minsup;
            if now == self.frequent[idx] {
                continue;
            }
            self.frequent[idx] = now;
            if now {
                promoted.push(EdgeId::new(idx as u32));
            }
        }
        promoted
    }

    /// Promotes a border entry whose maintained support crossed minsup:
    /// materialises that one candidate's tidset, attaches it, and re-expands
    /// only its subtree (resuming the interrupted sweep first for `deep`
    /// entries).
    fn promote_border(
        &mut self,
        view: &WindowView<'_>,
        parent: NodeRef,
        edge: EdgeId,
    ) -> Result<()> {
        let Some(node) = self.node(parent) else {
            return Ok(()); // parent pruned after the walk queued this crossing
        };
        let Ok(i) = node.border.binary_search_by_key(&edge, |b| b.edge) else {
            return Ok(()); // consumed by an earlier promotion this advance
        };
        let entry = &node.border[i];
        if entry.support < self.minsup {
            return Ok(());
        }
        let deep = entry.deep;
        let len = self.path_len(parent)?;
        if !self.limits.allows(len + 1) {
            self.remove_border(parent, edge);
            return Ok(());
        }
        self.stats.patterns_reexamined += 1;
        let mut path = BitVec::new();
        let mut buf = BitVec::new();
        let support = match (self.path_tidset(view, parent, &mut path)?, view.row(edge)) {
            (true, Some(row)) => RowRef::Flat(&path).and_into(&row, &mut buf),
            _ => 0,
        };
        debug_assert_eq!(
            support,
            self.live(parent, "border promotion")?.border[i].support,
            "maintained border support diverged from the materialised tidset"
        );
        self.remove_border(parent, edge);
        let child = self.attach_child(parent, edge, support, &buf)?;
        self.stats.border_promotions += 1;
        self.expand(view, child, &RowRef::Flat(&buf), len + 1)?;
        if deep {
            // Resume the singleton sweep this entry interrupted: the failed
            // screen had skipped the parent's descendants.
            if let Some(row) = view.row(edge) {
                self.sweep_children(view, parent, &RowRef::Flat(&path), len, edge, &row)?;
            }
        }
        Ok(())
    }

    /// Handles a singleton newly crossing minsup: creates its root (with
    /// full expansion) and runs a canonical-order sweep extending every
    /// tracked pattern with `edge` where the screen passes.  Failed screens
    /// become `deep` border entries — the sweep stops there, and a later
    /// promotion resumes it below that point.
    fn promote_singleton(
        &mut self,
        snapshot: &EpochSnapshot,
        view: &WindowView<'_>,
        edge: EdgeId,
    ) -> Result<()> {
        self.stats.singleton_sweeps += 1;
        if !self.limits.allows(1) {
            return Ok(());
        }
        let support = snapshot.singleton_support(edge.index());
        let contribs = self.singleton_contribs(snapshot, edge);
        let nref = self.alloc(Node {
            edge,
            parent: None,
            support,
            contribs: Vec::new(),
            children: Vec::new(),
            border: Vec::new(),
        });
        self.roots.insert(edge, nref);
        self.stats.patterns_affected += 1;
        self.stats.patterns_reexamined += 1;
        self.set_node_contribs(nref, contribs);
        let Some(row) = view.row(edge) else {
            return Ok(());
        };
        self.expand(view, nref, &row, 1)?;
        self.sweep(view, edge, &row)
    }

    /// Per-segment contributions of a singleton, straight from the
    /// snapshot's frozen segment chunks.
    fn singleton_contribs(&self, snapshot: &EpochSnapshot, edge: EdgeId) -> Vec<(u64, Support)> {
        let mut contribs = Vec::new();
        for (seg_idx, &(uid, _)) in self.segments.iter().enumerate() {
            let contrib = snapshot.segment_support(seg_idx, edge.index());
            if contrib > 0 {
                contribs.push((uid, contrib));
            }
        }
        contribs
    }

    /// Installs a node's contribution records and indexes them per segment.
    fn set_node_contribs(&mut self, nref: NodeRef, contribs: Vec<(u64, Support)>) {
        for &(uid, _) in &contribs {
            self.contribs.entry(uid).or_default().push(nref);
        }
        if let Some(node) = self.node_mut(nref) {
            node.contribs = contribs;
        }
    }

    /// Full Eclat expansion of one node over the currently frequent
    /// alphabet: the exact materialise-and-count loop of the §3.4 vertical
    /// miner, except failed screens are remembered as border entries (whose
    /// per-segment contributions are split from the materialised tidset).
    fn expand(
        &mut self,
        view: &WindowView<'_>,
        nref: NodeRef,
        tidset: &RowRef<'_>,
        len: usize,
    ) -> Result<()> {
        if !self.limits.allows(len + 1) {
            return Ok(());
        }
        let last = self.live(nref, "expansion")?.edge;
        for idx in last.index() + 1..self.num_items {
            if !self.frequent[idx] {
                continue;
            }
            let edge = EdgeId::new(idx as u32);
            self.stats.patterns_reexamined += 1;
            let Some(row) = view.row(edge) else {
                continue;
            };
            let mut buf = BitVec::new();
            let support = tidset.and_into(&row, &mut buf);
            if support >= self.minsup {
                let child = self.attach_child(nref, edge, support, &buf)?;
                self.expand(view, child, &RowRef::Flat(&buf), len + 1)?;
            } else {
                let contribs = self.split_contribs(&buf);
                self.arm_border(nref, edge, support, false, contribs)?;
            }
        }
        Ok(())
    }

    /// Creates a child node with its per-segment contribution records split
    /// from the materialised tidset.
    fn attach_child(
        &mut self,
        parent: NodeRef,
        edge: EdgeId,
        support: Support,
        tidset: &BitVec,
    ) -> Result<NodeRef> {
        let child = self.alloc(Node {
            edge,
            parent: Some(parent),
            support,
            contribs: Vec::new(),
            children: Vec::new(),
            border: Vec::new(),
        });
        self.insert_child(parent, child, edge)?;
        let contribs = self.split_contribs(tidset);
        self.set_node_contribs(child, contribs);
        self.stats.patterns_affected += 1;
        Ok(child)
    }

    /// Splits a snapshot-aligned tidset (column 0 = window column 0) into
    /// per-segment `(uid, count)` contributions.
    fn split_contribs(&self, tidset: &BitVec) -> Vec<(u64, Support)> {
        let mut out = Vec::new();
        let mut start = 0usize;
        for &(uid, cols) in &self.segments {
            let contrib = tidset.count_range(start, start + cols);
            if contrib > 0 {
                out.push((uid, contrib));
            }
            start += cols;
        }
        out
    }

    /// Canonical-order sweep for a singleton `edge` that newly became
    /// frequent: visits every tracked pattern whose edges all precede
    /// `edge`, screening the extension against the window rows.
    fn sweep(&mut self, view: &WindowView<'_>, edge: EdgeId, row: &RowRef<'_>) -> Result<()> {
        let roots: Vec<NodeRef> = self.roots.range(..edge).map(|(_, r)| *r).collect();
        for root in roots {
            let root_edge = self.live(root, "singleton sweep")?.edge;
            let Some(root_row) = view.row(root_edge) else {
                continue;
            };
            self.sweep_node(view, root, &root_row, 1, edge, row)?;
        }
        Ok(())
    }

    fn sweep_node(
        &mut self,
        view: &WindowView<'_>,
        nref: NodeRef,
        tidset: &RowRef<'_>,
        len: usize,
        edge: EdgeId,
        row: &RowRef<'_>,
    ) -> Result<()> {
        if !self.limits.allows(len + 1) {
            return Ok(());
        }
        // When several singletons promote in one advance, an earlier
        // promotion's expansion may already have attached this extension
        // (its frequent flag was raised before any promotion ran).  Such a
        // subtree was built against the current window, so the sweep only
        // needs to keep descending past it.
        let already_attached = self
            .live(nref, "singleton sweep")?
            .children
            .iter()
            .any(|&c| self.node(c).is_some_and(|n| n.edge == edge));
        if already_attached {
            return self.sweep_children(view, nref, tidset, len, edge, row);
        }
        self.stats.patterns_reexamined += 1;
        let mut buf = BitVec::new();
        let support = tidset.and_into(row, &mut buf);
        // A fresh exact evaluation supersedes any remembered border entry
        // for this candidate.
        self.remove_border(nref, edge);
        if support >= self.minsup {
            let child = self.attach_child(nref, edge, support, &buf)?;
            self.expand(view, child, &RowRef::Flat(&buf), len + 1)?;
        } else {
            let contribs = self.split_contribs(&buf);
            self.arm_border(nref, edge, support, true, contribs)?;
            // Anti-monotone: no descendant can support the extension either.
            return Ok(());
        }
        self.sweep_children(view, nref, tidset, len, edge, row)
    }

    /// Continues a sweep into the children of `nref` whose edge precedes the
    /// swept singleton (extensions stay in canonical ascending order).
    fn sweep_children(
        &mut self,
        view: &WindowView<'_>,
        nref: NodeRef,
        tidset: &RowRef<'_>,
        len: usize,
        edge: EdgeId,
        row: &RowRef<'_>,
    ) -> Result<()> {
        let mut children: Vec<(NodeRef, EdgeId)> = Vec::new();
        for &c in &self.live(nref, "singleton sweep")?.children {
            let child_edge = self.live(c, "singleton sweep")?.edge;
            if child_edge < edge {
                children.push((c, child_edge));
            }
        }
        for (child, child_edge) in children {
            let Some(child_row) = view.row(child_edge) else {
                continue;
            };
            let mut buf = BitVec::new();
            tidset.and_into(&child_row, &mut buf);
            self.sweep_node(view, child, &RowRef::Flat(&buf), len + 1, edge, row)?;
        }
        Ok(())
    }

    // ----- border bookkeeping ----------------------------------------------

    /// Records (or replaces) a border entry on `parent` with a fresh arming
    /// sequence, indexing its contributions per segment.  Replacement
    /// invalidates the superseded arming's index rows via the sequence
    /// mismatch.
    fn arm_border(
        &mut self,
        parent: NodeRef,
        edge: EdgeId,
        support: Support,
        deep: bool,
        contribs: Vec<(u64, Support)>,
    ) -> Result<()> {
        if self.node(parent).is_none() {
            return Ok(());
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        for &(uid, _) in &contribs {
            self.border_index
                .entry(uid)
                .or_default()
                .push((parent, edge, seq));
        }
        let entry = BorderEntry {
            edge,
            support,
            seq,
            deep,
            contribs,
        };
        let mut inserted = false;
        {
            let node = self.live_mut(parent, "border arming")?;
            match node.border.binary_search_by_key(&edge, |b| b.edge) {
                Ok(i) => node.border[i] = entry,
                Err(i) => {
                    node.border.insert(i, entry);
                    inserted = true;
                }
            }
        }
        if inserted {
            self.border_entries += 1;
        }
        Ok(())
    }

    fn remove_border(&mut self, parent: NodeRef, edge: EdgeId) -> Option<BorderEntry> {
        let node = self.node_mut(parent)?;
        match node.border.binary_search_by_key(&edge, |b| b.edge) {
            Ok(i) => {
                let entry = node.border.remove(i);
                self.border_entries -= 1;
                Some(entry)
            }
            Err(_) => None,
        }
    }

    fn path_len(&self, nref: NodeRef) -> Result<usize> {
        let mut len = 0;
        let mut cursor = Some(nref);
        while let Some(r) = cursor {
            len += 1;
            cursor = self.live(r, "root-path walk")?.parent;
        }
        Ok(len)
    }

    /// Materialises the tidset of `nref`'s full pattern by intersecting its
    /// root path's rows.  Returns `false` if any row is unavailable (the
    /// pattern then has support 0 at this epoch).
    fn path_tidset(&self, view: &WindowView<'_>, nref: NodeRef, out: &mut BitVec) -> Result<bool> {
        let mut edges = Vec::new();
        let mut cursor = Some(nref);
        while let Some(r) = cursor {
            let node = self.live(r, "root-path walk")?;
            edges.push(node.edge);
            cursor = node.parent;
        }
        edges.reverse();
        let Some(first) = view.row(edges[0]) else {
            return Ok(false);
        };
        first.assemble_into(out);
        let mut scratch = BitVec::new();
        for &edge in &edges[1..] {
            let Some(row) = view.row(edge) else {
                return Ok(false);
            };
            RowRef::Flat(out).and_into(&row, &mut scratch);
            std::mem::swap(out, &mut scratch);
        }
        Ok(true)
    }

    // ----- full rebuild ----------------------------------------------------

    /// Rebuilds the whole state from one snapshot: the same enumeration as
    /// the sequential §3.4 vertical miner, additionally materialising the
    /// per-segment contribution records and the border set.
    fn rebuild(
        &mut self,
        snapshot: &EpochSnapshot,
        metas: &[(u64, usize)],
        minsup: Support,
        limits: MiningLimits,
    ) -> Result<()> {
        self.stats.full_rebuilds = 1;
        self.minsup = minsup;
        self.limits = limits;
        self.num_items = snapshot.num_items();
        self.segments = metas.to_vec();
        self.slots.clear();
        self.free.clear();
        self.roots.clear();
        self.contribs.clear();
        self.border_index.clear();
        self.live_nodes = 0;
        self.border_entries = 0;
        self.frequent = (0..self.num_items)
            .map(|idx| snapshot.singleton_support(idx) >= minsup)
            .collect();
        if !limits.allows(1) {
            return Ok(());
        }
        let view = snapshot.view();
        for idx in 0..self.num_items {
            if !self.frequent[idx] {
                continue;
            }
            let edge = EdgeId::new(idx as u32);
            let support = snapshot.singleton_support(idx);
            let contribs = self.singleton_contribs(snapshot, edge);
            let nref = self.alloc(Node {
                edge,
                parent: None,
                support,
                contribs: Vec::new(),
                children: Vec::new(),
                border: Vec::new(),
            });
            self.roots.insert(edge, nref);
            self.stats.patterns_affected += 1;
            self.stats.patterns_reexamined += 1;
            self.set_node_contribs(nref, contribs);
            if let Some(row) = view.row(edge) {
                self.expand(&view, nref, &row, 1)?;
            }
        }
        Ok(())
    }

    // ----- arena -----------------------------------------------------------

    /// Like [`DeltaMiner::node`] but a dead reference is a corrupt-state
    /// error rather than a silent skip — used where liveness is an invariant
    /// of the maintained structure, not an expected race with pruning.
    fn live(&self, r: NodeRef, during: &str) -> Result<&Node> {
        self.node(r).ok_or_else(|| {
            FsmError::corrupt(format!(
                "delta state references a dead pattern node during {during}"
            ))
        })
    }

    /// Mutable counterpart of [`DeltaMiner::live`].
    fn live_mut(&mut self, r: NodeRef, during: &str) -> Result<&mut Node> {
        self.node_mut(r).ok_or_else(|| {
            FsmError::corrupt(format!(
                "delta state references a dead pattern node during {during}"
            ))
        })
    }

    fn node(&self, r: NodeRef) -> Option<&Node> {
        let slot = self.slots.get(r.idx as usize)?;
        if slot.generation != r.generation {
            return None;
        }
        slot.node.as_ref()
    }

    fn node_mut(&mut self, r: NodeRef) -> Option<&mut Node> {
        let slot = self.slots.get_mut(r.idx as usize)?;
        if slot.generation != r.generation {
            return None;
        }
        slot.node.as_mut()
    }

    fn alloc(&mut self, node: Node) -> NodeRef {
        self.live_nodes += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            slot.node = Some(node);
            NodeRef {
                idx,
                generation: slot.generation,
            }
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                node: Some(node),
            });
            NodeRef { idx, generation: 0 }
        }
    }

    fn free_subtree(&mut self, nref: NodeRef) {
        let mut stack = vec![nref];
        while let Some(r) = stack.pop() {
            let Some(node) = self.node(r) else { continue };
            stack.extend(node.children.iter().copied());
            let slot = &mut self.slots[r.idx as usize];
            if let Some(freed) = slot.node.take() {
                self.border_entries -= freed.border.len();
                slot.generation = slot.generation.wrapping_add(1);
                self.free.push(r.idx);
                self.live_nodes -= 1;
            }
        }
    }

    fn insert_child(&mut self, parent: NodeRef, child: NodeRef, edge: EdgeId) -> Result<()> {
        let pos = {
            let node = self.live(parent, "child attachment")?;
            let mut pos = node.children.len();
            for (i, &c) in node.children.iter().enumerate() {
                let child_edge = self.live(c, "child attachment")?.edge;
                debug_assert_ne!(child_edge, edge, "duplicate child");
                if child_edge > edge {
                    pos = i;
                    break;
                }
            }
            pos
        };
        self.live_mut(parent, "child attachment")?
            .children
            .insert(pos, child);
        Ok(())
    }

    // ----- output ----------------------------------------------------------

    fn collect(&self) -> Result<Vec<FrequentPattern>> {
        let mut out = Vec::with_capacity(self.live_nodes);
        let mut prefix = Vec::new();
        for &root in self.roots.values() {
            self.collect_node(root, &mut prefix, &mut out)?;
        }
        Ok(out)
    }

    fn collect_node(
        &self,
        nref: NodeRef,
        prefix: &mut Vec<EdgeId>,
        out: &mut Vec<FrequentPattern>,
    ) -> Result<()> {
        let node = self.live(nref, "pattern collection")?;
        prefix.push(node.edge);
        out.push(FrequentPattern::new(
            EdgeSet::from_edges(prefix.iter().copied()),
            node.support,
        ));
        for &child in &node.children {
            self.collect_node(child, prefix, out)?;
        }
        prefix.pop();
        Ok(())
    }
}
