//! The [`StreamMiner`] facade: capture batches, slide the window, mine on
//! demand — or snapshot an epoch ([`StreamMiner::snapshot`]) and mine it on
//! another thread while ingest continues.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use fsm_dsmatrix::{DsMatrix, DsMatrixConfig, DurabilityConfig, EpochSnapshot, RecoveryReport};
use fsm_fptree::MiningLimits;
use fsm_storage::MemoryTracker;
use fsm_stream::SlideOutcome;
use fsm_types::{Batch, BatchId, EdgeCatalog, GraphSnapshot, Result, Support, Transaction};

use crate::algorithm::{Algorithm, ConnectivityMode};
use crate::config::MinerConfig;
use crate::connectivity::ConnectivityChecker;
use crate::delta::DeltaMiner;
use crate::miners;
use crate::parallel::Exec;
use crate::result::MiningResult;

/// Where [`StreamMiner::build`] gets its matrix from.
enum BuildSource<'a> {
    /// A brand-new, empty window.
    Fresh,
    /// WAL + checkpoints under the durable directory.
    Recover,
    /// A hibernation image under the given spill directory.
    Thaw(&'a Path),
}

/// A streaming frequent connected subgraph miner.
///
/// The miner owns the DSMatrix capture structure and the edge catalog.  Each
/// ingested batch updates the matrix (sliding the window once it is full);
/// mining is *delayed* until [`StreamMiner::mine`] is called, exactly as the
/// paper prescribes.
pub struct StreamMiner {
    config: MinerConfig,
    catalog: EdgeCatalog,
    matrix: DsMatrix,
    tracker: MemoryTracker,
    next_batch_id: u64,
    /// Incrementally maintained pattern state, created on the first
    /// [`StreamMiner::mine_delta`] call and advanced epoch by epoch.
    delta: Option<DeltaMiner>,
}

impl StreamMiner {
    /// Creates a miner from a full configuration (use
    /// [`crate::config::StreamMinerBuilder`] for the ergonomic path).
    ///
    /// With [`MinerConfig::durable_dir`] set this is a **fresh start**: any
    /// WAL, checkpoints or segment files a previous run left in the
    /// directory are discarded.  Use [`StreamMiner::recover`] to resume.
    pub fn new(config: MinerConfig) -> Result<Self> {
        Self::build(config, BuildSource::Fresh)
    }

    /// Rebuilds a miner from the durable directory of a previous (possibly
    /// crashed) run: newest verifiable checkpoint plus WAL-tail replay.
    ///
    /// Requires [`MinerConfig::durable_dir`].  The configuration — window
    /// size, backend, catalog — must match the run being recovered: the
    /// durable artifacts persist the *window contents*, not the
    /// configuration.  What recovery found (checkpoint used, batches
    /// replayed, artifacts it had to distrust) is available through
    /// [`StreamMiner::recovery_report`].
    pub fn recover(config: MinerConfig) -> Result<Self> {
        Self::build(config, BuildSource::Recover)
    }

    /// Spills the miner's window to disk: a checkpoint for durable miners
    /// (their artifacts already live under [`MinerConfig::durable_dir`]), a
    /// full-payload hibernation image under `spill_dir` otherwise
    /// ([`DsMatrix::hibernate`]).  The miner stays usable; the session layer
    /// drops it right after, releasing the resident state and its budget
    /// lease.  [`StreamMiner::thaw`] rebuilds a byte-identical miner.
    pub fn hibernate(&mut self, spill_dir: &Path) -> Result<()> {
        self.matrix.hibernate(spill_dir)
    }

    /// Rebuilds a hibernated miner: [`StreamMiner::recover`] for durable
    /// configurations, the spill image under `spill_dir` otherwise.
    ///
    /// The configuration must carry the catalog the original miner held (the
    /// session layer clones it back in at spill time).  Delta-mining state is
    /// *not* hibernated: the first delta mine after a thaw performs the full
    /// rebuild, which is byte-identical to the maintained state by the
    /// delta-agreement property.
    pub fn thaw(config: MinerConfig, spill_dir: &Path) -> Result<Self> {
        if config.durable_dir.is_some() {
            return Self::recover(config);
        }
        Self::build(config, BuildSource::Thaw(spill_dir))
    }

    fn build(mut config: MinerConfig, source: BuildSource<'_>) -> Result<Self> {
        let catalog = config.catalog.take().unwrap_or_default();
        let mut matrix_config =
            DsMatrixConfig::new(config.window, config.backend.clone(), catalog.num_edges())
                .with_cache_budget(config.cache_budget_bytes);
        if let Some(governor) = &config.cache_governor {
            matrix_config = matrix_config.with_budget_governor(Arc::clone(governor));
        }
        if let Some(dir) = &config.durable_dir {
            matrix_config = matrix_config.with_durability(
                DurabilityConfig::new(dir).with_checkpoint_every(config.checkpoint_every),
            );
        }
        let matrix = match source {
            BuildSource::Fresh => DsMatrix::new(matrix_config)?,
            BuildSource::Recover => DsMatrix::recover(matrix_config)?,
            BuildSource::Thaw(spill_dir) => DsMatrix::thaw(matrix_config, spill_dir)?,
        };
        let tracker = MemoryTracker::new();
        let next_batch_id = matrix.last_batch_id().map_or(0, |id| id + 1);
        let mut miner = Self {
            config,
            catalog,
            matrix,
            tracker,
            next_batch_id,
            delta: None,
        };
        miner.matrix.set_tracker(miner.tracker.clone());
        Ok(miner)
    }

    /// The active configuration (catalog moved out; see
    /// [`StreamMiner::catalog`]).
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// The edge vocabulary as currently known.
    pub fn catalog(&self) -> &EdgeCatalog {
        &self.catalog
    }

    /// The memory tracker observing the capture structure.
    pub fn memory(&self) -> &MemoryTracker {
        &self.tracker
    }

    /// Bytes the capture structure currently keeps resident in main memory
    /// (what a spill releases).
    pub fn resident_bytes(&self) -> usize {
        self.matrix.resident_bytes()
    }

    /// Number of transactions currently in the window.
    pub fn window_transactions(&self) -> usize {
        self.matrix.num_transactions()
    }

    /// Number of batches currently in the window.
    pub fn window_batches(&self) -> usize {
        self.matrix.num_batches()
    }

    /// Ingests a pre-built batch of edge transactions.
    ///
    /// The transactions must reference edges of the miner's catalog (either
    /// provided at build time or interned through
    /// [`StreamMiner::ingest_snapshots`]); unknown edges are still captured by
    /// the matrix but cannot participate in connectivity decisions.
    pub fn ingest_batch(&mut self, batch: &Batch) -> Result<SlideOutcome> {
        self.next_batch_id = self.next_batch_id.max(batch.id + 1);
        self.matrix.ingest_batch(batch)
    }

    /// Ingests one batch worth of raw graph snapshots, interning any new
    /// vertex pair into the catalog.
    pub fn ingest_snapshots(&mut self, snapshots: &[GraphSnapshot]) -> Result<SlideOutcome> {
        let transactions: Vec<Transaction> = snapshots
            .iter()
            .map(|snapshot| snapshot.intern_into(&mut self.catalog))
            .collect();
        let batch = Batch::from_transactions(self.next_batch_id, transactions);
        self.next_batch_id += 1;
        self.matrix.ingest_batch(&batch)
    }

    /// Mines the current window with the configured algorithm, applying the
    /// connectivity post-processing step where the algorithm requires it.
    ///
    /// With [`MinerConfig::delta`] enabled this delegates to
    /// [`StreamMiner::mine_delta`], which maintains the pattern set across
    /// slides instead of re-enumerating the window.
    pub fn mine(&mut self) -> Result<MiningResult> {
        self.mine_with(&Exec::scoped(self.config.threads))
    }

    /// Like [`StreamMiner::mine`] but under an explicit executor — the
    /// service layer passes [`Exec::pool`] here so concurrent tenant mines
    /// multiplex over one process-wide worker set instead of each spawning
    /// scoped threads.  Output is byte-identical to [`StreamMiner::mine`]
    /// for every executor.
    ///
    /// Delta mining ([`MinerConfig::delta`]) maintains its pattern set
    /// sequentially and therefore ignores the executor.
    pub fn mine_with(&mut self, exec: &Exec) -> Result<MiningResult> {
        if self.config.delta {
            return self.mine_delta();
        }
        self.mine_full(exec)
    }

    fn mine_full(&mut self, exec: &Exec) -> Result<MiningResult> {
        let start = Instant::now();
        let resolved = self
            .config
            .min_support
            .resolve(self.matrix.num_transactions());

        let read_before = self.matrix.read_stats();
        // The guard releases the disk backends' eager view materialisation
        // whichever way mining exits — success, error or panic — so the
        // between-mines resident footprint never silently retains a window
        // copy on a failed mine.
        let matrix = TrimCacheGuard(&mut self.matrix);
        let mut raw = miners::run_algorithm(
            self.config.algorithm,
            matrix.0,
            &self.catalog,
            resolved,
            self.config.limits,
            exec,
        )?;
        drop(matrix);
        // Read amplification of this call: words the read path materialised
        // and disk pages it fetched.  Words are zero in the steady state on
        // the memory backend (zero-copy view) *and* on the disk backends
        // when a chunk-cache budget covers the working set (rows served from
        // pinned chunks, counted in `rows_pinned`); pages drop to the
        // slide's chunks in the same regime.
        let read_after = self.matrix.read_stats();
        raw.stats.read_words_assembled = read_after.words_assembled - read_before.words_assembled;
        raw.stats.pages_read = read_after.pages_read - read_before.pages_read;
        raw.stats.cache_hits = read_after.cache_hits - read_before.cache_hits;
        raw.stats.rows_pinned = read_after.rows_pinned - read_before.rows_pinned;

        if self.config.algorithm.needs_postprocessing() {
            let checker = ConnectivityChecker::new(&self.catalog, self.config.connectivity);
            raw.stats.patterns_pruned = checker.prune_disconnected(&mut raw.patterns);
        }

        raw.stats.elapsed = start.elapsed();
        raw.stats.capture_resident_bytes = self.matrix.resident_bytes();
        raw.stats.capture_on_disk_bytes = self.matrix.on_disk_bytes();
        raw.stats.capture_words_written = self.matrix.capture_stats().words_written;
        raw.stats.window_transactions = self.matrix.num_transactions();
        raw.stats.resolved_minsup = resolved;
        // Durability counters are cumulative (like `capture_words_written`):
        // what the WAL + checkpoint layer has cost since the miner was
        // created.  All zero on non-durable configurations.
        raw.stats.wal_bytes_written = read_after.wal_bytes_written;
        raw.stats.fsyncs = read_after.fsyncs;
        raw.stats.checkpoint_bytes = read_after.checkpoint_bytes;
        raw.stats.recovery_replayed_batches = read_after.recovery_replayed_batches;
        Ok(MiningResult::new(raw.patterns, raw.stats))
    }

    /// Mines the current window *incrementally*: the maintained
    /// [`DeltaMiner`] state is advanced to the current epoch, paying only
    /// for the patterns the intervening slides affected, instead of
    /// re-enumerating the whole window.
    ///
    /// Pattern output is byte-identical to [`StreamMiner::mine`] at the same
    /// epoch for every algorithm, backend and thread count (the maintained
    /// set is the full §3.4 enumeration, and the same §3.5 connectivity
    /// post-processing is applied on collection) — property-tested against
    /// the full re-mine oracle in `crates/core/tests/delta_agreement.rs`.
    /// The work actually performed is reported in
    /// [`crate::MiningStats::delta`].
    ///
    /// The first call (and any call after the resolved minimum support or
    /// pattern-length limit changed, e.g. a relative threshold re-resolving
    /// as the window grows) performs one full rebuild; steady-state calls on
    /// a sliding window are O(patterns affected by the slide).
    pub fn mine_delta(&mut self) -> Result<MiningResult> {
        let start = Instant::now();
        let read_before = self.matrix.read_stats();
        let snapshot = self.matrix.snapshot_epoch()?;
        let resolved = self.config.min_support.resolve(snapshot.num_transactions());
        let state = self.delta.get_or_insert_with(DeltaMiner::new);
        let mut patterns = state.advance(&snapshot, resolved, self.config.limits)?;
        let mut stats = crate::MiningStats {
            delta: state.stats().clone(),
            intersections: state.stats().patterns_reexamined,
            ..Default::default()
        };
        stats.patterns_before_postprocess = patterns.len();
        // The maintained set is the full enumeration (connected and
        // disconnected, like §3.4), so the connectivity step always runs —
        // the final pattern set is the same one every algorithm produces.
        let checker = ConnectivityChecker::new(&self.catalog, self.config.connectivity);
        stats.patterns_pruned = checker.prune_disconnected(&mut patterns);
        let read_after = self.matrix.read_stats();
        stats.read_words_assembled = read_after.words_assembled - read_before.words_assembled;
        stats.pages_read = read_after.pages_read - read_before.pages_read;
        stats.cache_hits = read_after.cache_hits - read_before.cache_hits;
        stats.rows_pinned = read_after.rows_pinned - read_before.rows_pinned;
        stats.elapsed = start.elapsed();
        stats.capture_resident_bytes = self.matrix.resident_bytes();
        stats.capture_on_disk_bytes = self.matrix.on_disk_bytes();
        stats.capture_words_written = self.matrix.capture_stats().words_written;
        stats.window_transactions = snapshot.num_transactions();
        stats.resolved_minsup = resolved;
        stats.wal_bytes_written = read_after.wal_bytes_written;
        stats.fsyncs = read_after.fsyncs;
        stats.checkpoint_bytes = read_after.checkpoint_bytes;
        stats.recovery_replayed_batches = read_after.recovery_replayed_batches;
        Ok(MiningResult::new(patterns, stats))
    }

    /// Freezes the current window epoch into a self-contained, `Send + Sync`
    /// mining job: the epoch snapshot plus the miner's algorithm, resolved
    /// minimum support, catalog, limits and thread count.
    ///
    /// The returned [`MinerSnapshot`] borrows nothing from this miner — hand
    /// it to another thread and call [`MinerSnapshot::mine`] there while
    /// this miner keeps ingesting.  Its output is byte-identical to what
    /// [`StreamMiner::mine`] would have returned at the same epoch
    /// (property-tested in `crates/core/tests/epoch_agreement.rs`), with the
    /// capture-side statistics (resident bytes, WAL counters, read
    /// amplification) zeroed: a frozen epoch has no live capture structure
    /// to measure.
    ///
    /// Relative minimum supports are resolved against the epoch's
    /// transaction count at snapshot time, exactly as a stop-the-world mine
    /// at that epoch would have resolved them.
    pub fn snapshot(&mut self) -> Result<MinerSnapshot> {
        let snapshot = self.matrix.snapshot_epoch()?;
        let resolved_minsup = self.config.min_support.resolve(snapshot.num_transactions());
        Ok(MinerSnapshot {
            snapshot,
            catalog: self.catalog.clone(),
            algorithm: self.config.algorithm,
            resolved_minsup,
            connectivity: self.config.connectivity,
            limits: self.config.limits,
            threads: self.config.threads,
        })
    }

    /// Direct access to the capture structure (used by the experiment harness
    /// for space accounting and ablations).
    pub fn matrix_mut(&mut self) -> &mut DsMatrix {
        &mut self.matrix
    }

    /// Returns `true` if the window is crash-recoverable (WAL + checkpoints).
    pub fn is_durable(&self) -> bool {
        self.matrix.is_durable()
    }

    /// What [`StreamMiner::recover`] found and did, if this miner was built
    /// by it.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.matrix.recovery_report()
    }

    /// Identifier of the newest batch in the window — after a recovery, the
    /// stream should resume from the next one.
    pub fn last_batch_id(&self) -> Option<BatchId> {
        self.matrix.last_batch_id()
    }
}

/// A frozen, self-contained mining job over one window epoch.
///
/// Built by [`StreamMiner::snapshot`]; `Send + Sync + 'static`, so it can be
/// moved to (or shared with) any thread and mined there — repeatedly, even
/// concurrently — while the source [`StreamMiner`] keeps ingesting.  This is
/// the reader half of the writer/reader split: the writer thread slides the
/// window, reader threads mine epochs.
#[derive(Debug)]
pub struct MinerSnapshot {
    snapshot: Arc<EpochSnapshot>,
    catalog: EdgeCatalog,
    algorithm: Algorithm,
    resolved_minsup: Support,
    connectivity: ConnectivityMode,
    limits: MiningLimits,
    threads: usize,
}

impl MinerSnapshot {
    /// Mines the frozen epoch with the configuration captured at snapshot
    /// time, applying the connectivity post-processing step where the
    /// algorithm requires it.
    ///
    /// `&self` — mining does not consume the snapshot, and several threads
    /// may mine one snapshot simultaneously.  Pattern output is
    /// byte-identical to a stop-the-world [`StreamMiner::mine`] at the same
    /// epoch; the capture/durability statistics are zero (a snapshot has no
    /// capture structure).
    pub fn mine(&self) -> Result<MiningResult> {
        self.mine_with(&Exec::scoped(self.threads))
    }

    /// Like [`MinerSnapshot::mine`] but under an explicit executor (see
    /// [`StreamMiner::mine_with`]); the service layer's subscription path
    /// mines epoch snapshots on the shared pool through this.
    pub fn mine_with(&self, exec: &Exec) -> Result<MiningResult> {
        let start = Instant::now();
        let view = self.snapshot.view();
        let mut raw = miners::run_algorithm_on_view(
            self.algorithm,
            &view,
            &self.catalog,
            self.resolved_minsup,
            self.limits,
            exec,
        )?;
        if self.algorithm.needs_postprocessing() {
            let checker = ConnectivityChecker::new(&self.catalog, self.connectivity);
            raw.stats.patterns_pruned = checker.prune_disconnected(&mut raw.patterns);
        }
        raw.stats.elapsed = start.elapsed();
        raw.stats.window_transactions = self.snapshot.num_transactions();
        raw.stats.resolved_minsup = self.resolved_minsup;
        Ok(MiningResult::new(raw.patterns, raw.stats))
    }

    /// The underlying epoch snapshot (epoch id, batch alignment, geometry).
    pub fn epoch(&self) -> &Arc<EpochSnapshot> {
        &self.snapshot
    }

    /// Identifier of the newest batch in the frozen window — what an oracle
    /// replaying the same stream aligns on.
    pub fn last_batch_id(&self) -> Option<BatchId> {
        self.snapshot.last_batch_id()
    }

    /// The absolute minimum support this job mines with (relative supports
    /// were resolved at snapshot time).
    pub fn resolved_minsup(&self) -> Support {
        self.resolved_minsup
    }
}

// The snapshot's whole point is crossing threads; regress loudly if a future
// field breaks that.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync + 'static>() {}
    assert_send_sync::<MinerSnapshot>();
};

/// Calls [`DsMatrix::trim_cache`] when dropped, so a mine that exits early
/// (miner error or panic) still releases the disk backends' eager view
/// materialisation instead of leaking a resident window copy.
struct TrimCacheGuard<'a>(&'a mut DsMatrix);

impl Drop for TrimCacheGuard<'_> {
    fn drop(&mut self) {
        self.0.trim_cache();
    }
}

impl std::fmt::Debug for StreamMiner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamMiner")
            .field("algorithm", &self.config.algorithm)
            .field("window_batches", &self.config.window.window_batches)
            .field("window_transactions", &self.matrix.num_transactions())
            .field("edges", &self.catalog.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use crate::config::StreamMinerBuilder;
    use fsm_types::{EdgeSet, MinSup};

    fn paper_batches() -> Vec<Batch> {
        let e = |raw: &[u32]| Transaction::from_raw(raw.iter().copied());
        vec![
            Batch::from_transactions(0, vec![e(&[2, 3, 5]), e(&[0, 4, 5]), e(&[0, 2, 5])]),
            Batch::from_transactions(1, vec![e(&[0, 2, 3, 5]), e(&[0, 3, 4, 5]), e(&[0, 1, 2])]),
            Batch::from_transactions(2, vec![e(&[0, 2, 5]), e(&[0, 2, 3, 5]), e(&[1, 2, 3])]),
        ]
    }

    fn build(algorithm: Algorithm) -> StreamMiner {
        StreamMinerBuilder::new()
            .algorithm(algorithm)
            .window_batches(2)
            .min_support(MinSup::absolute(2))
            .complete_graph_vertices(4)
            .build()
            .unwrap()
    }

    #[test]
    fn all_five_algorithms_return_the_15_connected_collections() {
        let mut reference: Option<MiningResult> = None;
        for algorithm in Algorithm::ALL {
            let mut miner = build(algorithm);
            for batch in paper_batches() {
                miner.ingest_batch(&batch).unwrap();
            }
            assert_eq!(miner.window_batches(), 2);
            assert_eq!(miner.window_transactions(), 6);
            let result = miner.mine().unwrap();
            assert_eq!(result.len(), 15, "{algorithm}");
            assert_eq!(
                result.support_of(&EdgeSet::from_raw([0, 2])),
                Some(4),
                "{algorithm}: support of {{a,c}}"
            );
            assert_eq!(result.support_of(&EdgeSet::from_raw([0, 5])), None);
            if let Some(reference) = &reference {
                assert!(
                    reference.same_patterns_as(&result),
                    "{algorithm} disagrees: {:?}",
                    reference.diff(&result)
                );
            } else {
                reference = Some(result);
            }
        }
    }

    #[test]
    fn postprocessing_statistics_distinguish_the_algorithms() {
        let mut vertical = build(Algorithm::Vertical);
        let mut direct = build(Algorithm::DirectVertical);
        for batch in paper_batches() {
            vertical.ingest_batch(&batch).unwrap();
            direct.ingest_batch(&batch).unwrap();
        }
        let vertical_result = vertical.mine().unwrap();
        let direct_result = direct.mine().unwrap();
        assert_eq!(vertical_result.stats().patterns_before_postprocess, 17);
        assert_eq!(vertical_result.stats().patterns_pruned, 2);
        assert_eq!(direct_result.stats().patterns_before_postprocess, 15);
        assert_eq!(direct_result.stats().patterns_pruned, 0);
        assert!(
            direct_result.stats().intersections < vertical_result.stats().intersections,
            "direct mining performs fewer intersections"
        );
    }

    #[test]
    fn relative_minsup_resolves_against_the_window() {
        let mut miner = StreamMinerBuilder::new()
            .algorithm(Algorithm::Vertical)
            .window_batches(2)
            .min_support(MinSup::relative(0.5))
            .complete_graph_vertices(4)
            .build()
            .unwrap();
        for batch in paper_batches() {
            miner.ingest_batch(&batch).unwrap();
        }
        let result = miner.mine().unwrap();
        // 50% of 6 transactions = 3.
        assert_eq!(result.stats().resolved_minsup, 3);
        assert!(result.patterns().iter().all(|p| p.support >= 3));
    }

    #[test]
    fn snapshots_are_interned_and_mined() {
        let mut miner = StreamMinerBuilder::new()
            .algorithm(Algorithm::DirectVertical)
            .window_batches(2)
            .min_support(MinSup::absolute(2))
            .build()
            .unwrap();
        let graphs = vec![
            GraphSnapshot::from_pairs([(1, 2), (2, 3)]),
            GraphSnapshot::from_pairs([(1, 2), (2, 3), (3, 4)]),
            GraphSnapshot::from_pairs([(1, 2), (3, 4)]),
        ];
        miner.ingest_snapshots(&graphs).unwrap();
        assert_eq!(miner.catalog().num_edges(), 3);
        let result = miner.mine().unwrap();
        // (1,2) appears 3×, (2,3) 2×, (3,4) 2×, {(1,2),(2,3)} 2× connected.
        assert_eq!(result.len(), 4);
        assert_eq!(result.support_of(&EdgeSet::from_raw([0, 1])), Some(2));
        // Mining again without new data is idempotent.
        let again = miner.mine().unwrap();
        assert!(result.same_patterns_as(&again));
    }

    #[test]
    fn snapshot_mining_on_another_thread_matches_stop_the_world() {
        for algorithm in Algorithm::ALL {
            let mut miner = build(algorithm);
            for batch in paper_batches() {
                miner.ingest_batch(&batch).unwrap();
            }
            let job = miner.snapshot().unwrap();
            // The snapshot crosses a thread boundary; the source miner mines
            // stop-the-world at the same epoch in the meantime.
            let handle = std::thread::spawn(move || job.mine().unwrap());
            let stop_the_world = miner.mine().unwrap();
            let from_snapshot = handle.join().unwrap();
            assert!(
                stop_the_world.same_patterns_as(&from_snapshot),
                "{algorithm} disagrees: {:?}",
                stop_the_world.diff(&from_snapshot)
            );
            assert_eq!(
                from_snapshot.stats().resolved_minsup,
                stop_the_world.stats().resolved_minsup
            );
        }
    }

    #[test]
    fn a_held_snapshot_keeps_mining_its_own_epoch_while_ingest_continues() {
        let mut miner = build(Algorithm::Vertical);
        let batches = paper_batches();
        miner.ingest_batch(&batches[0]).unwrap();
        miner.ingest_batch(&batches[1]).unwrap();
        let job = miner.snapshot().unwrap();
        let at_epoch = miner.mine().unwrap();
        // The writer slides on; the held snapshot must still mine its epoch.
        miner.ingest_batch(&batches[2]).unwrap();
        let after_slide = miner.mine().unwrap();
        let frozen = job.mine().unwrap();
        assert!(frozen.same_patterns_as(&at_epoch));
        assert!(!after_slide.same_patterns_as(&frozen) || after_slide.same_patterns_as(&at_epoch));
        assert_eq!(job.last_batch_id(), Some(1));
    }

    #[test]
    fn mining_an_empty_window_returns_nothing() {
        let mut miner = build(Algorithm::Vertical);
        let result = miner.mine().unwrap();
        assert!(result.is_empty());
        assert_eq!(result.stats().window_transactions, 0);
    }

    #[test]
    fn memory_tracker_observes_the_capture_structure() {
        let mut miner = build(Algorithm::Vertical);
        for batch in paper_batches() {
            miner.ingest_batch(&batch).unwrap();
        }
        assert!(miner.memory().peak_of(DsMatrix::TRACK_CATEGORY) > 0);
        assert!(format!("{miner:?}").contains("Vertical") || !format!("{miner:?}").is_empty());
    }
}
