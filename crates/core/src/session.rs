//! Multi-tenant session layer: many independent sliding windows served by
//! one process.
//!
//! A [`Session`] owns what a single-tenant process owned implicitly — one
//! window (a [`StreamMiner`]) plus its miner configuration and optional
//! delta/durable state — behind a lock, so ingest producers, on-demand mine
//! callers and subscription consumers can share it from different threads.
//! The [`SessionRegistry`] keys sessions by tenant id and owns the
//! process-wide resources every session draws from:
//!
//! * one [`Exec`] — typically [`Exec::pool`] over a fixed
//!   [`crate::WorkerPool`], so a thousand concurrent tenant mines multiplex
//!   their subtree tasks over one worker set instead of spawning a thousand
//!   scoped sets;
//! * one optional [`BudgetGovernor`] — the process-wide chunk-cache cap the
//!   disk-backed tenants lease from;
//! * one optional durable root — each durable tenant's WAL/checkpoints live
//!   under `durable_root/<tenant>/`, so recovery is per tenant
//!   ([`SessionRegistry::recover_tenant`]) and a tenant id is all an
//!   operator needs to find its artifacts.
//!
//! Per-tenant output is **byte-identical to a standalone single-tenant
//! run** of the same batch/mine sequence, for every backend, pool size and
//! cross-tenant interleaving — property-tested in
//! `crates/core/tests/tenant_isolation.rs`.  The ingredients: sessions
//! never share mutable mining state, pool tasks return in task-index order,
//! and the budget governor only moves bytes between disk and cache.
//!
//! # Ingest, backpressure and subscriptions
//!
//! [`Session::ingest`] applies the batch immediately when the window is
//! free; while another caller holds the window (a long mine, a recovery),
//! batches park in a bounded per-tenant queue and are drained — in arrival
//! order — by whichever caller next acquires the window.  A full queue is
//! the backpressure signal ([`fsm_types::FsmError::Backpressure`]): the
//! producer must retry, nothing is dropped, and one slow tenant cannot
//! queue unboundedly while others starve.
//!
//! [`Session::subscribe`] registers a consumer for mine-on-every-slide
//! output: whenever an ingest completes a window slide, the session mines
//! the new epoch — through a frozen [`MinerSnapshot`](crate::MinerSnapshot)
//! ([`StreamMiner::snapshot`]), the same reader path the concurrent-mining
//! layer uses — and publishes the result; subscribers [`Subscription::poll`]
//! or block on [`Subscription::wait`] for it.  Delta-enabled tenants
//! publish through their maintained [`crate::DeltaMiner`] state instead
//! (it requires exclusive access); either way the published patterns are
//! the ones a stop-the-world mine at that epoch would return.
//!
//! # Tenant lifecycle: resident set, spill and thaw
//!
//! Each session is a small state machine ([`LifecycleState`]):
//!
//! ```text
//!              touch                  evicted (clock sweep)
//!   Active ◄────────── Idle ────────────► Draining ──► Spilled
//!     ▲  │  hand passes: touched cleared      ▲           │
//!     │  └────────────────────────────────────┘           │
//!     └──────────── request arrives: transparent thaw ◄───┘
//! ```
//!
//! When [`RegistryConfig::max_resident`] or
//! [`RegistryConfig::max_resident_bytes`] is set, the registry keeps only
//! that many windows resident.  Residency enforcement is clock-style
//! second chance: every completed operation stamps its session *touched*;
//! the sweep (run opportunistically after each touch, never blocking the
//! toucher) rotates a hand over the tenant table, demoting touched
//! sessions to [`LifecycleState::Idle`] and spilling the first session it
//! finds cold.  A spill drains the pending queue into the window first
//! (publishing to subscribers exactly as a normal drain would), then
//! serialises the window via [`StreamMiner::hibernate`] — a full-payload
//! [`fsm_storage::Hibernation`] image under `spill_root/<tenant>/` for
//! volatile tenants, a checkpoint under the durable root for durable ones —
//! and drops the resident state.  Dropping the window releases its
//! [`fsm_storage::BudgetLease`], so the governor re-expands the warm
//! tenants' caches automatically.
//!
//! A spilled tenant stays fully addressable: the next request against it
//! (ingest, mine, subscribe-driven publish, [`Session::with_miner`])
//! **transparently thaws** the window ([`StreamMiner::thaw`]) and proceeds;
//! thaw latency is recorded per session ([`SessionStatus`]), never surfaced
//! as an error.  Queued ingests and armed subscriptions survive the
//! spill/thaw cycle unreordered — the pending queue and publication channel
//! live outside the window.  The gating property (the `max_resident = 1`
//! axis of `tenant_isolation.rs`): a fleet served under eviction pressure
//! is byte-identical to the same fleet fully resident.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::time::Instant;

use fsm_storage::BudgetGovernor;
use fsm_stream::SlideOutcome;
use fsm_types::{Batch, FsmError, Result};

use crate::config::MinerConfig;
use crate::miner::StreamMiner;
use crate::parallel::Exec;
use crate::result::MiningResult;

/// Process-wide resources and policies shared by every tenant of a
/// [`SessionRegistry`].
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Executor every tenant mine runs under.  The service shape is
    /// [`Exec::pool`] over one fixed [`crate::WorkerPool`]; the default
    /// ([`Exec::scoped`]`(1)`) mines each tenant sequentially on the calling
    /// thread.
    pub exec: Exec,
    /// Process-wide chunk-cache cap the disk-backed tenants lease from
    /// (see [`MinerConfig::cache_governor`]).  `None` leaves each tenant's
    /// configured budget private — the sum is then unmanaged.
    pub governor: Option<Arc<BudgetGovernor>>,
    /// Root directory for durable tenants: a tenant configured with a disk
    /// backend and durability gets `durable_root/<tenant>/` as its durable
    /// directory.  `None` forbids durable tenants.
    pub durable_root: Option<PathBuf>,
    /// Per-tenant ingest queue bound — the backpressure threshold.
    pub max_pending_batches: usize,
    /// Resident-window cap: at most this many tenants keep their window in
    /// memory; colder ones spill (see the module docs).  `None` disables
    /// count-based eviction.
    pub max_resident: Option<usize>,
    /// Resident-byte cap: tenants spill until the summed
    /// [`SessionStatus::resident_bytes`] of resident windows fits.  `None`
    /// disables byte-based eviction.
    pub max_resident_bytes: Option<usize>,
    /// Root directory for *volatile* tenants' spill images
    /// (`spill_root/<tenant>/`).  Without it, non-durable tenants are
    /// pinned resident — the sweep skips them.  Durable tenants spill
    /// through their checkpoints and never need it.
    pub spill_root: Option<PathBuf>,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            exec: Exec::scoped(1),
            governor: None,
            durable_root: None,
            max_pending_batches: Self::DEFAULT_MAX_PENDING,
            max_resident: None,
            max_resident_bytes: None,
            spill_root: None,
        }
    }
}

impl RegistryConfig {
    /// Default per-tenant ingest queue bound.
    pub const DEFAULT_MAX_PENDING: usize = 64;
}

/// The tenant table: creates, recovers, serves, spills and drops
/// [`Session`]s.
///
/// Shared by reference ([`Arc<SessionRegistry>`]) between every server
/// thread; all methods take `&self`.
pub struct SessionRegistry {
    shared: Arc<Shared>,
}

/// The registry state sessions point back into (via [`Weak`], so a session
/// outliving its registry simply stops sweeping): tenant table, residency
/// policy, the logical clock behind last-touch stamps and the sweep hand.
struct Shared {
    config: RegistryConfig,
    sessions: Mutex<BTreeMap<String, Arc<Session>>>,
    /// Logical time: bumped on every touch, stamped into
    /// [`Lifecycle::last_touch`].
    clock: AtomicU64,
    /// The clock-sweep hand.  `try_lock`ed by [`Shared::enforce`] so at most
    /// one thread sweeps and a toucher never blocks on residency
    /// enforcement.
    sweep: Mutex<SweepHand>,
}

#[derive(Default)]
struct SweepHand {
    /// Tenant id the next sweep starts from (first id `>=` it; the table
    /// may have changed since the hand last moved).
    cursor: Option<String>,
}

impl SessionRegistry {
    /// Maximum tenant-id length accepted by [`validate_tenant_id`].
    pub const MAX_TENANT_ID_LEN: usize = 64;

    /// Creates an empty registry.
    pub fn new(config: RegistryConfig) -> Self {
        Self {
            shared: Arc::new(Shared {
                config,
                sessions: Mutex::new(BTreeMap::new()),
                clock: AtomicU64::new(0),
                sweep: Mutex::new(SweepHand::default()),
            }),
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.shared.config
    }

    /// Creates a fresh tenant.
    ///
    /// The per-tenant `config` must leave [`MinerConfig::durable_dir`] and
    /// [`MinerConfig::cache_governor`] unset — the registry owns durable
    /// namespacing (`durable_root/<tenant>/`) and budget arbitration; a
    /// tenant naming its own directory could alias another tenant's state.
    /// Set `durable` to root this tenant under the registry's durable root
    /// (requires one to be configured and a disk backend).
    pub fn create_tenant(
        &self,
        tenant: &str,
        config: MinerConfig,
        durable: bool,
    ) -> Result<Arc<Session>> {
        self.admit(tenant, config, durable, false)
    }

    /// Recovers a durable tenant from `durable_root/<tenant>/` (newest
    /// verifiable checkpoint plus WAL-tail replay; see
    /// [`StreamMiner::recover`]).  The configuration must match the run
    /// being recovered, exactly as in the single-tenant case.
    pub fn recover_tenant(&self, tenant: &str, config: MinerConfig) -> Result<Arc<Session>> {
        self.admit(tenant, config, true, true)
    }

    fn admit(
        &self,
        tenant: &str,
        mut config: MinerConfig,
        durable: bool,
        recovering: bool,
    ) -> Result<Arc<Session>> {
        validate_tenant_id(tenant)?;
        if config.durable_dir.is_some() {
            return Err(FsmError::config(
                "tenant configurations must not set durable_dir: the registry \
                 namespaces durable state under durable_root/<tenant>/",
            ));
        }
        if config.cache_governor.is_some() {
            return Err(FsmError::config(
                "tenant configurations must not set cache_governor: the \
                 registry's governor arbitrates every tenant's budget",
            ));
        }
        if durable {
            let root =
                self.shared.config.durable_root.as_ref().ok_or_else(|| {
                    FsmError::config("durable tenants need a registry durable_root")
                })?;
            config.durable_dir = Some(root.join(tenant));
        }
        config.cache_governor = self.shared.config.governor.clone();
        // Durable tenants spill through their checkpoints (the durable dir
        // *is* the cold copy); volatile tenants need an explicit spill root.
        let spill_dir = if durable {
            config.durable_dir.clone()
        } else {
            self.shared
                .config
                .spill_root
                .as_ref()
                .map(|root| root.join(tenant))
        };
        let mut sessions = lock_unpoisoned(&self.shared.sessions);
        if sessions.contains_key(tenant) {
            return Err(FsmError::tenant_exists(tenant));
        }
        if !durable {
            if let Some(dir) = &spill_dir {
                // A dropped predecessor of the same name may have left a
                // spill image behind; it must never thaw into this tenant.
                // Removed only under the sessions lock and only once the
                // name is known free: a *live* spilled tenant of this name
                // owns that image, and a duplicate create must not eat it.
                let _ = std::fs::remove_file(fsm_storage::Hibernation::artifact_path(dir));
            }
        }
        let miner = if recovering {
            StreamMiner::recover(config)?
        } else {
            StreamMiner::new(config)?
        };
        let session = Arc::new(Session::new(
            tenant.to_string(),
            miner,
            self.shared.config.exec.clone(),
            self.shared.config.max_pending_batches,
            spill_dir,
            Arc::downgrade(&self.shared),
        ));
        sessions.insert(tenant.to_string(), Arc::clone(&session));
        drop(sessions);
        session.stamp_touch();
        self.shared.enforce();
        Ok(session)
    }

    /// Looks a live tenant up.
    pub fn get(&self, tenant: &str) -> Result<Arc<Session>> {
        lock_unpoisoned(&self.shared.sessions)
            .get(tenant)
            .cloned()
            .ok_or_else(|| FsmError::unknown_tenant(tenant))
    }

    /// Removes a tenant from the registry.  In-flight operations on clones
    /// of its [`Arc<Session>`] complete normally; the session's resources
    /// (worker-pool access aside, which is shared) are freed when the last
    /// clone drops — including its budget lease, whose grant flows back to
    /// the surviving tenants.
    pub fn drop_tenant(&self, tenant: &str) -> Result<()> {
        lock_unpoisoned(&self.shared.sessions)
            .remove(tenant)
            .map(|_| ())
            .ok_or_else(|| FsmError::unknown_tenant(tenant))
    }

    /// Live tenant ids, sorted.
    pub fn tenants(&self) -> Vec<String> {
        lock_unpoisoned(&self.shared.sessions)
            .keys()
            .cloned()
            .collect()
    }

    /// Every tenant's id and lifecycle status, sorted by id — what the
    /// service's `list` verb reports.
    pub fn statuses(&self) -> Vec<(String, SessionStatus)> {
        let sessions: Vec<(String, Arc<Session>)> = lock_unpoisoned(&self.shared.sessions)
            .iter()
            .map(|(tenant, session)| (tenant.clone(), Arc::clone(session)))
            .collect();
        sessions
            .into_iter()
            .map(|(tenant, session)| (tenant, session.status()))
            .collect()
    }

    /// Applies the resident-set policy now.  Normally unnecessary — every
    /// completed session operation triggers an opportunistic sweep — but
    /// deterministic for tests and operators.
    pub fn enforce_residency(&self) {
        self.shared.enforce();
    }

    /// Tenant ids with durable state under the registry's durable root —
    /// what [`SessionRegistry::recover_tenant`] can resurrect after a crash.
    /// Empty without a durable root; ids that fail validation (a stray
    /// directory) are skipped.
    pub fn durable_tenants(&self) -> Result<Vec<String>> {
        let Some(root) = &self.shared.config.durable_root else {
            return Ok(Vec::new());
        };
        let mut tenants = Vec::new();
        if !root.exists() {
            return Ok(tenants);
        }
        for entry in std::fs::read_dir(root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if validate_tenant_id(&name).is_ok() {
                tenants.push(name);
            }
        }
        tenants.sort();
        Ok(tenants)
    }
}

impl Shared {
    /// Spills cold tenants until the resident set fits the configured caps.
    /// `try_lock` on the sweep hand keeps this single-flight and keeps the
    /// triggering request from ever blocking on another tenant's spill.
    fn enforce(&self) {
        if self.config.max_resident.is_none() && self.config.max_resident_bytes.is_none() {
            return;
        }
        let Ok(mut hand) = self.sweep.try_lock() else {
            return;
        };
        // Tenants already tried this sweep (spilled, or failed to): never
        // re-selected, so an unspillable resident set terminates the loop.
        let mut attempted = BTreeSet::new();
        loop {
            let sessions: Vec<(String, Arc<Session>)> = lock_unpoisoned(&self.sessions)
                .iter()
                .map(|(tenant, session)| (tenant.clone(), Arc::clone(session)))
                .collect();
            let mut resident = 0usize;
            let mut resident_bytes = 0usize;
            for (_, session) in &sessions {
                let lifecycle = lock_unpoisoned(&session.lifecycle);
                if lifecycle.state != LifecycleState::Spilled {
                    resident += 1;
                    resident_bytes += lifecycle.resident_bytes;
                }
            }
            let over = self.config.max_resident.is_some_and(|cap| resident > cap)
                || self
                    .config
                    .max_resident_bytes
                    .is_some_and(|cap| resident_bytes > cap);
            if !over {
                return;
            }
            let Some(victim) = Self::select_victim(&sessions, &mut hand, &attempted) else {
                return;
            };
            attempted.insert(victim.tenant().to_string());
            // A failed spill (I/O error) leaves the tenant resident and
            // usable; `attempted` stops us retrying it this sweep.
            let _ = victim.spill();
        }
    }

    /// One clock rotation, second-chance style: touched residents lose
    /// their bit (and demote `Active → Idle`); the first cold, spillable
    /// resident past the hand is the victim.  Two full cycles guarantee a
    /// pick when any eligible session exists.
    fn select_victim(
        sessions: &[(String, Arc<Session>)],
        hand: &mut SweepHand,
        attempted: &BTreeSet<String>,
    ) -> Option<Arc<Session>> {
        if sessions.is_empty() {
            return None;
        }
        let start = hand
            .cursor
            .as_ref()
            .and_then(|cursor| sessions.iter().position(|(tenant, _)| tenant >= cursor))
            .unwrap_or(0);
        for step in 0..sessions.len() * 2 {
            let index = (start + step) % sessions.len();
            let (tenant, session) = &sessions[index];
            if attempted.contains(tenant) || session.spill_dir.is_none() {
                continue;
            }
            let mut lifecycle = lock_unpoisoned(&session.lifecycle);
            match lifecycle.state {
                LifecycleState::Spilled | LifecycleState::Draining => continue,
                LifecycleState::Active | LifecycleState::Idle => {}
            }
            if lifecycle.touched {
                lifecycle.touched = false;
                lifecycle.state = LifecycleState::Idle;
                continue;
            }
            hand.cursor = Some(sessions[(index + 1) % sessions.len()].0.clone());
            return Some(Arc::clone(session));
        }
        None
    }
}

impl std::fmt::Debug for SessionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionRegistry")
            .field("tenants", &self.tenants())
            .field("exec", &self.shared.config.exec)
            .finish()
    }
}

/// Accepts `[A-Za-z0-9_-]{1,64}` — ids double as durable directory names
/// and wire-protocol tokens, so nothing path- or whitespace-like gets in.
pub fn validate_tenant_id(tenant: &str) -> Result<()> {
    if tenant.is_empty() || tenant.len() > SessionRegistry::MAX_TENANT_ID_LEN {
        return Err(FsmError::config(format!(
            "tenant id must be 1..={} characters, got {}",
            SessionRegistry::MAX_TENANT_ID_LEN,
            tenant.len()
        )));
    }
    if let Some(bad) = tenant
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || *c == '_' || *c == '-'))
    {
        return Err(FsmError::config(format!(
            "tenant id may only contain [A-Za-z0-9_-], got {bad:?}"
        )));
    }
    Ok(())
}

/// What [`Session::ingest`] did with the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The batch reached the window immediately (possibly after draining
    /// earlier queued batches); the slide outcome is the window's.
    Applied(SlideOutcome),
    /// The window was busy (another caller mining or recovering); the batch
    /// parked in the ingest queue and will be applied, in order, by the next
    /// caller that acquires the window.
    Queued,
}

/// Where a session is in its residency lifecycle (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleState {
    /// Window resident and recently touched.
    Active,
    /// Window resident; the clock hand passed without a touch since the
    /// last rotation — the next pass spills it.
    Idle,
    /// Mid-transition: spilling or thawing under the window lock.
    Draining,
    /// Window serialised to disk; the next request thaws it transparently.
    Spilled,
}

impl LifecycleState {
    /// Stable lower-case name (wire protocol, CLI output).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Active => "active",
            Self::Idle => "idle",
            Self::Draining => "draining",
            Self::Spilled => "spilled",
        }
    }

    /// Stable single-byte wire encoding.
    pub fn code(self) -> u8 {
        match self {
            Self::Active => 0,
            Self::Idle => 1,
            Self::Draining => 2,
            Self::Spilled => 3,
        }
    }

    /// Inverse of [`LifecycleState::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Self::Active),
            1 => Some(Self::Idle),
            2 => Some(Self::Draining),
            3 => Some(Self::Spilled),
            _ => None,
        }
    }
}

impl std::fmt::Display for LifecycleState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A point-in-time snapshot of one session's lifecycle bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStatus {
    /// Current lifecycle state.
    pub state: LifecycleState,
    /// Bytes of resident window state (`0` while spilled).
    pub resident_bytes: u64,
    /// Transparent thaws performed over the session's lifetime.
    pub thaws: u64,
    /// Total nanoseconds spent in those thaws (the thawing latency the
    /// service reports; divide by [`SessionStatus::thaws`] for the mean).
    pub thaw_nanos: u64,
}

/// One tenant: one sliding window, its miner configuration, and its
/// delta/durable state, shareable across threads.
///
/// Created through [`SessionRegistry::create_tenant`] /
/// [`SessionRegistry::recover_tenant`]; all methods take `&self`.  The
/// window may be resident ([`StreamMiner`]) or spilled to disk — every
/// entry point re-hydrates it transparently, which is why the miner-facing
/// methods return [`Result`].
pub struct Session {
    tenant: String,
    exec: Exec,
    max_pending: usize,
    /// The window — live or spilled.  Held only for the duration of one
    /// operation (an ingest drain, one mine, a spill or thaw); producers
    /// meeting a held lock park their batches in `pending` instead of
    /// blocking on it.
    window: Mutex<Window>,
    /// Residency bookkeeping.  Lock order: `window` before `lifecycle`;
    /// never the reverse.
    lifecycle: Mutex<Lifecycle>,
    /// Where this tenant spills: `spill_root/<tenant>/` for volatile
    /// tenants, the durable directory for durable ones, `None` when the
    /// tenant is pinned resident (volatile, no spill root configured).
    spill_dir: Option<PathBuf>,
    /// Back-pointer for touch stamps and sweep triggering.
    shared: Weak<Shared>,
    /// Bounded arrival-order ingest queue (see the module docs).
    pending: Mutex<VecDeque<Batch>>,
    /// Latest mine-on-slide publication plus subscriber bookkeeping.
    published: Mutex<Published>,
    publish_signal: Condvar,
}

/// The two residency states of a window, behind [`Session::window`].
enum Window {
    // Boxed: a resident miner is ~1.5 KiB, a spilled stub a fraction of
    // that — keep the enum small so the mutex guard stays cheap to move.
    Live(Box<StreamMiner>),
    Spilled(Box<SpilledWindow>),
}

/// Everything needed to rebuild a spilled window: the full miner
/// configuration (catalog cloned back in — the miner moves it out at build
/// time) and the directory holding the cold copy.
struct SpilledWindow {
    config: MinerConfig,
    dir: PathBuf,
}

struct Lifecycle {
    state: LifecycleState,
    /// Clock-sweep reference bit: set on every completed operation, cleared
    /// by a passing hand.
    touched: bool,
    /// Logical-clock stamp of the last completed operation (diagnostic;
    /// the sweep keys off `touched`).
    #[allow(dead_code)]
    last_touch: u64,
    resident_bytes: usize,
    thaws: u64,
    thaw_nanos: u64,
    /// Individual thaw latencies (nanoseconds), capped at
    /// [`Session::THAW_SAMPLE_CAP`] — enough for the density experiment's
    /// percentiles without unbounded growth.
    thaw_samples: Vec<u64>,
}

#[derive(Default)]
struct Published {
    /// Monotone publication counter; `0` = nothing published yet.
    seq: u64,
    result: Option<MiningResult>,
    subscribers: usize,
}

impl Session {
    /// Per-session cap on retained thaw-latency samples.
    const THAW_SAMPLE_CAP: usize = 1024;

    fn new(
        tenant: String,
        miner: StreamMiner,
        exec: Exec,
        max_pending: usize,
        spill_dir: Option<PathBuf>,
        shared: Weak<Shared>,
    ) -> Self {
        let resident_bytes = miner.resident_bytes();
        Self {
            tenant,
            exec,
            max_pending: max_pending.max(1),
            window: Mutex::new(Window::Live(Box::new(miner))),
            lifecycle: Mutex::new(Lifecycle {
                state: LifecycleState::Active,
                touched: true,
                last_touch: 0,
                resident_bytes,
                thaws: 0,
                thaw_nanos: 0,
                thaw_samples: Vec::new(),
            }),
            spill_dir,
            shared,
            pending: Mutex::new(VecDeque::new()),
            published: Mutex::new(Published::default()),
            publish_signal: Condvar::new(),
        }
    }

    /// This session's tenant id.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Current lifecycle state.
    pub fn state(&self) -> LifecycleState {
        lock_unpoisoned(&self.lifecycle).state
    }

    /// Lifecycle bookkeeping snapshot: state, resident bytes, thaw stats.
    pub fn status(&self) -> SessionStatus {
        let lifecycle = lock_unpoisoned(&self.lifecycle);
        SessionStatus {
            state: lifecycle.state,
            resident_bytes: lifecycle.resident_bytes as u64,
            thaws: lifecycle.thaws,
            thaw_nanos: lifecycle.thaw_nanos,
        }
    }

    /// Individual thaw latencies in nanoseconds (capped retention; see
    /// [`SessionStatus`] for the running totals).
    pub fn thaw_latencies(&self) -> Vec<u64> {
        lock_unpoisoned(&self.lifecycle).thaw_samples.clone()
    }

    /// Ingests one batch: applied immediately when the window is free
    /// (thawing it first if spilled), queued (bounded) when it is busy,
    /// [`FsmError::Backpressure`] when the queue is full — see the module
    /// docs for the exact protocol.
    pub fn ingest(&self, batch: &Batch) -> Result<IngestOutcome> {
        let (outcome, resident_bytes) = {
            let Ok(mut window) = self.window.try_lock() else {
                let mut pending = lock_unpoisoned(&self.pending);
                if pending.len() >= self.max_pending {
                    return Err(FsmError::backpressure(&self.tenant));
                }
                pending.push_back(batch.clone());
                return Ok(IngestOutcome::Queued);
            };
            let miner = self.live(&mut window)?;
            self.drain_into(miner)?;
            let outcome = miner.ingest_batch(batch)?;
            if self.has_subscribers() {
                self.publish(miner)?;
            }
            (outcome, miner.resident_bytes())
        };
        self.after_touch(resident_bytes);
        Ok(IngestOutcome::Applied(outcome))
    }

    /// Mines the current window (thawing it if spilled and draining any
    /// queued ingests first) under the registry's executor.  Equivalent to
    /// [`StreamMiner::mine`] on a standalone miner fed the same batches.
    pub fn mine(&self) -> Result<MiningResult> {
        let (result, resident_bytes) = {
            let mut window = lock_unpoisoned(&self.window);
            let miner = self.live(&mut window)?;
            self.drain_into(miner)?;
            (miner.mine_with(&self.exec)?, miner.resident_bytes())
        };
        self.after_touch(resident_bytes);
        Ok(result)
    }

    /// Registers a mine-on-every-slide consumer; see the module docs.
    /// Publication work is only performed while at least one subscription
    /// is alive.  Subscribing does not thaw a spilled session — the next
    /// slide (an ingest) does, and publishes as usual.
    pub fn subscribe(self: &Arc<Self>) -> Subscription {
        let mut published = lock_unpoisoned(&self.published);
        published.subscribers += 1;
        Subscription {
            session: Arc::clone(self),
            last_seen: published.seq,
        }
    }

    /// Runs `f` under the window lock after thawing (if spilled) and
    /// draining queued ingests — the escape hatch for callers needing
    /// [`StreamMiner`] surface the session does not wrap (recovery reports,
    /// memory accounting).
    pub fn with_miner<R>(&self, f: impl FnOnce(&mut StreamMiner) -> R) -> Result<R> {
        let (value, resident_bytes) = {
            let mut window = lock_unpoisoned(&self.window);
            let miner = self.live(&mut window)?;
            let _ = self.drain_into(miner);
            let value = f(miner);
            (value, miner.resident_bytes())
        };
        self.after_touch(resident_bytes);
        Ok(value)
    }

    /// Spills the window to disk: drains the pending queue (publishing to
    /// subscribers exactly as a normal drain would), hibernates the miner
    /// ([`StreamMiner::hibernate`]) and drops the resident state — its
    /// budget lease flows back to the governor.  Returns `Ok(false)` when
    /// there is nothing to do: already spilled, or the tenant is pinned
    /// resident (volatile with no spill root).
    ///
    /// Blocks on the window lock, so a spill racing an in-flight mine
    /// simply waits for the mine (and the drain that follows it) to finish.
    pub fn spill(&self) -> Result<bool> {
        let Some(dir) = &self.spill_dir else {
            return Ok(false);
        };
        let mut window = lock_unpoisoned(&self.window);
        let Window::Live(miner) = &mut *window else {
            return Ok(false);
        };
        self.set_state(LifecycleState::Draining);
        let sealed = self.drain_into(miner).and_then(|_| miner.hibernate(dir));
        if let Err(err) = sealed {
            self.set_state(LifecycleState::Active);
            return Err(err);
        }
        let mut config = miner.config().clone();
        config.catalog = Some(miner.catalog().clone());
        *window = Window::Spilled(Box::new(SpilledWindow {
            config,
            dir: dir.clone(),
        }));
        // Still under the window lock (lock order: `window` before
        // `lifecycle`): releasing the window first would let a racing
        // request thaw it back to Live in the gap, after which this tail
        // would stamp Spilled/0 over an Active session — a state nothing
        // downstream ever repairs.
        let mut lifecycle = lock_unpoisoned(&self.lifecycle);
        lifecycle.state = LifecycleState::Spilled;
        lifecycle.resident_bytes = 0;
        lifecycle.touched = false;
        drop(lifecycle);
        drop(window);
        Ok(true)
    }

    /// Queued batches not yet applied to the window.
    pub fn pending_batches(&self) -> usize {
        lock_unpoisoned(&self.pending).len()
    }

    /// Returns the live miner behind `window`, transparently thawing a
    /// spilled one first.  Thaw latency lands in the lifecycle bookkeeping;
    /// a failed thaw leaves the session spilled and surfaces the error (a
    /// proven-corrupt image was already deleted down in the matrix layer,
    /// so the operator can drop and recreate the tenant).
    fn live<'a>(&self, window: &'a mut Window) -> Result<&'a mut StreamMiner> {
        if let Window::Spilled(spilled) = window {
            let config = spilled.config.clone();
            let dir = spilled.dir.clone();
            self.set_state(LifecycleState::Draining);
            let started = Instant::now();
            match StreamMiner::thaw(config, &dir) {
                Ok(miner) => {
                    let nanos = started.elapsed().as_nanos() as u64;
                    let resident_bytes = miner.resident_bytes();
                    *window = Window::Live(Box::new(miner));
                    let mut lifecycle = lock_unpoisoned(&self.lifecycle);
                    lifecycle.state = LifecycleState::Active;
                    // Counted resident immediately — waiting for the
                    // post-operation `after_touch` would let a concurrent
                    // enforce() see this session Active with 0 bytes.
                    lifecycle.resident_bytes = resident_bytes;
                    lifecycle.thaws += 1;
                    lifecycle.thaw_nanos += nanos;
                    if lifecycle.thaw_samples.len() < Self::THAW_SAMPLE_CAP {
                        lifecycle.thaw_samples.push(nanos);
                    }
                }
                Err(err) => {
                    self.set_state(LifecycleState::Spilled);
                    return Err(err);
                }
            }
        }
        match window {
            Window::Live(miner) => Ok(&mut **miner),
            Window::Spilled(_) => unreachable!("window was thawed above"),
        }
    }

    fn set_state(&self, state: LifecycleState) {
        lock_unpoisoned(&self.lifecycle).state = state;
    }

    /// Post-operation bookkeeping, called strictly *after* the window lock
    /// is released: stamp the touch, then give the registry a chance to
    /// re-balance the resident set (it `try_lock`s the sweep hand, so this
    /// never blocks the completing request).
    fn after_touch(&self, resident_bytes: usize) {
        let shared = self.shared.upgrade();
        {
            let mut lifecycle = lock_unpoisoned(&self.lifecycle);
            lifecycle.touched = true;
            lifecycle.resident_bytes = resident_bytes;
            if lifecycle.state == LifecycleState::Idle {
                lifecycle.state = LifecycleState::Active;
            }
            if let Some(shared) = &shared {
                lifecycle.last_touch = shared.clock.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(shared) = &shared {
            shared.enforce();
        }
    }

    /// Admission-time variant of [`Session::after_touch`]: stamps the
    /// clock without sweeping (the registry sweeps right after insert).
    fn stamp_touch(&self) {
        if let Some(shared) = self.shared.upgrade() {
            lock_unpoisoned(&self.lifecycle).last_touch =
                shared.clock.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Applies every queued batch in arrival order; returns the last slide
    /// outcome (`None` when the queue was empty).  Publishes to subscribers
    /// after any slide.
    fn drain_into(&self, miner: &mut StreamMiner) -> Result<Option<SlideOutcome>> {
        let mut last = None;
        loop {
            let batch = {
                let mut pending = lock_unpoisoned(&self.pending);
                match pending.pop_front() {
                    Some(batch) => batch,
                    None => break,
                }
            };
            last = Some(miner.ingest_batch(&batch)?);
        }
        if last.is_some() && self.has_subscribers() {
            self.publish(miner)?;
        }
        Ok(last)
    }

    fn has_subscribers(&self) -> bool {
        lock_unpoisoned(&self.published).subscribers > 0
    }

    /// Mines the just-slid window and publishes the result: through a
    /// frozen epoch snapshot for full-mine tenants, through the maintained
    /// delta state for delta tenants.
    fn publish(&self, miner: &mut StreamMiner) -> Result<()> {
        let result = if miner.config().delta {
            miner.mine_with(&self.exec)?
        } else {
            miner.snapshot()?.mine_with(&self.exec)?
        };
        let mut published = lock_unpoisoned(&self.published);
        published.seq += 1;
        published.result = Some(result);
        drop(published);
        self.publish_signal.notify_all();
        Ok(())
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("tenant", &self.tenant)
            .field("state", &self.state())
            .field("pending", &self.pending_batches())
            .finish()
    }
}

/// A mine-on-every-slide consumer handle (see [`Session::subscribe`]).
#[derive(Debug)]
pub struct Subscription {
    session: Arc<Session>,
    last_seen: u64,
}

impl Subscription {
    /// The newest published result this handle has not seen yet, if any.
    /// Slides between polls coalesce: only the latest epoch's result is
    /// retained, mirroring how a dashboard consumes a stream.
    pub fn poll(&mut self) -> Option<MiningResult> {
        let published = lock_unpoisoned(&self.session.published);
        if published.seq == self.last_seen {
            return None;
        }
        self.last_seen = published.seq;
        published.result.clone()
    }

    /// Blocks until a result newer than the last seen one is published,
    /// then returns it.
    pub fn wait(&mut self) -> MiningResult {
        let mut published = lock_unpoisoned(&self.session.published);
        while published.seq == self.last_seen || published.result.is_none() {
            published = self
                .session
                .publish_signal
                .wait(published)
                .unwrap_or_else(|p| p.into_inner());
        }
        self.last_seen = published.seq;
        published
            .result
            .clone()
            .expect("loop exits only with a published result")
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        let mut published = lock_unpoisoned(&self.session.published);
        published.subscribers = published.subscribers.saturating_sub(1);
    }
}

fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use fsm_storage::TempDir;
    use fsm_types::{EdgeCatalog, MinSup, Transaction};

    fn tenant_config() -> MinerConfig {
        MinerConfig {
            algorithm: Algorithm::DirectVertical,
            window: fsm_stream::WindowConfig::new(2).unwrap(),
            min_support: MinSup::absolute(2),
            catalog: Some(EdgeCatalog::complete(4)),
            ..MinerConfig::default()
        }
    }

    fn paper_batches() -> Vec<Batch> {
        let e = |raw: &[u32]| Transaction::from_raw(raw.iter().copied());
        vec![
            Batch::from_transactions(0, vec![e(&[2, 3, 5]), e(&[0, 4, 5]), e(&[0, 2, 5])]),
            Batch::from_transactions(1, vec![e(&[0, 2, 3, 5]), e(&[0, 3, 4, 5]), e(&[0, 1, 2])]),
            Batch::from_transactions(2, vec![e(&[0, 2, 5]), e(&[0, 2, 3, 5]), e(&[1, 2, 3])]),
        ]
    }

    #[test]
    fn tenants_are_isolated_and_match_standalone_miners() {
        let registry = SessionRegistry::new(RegistryConfig::default());
        let a = registry.create_tenant("a", tenant_config(), false).unwrap();
        let b = registry.create_tenant("b", tenant_config(), false).unwrap();
        let batches = paper_batches();
        // Interleave: a gets all three batches, b only the first.
        a.ingest(&batches[0]).unwrap();
        b.ingest(&batches[0]).unwrap();
        a.ingest(&batches[1]).unwrap();
        a.ingest(&batches[2]).unwrap();
        let mut standalone_a = StreamMiner::new(tenant_config()).unwrap();
        let mut standalone_b = StreamMiner::new(tenant_config()).unwrap();
        for batch in &batches {
            standalone_a.ingest_batch(batch).unwrap();
        }
        standalone_b.ingest_batch(&batches[0]).unwrap();
        assert!(a
            .mine()
            .unwrap()
            .same_patterns_as(&standalone_a.mine().unwrap()));
        assert!(b
            .mine()
            .unwrap()
            .same_patterns_as(&standalone_b.mine().unwrap()));
    }

    #[test]
    fn registry_rejects_bad_ids_duplicates_and_reserved_config() {
        let registry = SessionRegistry::new(RegistryConfig::default());
        assert!(registry.create_tenant("", tenant_config(), false).is_err());
        assert!(registry
            .create_tenant("a/../b", tenant_config(), false)
            .is_err());
        assert!(registry
            .create_tenant(&"x".repeat(65), tenant_config(), false)
            .is_err());
        registry
            .create_tenant("dup", tenant_config(), false)
            .unwrap();
        assert!(matches!(
            registry.create_tenant("dup", tenant_config(), false),
            Err(FsmError::TenantExists(_))
        ));
        let mut config = tenant_config();
        config.durable_dir = Some("/tmp/evil".into());
        assert!(registry.create_tenant("evil", config, false).is_err());
        assert!(matches!(
            registry.get("missing"),
            Err(FsmError::UnknownTenant(_))
        ));
        registry.drop_tenant("dup").unwrap();
        assert!(registry.get("dup").is_err());
    }

    #[test]
    fn full_queue_reports_backpressure_and_drains_in_order() {
        let registry = SessionRegistry::new(RegistryConfig {
            max_pending_batches: 2,
            ..RegistryConfig::default()
        });
        let session = registry.create_tenant("t", tenant_config(), false).unwrap();
        let batches = paper_batches();
        // Hold the window hostage on another thread so ingests queue.
        let hostage = Arc::clone(&session);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        let holder = std::thread::spawn(move || {
            hostage
                .with_miner(|_| {
                    ready_tx.send(()).unwrap();
                    rx.recv().unwrap();
                })
                .unwrap();
        });
        ready_rx.recv().unwrap();
        assert_eq!(session.ingest(&batches[0]).unwrap(), IngestOutcome::Queued);
        assert_eq!(session.ingest(&batches[1]).unwrap(), IngestOutcome::Queued);
        assert!(matches!(
            session.ingest(&batches[2]),
            Err(FsmError::Backpressure { .. })
        ));
        tx.send(()).unwrap();
        holder.join().unwrap();
        // The third batch applies now; the queued two drain first, in order.
        assert!(matches!(
            session.ingest(&batches[2]).unwrap(),
            IngestOutcome::Applied(_)
        ));
        assert_eq!(session.pending_batches(), 0);
        let mut standalone = StreamMiner::new(tenant_config()).unwrap();
        for batch in &batches {
            standalone.ingest_batch(batch).unwrap();
        }
        assert!(session
            .mine()
            .unwrap()
            .same_patterns_as(&standalone.mine().unwrap()));
    }

    #[test]
    fn subscriptions_publish_on_every_slide() {
        let registry = SessionRegistry::new(RegistryConfig::default());
        let session = registry
            .create_tenant("sub", tenant_config(), false)
            .unwrap();
        let mut subscription = session.subscribe();
        assert!(subscription.poll().is_none());
        let batches = paper_batches();
        let mut standalone = StreamMiner::new(tenant_config()).unwrap();
        for batch in &batches {
            session.ingest(&batch.clone()).unwrap();
            standalone.ingest_batch(batch).unwrap();
            let published = subscription.poll().expect("every slide publishes");
            assert!(published.same_patterns_as(&standalone.mine().unwrap()));
        }
        // A late subscriber only sees publications after it joined.
        let mut late = session.subscribe();
        assert!(late.poll().is_none());
        drop(subscription);
        drop(late);
        // With no subscribers, slides stop publishing.
        let seq_before = lock_unpoisoned(&session.published).seq;
        session.ingest(&batches[0]).unwrap();
        assert_eq!(lock_unpoisoned(&session.published).seq, seq_before);
    }

    #[test]
    fn pool_execution_matches_scoped_execution() {
        let pooled = SessionRegistry::new(RegistryConfig {
            exec: Exec::pool(Arc::new(crate::WorkerPool::new(3))),
            ..RegistryConfig::default()
        });
        let scoped = SessionRegistry::new(RegistryConfig::default());
        let a = pooled.create_tenant("t", tenant_config(), false).unwrap();
        let b = scoped.create_tenant("t", tenant_config(), false).unwrap();
        for batch in paper_batches() {
            a.ingest(&batch).unwrap();
            b.ingest(&batch).unwrap();
        }
        assert!(a.mine().unwrap().same_patterns_as(&b.mine().unwrap()));
    }

    #[test]
    fn resident_cap_spills_cold_tenants_and_thaws_on_demand() {
        let spill_root = TempDir::new("session-spill").unwrap();
        let registry = SessionRegistry::new(RegistryConfig {
            max_resident: Some(1),
            spill_root: Some(spill_root.path().to_path_buf()),
            ..RegistryConfig::default()
        });
        let a = registry.create_tenant("a", tenant_config(), false).unwrap();
        let b = registry.create_tenant("b", tenant_config(), false).unwrap();
        let batches = paper_batches();
        a.ingest(&batches[0]).unwrap();
        a.ingest(&batches[1]).unwrap();
        // Touch b repeatedly: the sweep must eventually evict cold a.
        for _ in 0..4 {
            b.ingest(&batches[0]).unwrap();
            registry.enforce_residency();
        }
        assert_eq!(a.state(), LifecycleState::Spilled);
        assert_eq!(a.status().resident_bytes, 0);
        assert!(
            fsm_storage::Hibernation::artifact_path(&spill_root.path().join("a")).exists(),
            "volatile spill must leave an image under spill_root/<tenant>/"
        );
        // A request against the spilled tenant thaws it transparently and
        // the output is byte-identical to a never-spilled run.
        a.ingest(&batches[2]).unwrap();
        // (The sweep triggered by a's own touch may already have demoted it
        // back to Idle — resident either way.)
        assert_ne!(a.state(), LifecycleState::Spilled);
        assert!(a.status().thaws >= 1);
        assert!(a.status().resident_bytes > 0);
        let mut standalone = StreamMiner::new(tenant_config()).unwrap();
        for batch in &batches {
            standalone.ingest_batch(batch).unwrap();
        }
        assert!(a
            .mine()
            .unwrap()
            .same_patterns_as(&standalone.mine().unwrap()));
    }

    #[test]
    fn duplicate_create_never_destroys_a_spilled_tenants_image() {
        let spill_root = TempDir::new("session-dup-spill").unwrap();
        let registry = SessionRegistry::new(RegistryConfig {
            spill_root: Some(spill_root.path().to_path_buf()),
            ..RegistryConfig::default()
        });
        let session = registry.create_tenant("t", tenant_config(), false).unwrap();
        let batches = paper_batches();
        session.ingest(&batches[0]).unwrap();
        session.ingest(&batches[1]).unwrap();
        assert!(session.spill().unwrap());
        let artifact = fsm_storage::Hibernation::artifact_path(&spill_root.path().join("t"));
        assert!(artifact.exists());
        // The duplicate must bounce off the registry *before* the stale-
        // image cleanup: while spilled, that image is the live tenant's
        // only copy of its window.
        assert!(matches!(
            registry.create_tenant("t", tenant_config(), false),
            Err(FsmError::TenantExists(_))
        ));
        assert!(
            artifact.exists(),
            "duplicate create destroyed a live tenant's spill image"
        );
        let mut standalone = StreamMiner::new(tenant_config()).unwrap();
        standalone.ingest_batch(&batches[0]).unwrap();
        standalone.ingest_batch(&batches[1]).unwrap();
        assert!(session
            .mine()
            .unwrap()
            .same_patterns_as(&standalone.mine().unwrap()));
    }

    #[test]
    fn tenants_without_a_spill_root_are_pinned_resident() {
        let registry = SessionRegistry::new(RegistryConfig {
            max_resident: Some(1),
            ..RegistryConfig::default()
        });
        let a = registry.create_tenant("a", tenant_config(), false).unwrap();
        let b = registry.create_tenant("b", tenant_config(), false).unwrap();
        for _ in 0..4 {
            a.ingest(&paper_batches()[0]).unwrap();
            b.ingest(&paper_batches()[0]).unwrap();
            registry.enforce_residency();
        }
        assert_ne!(a.state(), LifecycleState::Spilled);
        assert_ne!(b.state(), LifecycleState::Spilled);
        assert!(!a.spill().unwrap());
    }

    #[test]
    fn spill_drains_pending_and_preserves_subscriptions() {
        let spill_root = TempDir::new("session-spill-drain").unwrap();
        let registry = SessionRegistry::new(RegistryConfig {
            spill_root: Some(spill_root.path().to_path_buf()),
            ..RegistryConfig::default()
        });
        let session = registry.create_tenant("t", tenant_config(), false).unwrap();
        let mut subscription = session.subscribe();
        let batches = paper_batches();
        session.ingest(&batches[0]).unwrap();
        assert!(subscription.poll().is_some());
        // Park a batch in the queue while the window is held hostage, then
        // spill: the spill must drain (and publish) it before hibernating.
        let hostage = Arc::clone(&session);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        let holder = std::thread::spawn(move || {
            hostage
                .with_miner(|_| {
                    ready_tx.send(()).unwrap();
                    rx.recv().unwrap();
                })
                .unwrap();
        });
        ready_rx.recv().unwrap();
        assert_eq!(session.ingest(&batches[1]).unwrap(), IngestOutcome::Queued);
        tx.send(()).unwrap();
        holder.join().unwrap();
        assert!(session.spill().unwrap());
        assert_eq!(session.state(), LifecycleState::Spilled);
        assert_eq!(session.pending_batches(), 0);
        // The queued batch was published on its way into the spill image.
        let mut standalone = StreamMiner::new(tenant_config()).unwrap();
        standalone.ingest_batch(&batches[0]).unwrap();
        standalone.ingest_batch(&batches[1]).unwrap();
        assert!(subscription
            .poll()
            .expect("drain inside spill publishes")
            .same_patterns_as(&standalone.mine().unwrap()));
        // The armed subscription keeps working across the thaw.
        session.ingest(&batches[2]).unwrap();
        standalone.ingest_batch(&batches[2]).unwrap();
        assert!(subscription
            .poll()
            .expect("post-thaw slide publishes")
            .same_patterns_as(&standalone.mine().unwrap()));
    }
}
