//! Multi-tenant session layer: many independent sliding windows served by
//! one process.
//!
//! A [`Session`] owns what a single-tenant process owned implicitly — one
//! window (a [`StreamMiner`]) plus its miner configuration and optional
//! delta/durable state — behind a lock, so ingest producers, on-demand mine
//! callers and subscription consumers can share it from different threads.
//! The [`SessionRegistry`] keys sessions by tenant id and owns the
//! process-wide resources every session draws from:
//!
//! * one [`Exec`] — typically [`Exec::pool`] over a fixed
//!   [`crate::WorkerPool`], so a thousand concurrent tenant mines multiplex
//!   their subtree tasks over one worker set instead of spawning a thousand
//!   scoped sets;
//! * one optional [`BudgetGovernor`] — the process-wide chunk-cache cap the
//!   disk-backed tenants lease from;
//! * one optional durable root — each durable tenant's WAL/checkpoints live
//!   under `durable_root/<tenant>/`, so recovery is per tenant
//!   ([`SessionRegistry::recover_tenant`]) and a tenant id is all an
//!   operator needs to find its artifacts.
//!
//! Per-tenant output is **byte-identical to a standalone single-tenant
//! run** of the same batch/mine sequence, for every backend, pool size and
//! cross-tenant interleaving — property-tested in
//! `crates/core/tests/tenant_isolation.rs`.  The ingredients: sessions
//! never share mutable mining state, pool tasks return in task-index order,
//! and the budget governor only moves bytes between disk and cache.
//!
//! # Ingest, backpressure and subscriptions
//!
//! [`Session::ingest`] applies the batch immediately when the window is
//! free; while another caller holds the window (a long mine, a recovery),
//! batches park in a bounded per-tenant queue and are drained — in arrival
//! order — by whichever caller next acquires the window.  A full queue is
//! the backpressure signal ([`fsm_types::FsmError::Backpressure`]): the
//! producer must retry, nothing is dropped, and one slow tenant cannot
//! queue unboundedly while others starve.
//!
//! [`Session::subscribe`] registers a consumer for mine-on-every-slide
//! output: whenever an ingest completes a window slide, the session mines
//! the new epoch — through a frozen [`MinerSnapshot`](crate::MinerSnapshot)
//! ([`StreamMiner::snapshot`]), the same reader path the concurrent-mining
//! layer uses — and publishes the result; subscribers [`Subscription::poll`]
//! or block on [`Subscription::wait`] for it.  Delta-enabled tenants
//! publish through their maintained [`crate::DeltaMiner`] state instead
//! (it requires exclusive access); either way the published patterns are
//! the ones a stop-the-world mine at that epoch would return.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use fsm_storage::BudgetGovernor;
use fsm_stream::SlideOutcome;
use fsm_types::{Batch, FsmError, Result};

use crate::config::MinerConfig;
use crate::miner::StreamMiner;
use crate::parallel::Exec;
use crate::result::MiningResult;

/// Process-wide resources and policies shared by every tenant of a
/// [`SessionRegistry`].
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Executor every tenant mine runs under.  The service shape is
    /// [`Exec::pool`] over one fixed [`crate::WorkerPool`]; the default
    /// ([`Exec::scoped`]`(1)`) mines each tenant sequentially on the calling
    /// thread.
    pub exec: Exec,
    /// Process-wide chunk-cache cap the disk-backed tenants lease from
    /// (see [`MinerConfig::cache_governor`]).  `None` leaves each tenant's
    /// configured budget private — the sum is then unmanaged.
    pub governor: Option<Arc<BudgetGovernor>>,
    /// Root directory for durable tenants: a tenant configured with a disk
    /// backend and durability gets `durable_root/<tenant>/` as its durable
    /// directory.  `None` forbids durable tenants.
    pub durable_root: Option<PathBuf>,
    /// Per-tenant ingest queue bound — the backpressure threshold.
    pub max_pending_batches: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            exec: Exec::scoped(1),
            governor: None,
            durable_root: None,
            max_pending_batches: Self::DEFAULT_MAX_PENDING,
        }
    }
}

impl RegistryConfig {
    /// Default per-tenant ingest queue bound.
    pub const DEFAULT_MAX_PENDING: usize = 64;
}

/// The tenant table: creates, recovers, serves and drops [`Session`]s.
///
/// Shared by reference ([`Arc<SessionRegistry>`]) between every server
/// thread; all methods take `&self`.
pub struct SessionRegistry {
    config: RegistryConfig,
    sessions: Mutex<BTreeMap<String, Arc<Session>>>,
}

impl SessionRegistry {
    /// Maximum tenant-id length accepted by [`validate_tenant_id`].
    pub const MAX_TENANT_ID_LEN: usize = 64;

    /// Creates an empty registry.
    pub fn new(config: RegistryConfig) -> Self {
        Self {
            config,
            sessions: Mutex::new(BTreeMap::new()),
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// Creates a fresh tenant.
    ///
    /// The per-tenant `config` must leave [`MinerConfig::durable_dir`] and
    /// [`MinerConfig::cache_governor`] unset — the registry owns durable
    /// namespacing (`durable_root/<tenant>/`) and budget arbitration; a
    /// tenant naming its own directory could alias another tenant's state.
    /// Set `durable` to root this tenant under the registry's durable root
    /// (requires one to be configured and a disk backend).
    pub fn create_tenant(
        &self,
        tenant: &str,
        config: MinerConfig,
        durable: bool,
    ) -> Result<Arc<Session>> {
        self.admit(tenant, config, durable, false)
    }

    /// Recovers a durable tenant from `durable_root/<tenant>/` (newest
    /// verifiable checkpoint plus WAL-tail replay; see
    /// [`StreamMiner::recover`]).  The configuration must match the run
    /// being recovered, exactly as in the single-tenant case.
    pub fn recover_tenant(&self, tenant: &str, config: MinerConfig) -> Result<Arc<Session>> {
        self.admit(tenant, config, true, true)
    }

    fn admit(
        &self,
        tenant: &str,
        mut config: MinerConfig,
        durable: bool,
        recovering: bool,
    ) -> Result<Arc<Session>> {
        validate_tenant_id(tenant)?;
        if config.durable_dir.is_some() {
            return Err(FsmError::config(
                "tenant configurations must not set durable_dir: the registry \
                 namespaces durable state under durable_root/<tenant>/",
            ));
        }
        if config.cache_governor.is_some() {
            return Err(FsmError::config(
                "tenant configurations must not set cache_governor: the \
                 registry's governor arbitrates every tenant's budget",
            ));
        }
        if durable {
            let root =
                self.config.durable_root.as_ref().ok_or_else(|| {
                    FsmError::config("durable tenants need a registry durable_root")
                })?;
            config.durable_dir = Some(root.join(tenant));
        }
        config.cache_governor = self.config.governor.clone();
        let mut sessions = lock_unpoisoned(&self.sessions);
        if sessions.contains_key(tenant) {
            return Err(FsmError::tenant_exists(tenant));
        }
        let miner = if recovering {
            StreamMiner::recover(config)?
        } else {
            StreamMiner::new(config)?
        };
        let session = Arc::new(Session::new(
            tenant.to_string(),
            miner,
            self.config.exec.clone(),
            self.config.max_pending_batches,
        ));
        sessions.insert(tenant.to_string(), Arc::clone(&session));
        Ok(session)
    }

    /// Looks a live tenant up.
    pub fn get(&self, tenant: &str) -> Result<Arc<Session>> {
        lock_unpoisoned(&self.sessions)
            .get(tenant)
            .cloned()
            .ok_or_else(|| FsmError::unknown_tenant(tenant))
    }

    /// Removes a tenant from the registry.  In-flight operations on clones
    /// of its [`Arc<Session>`] complete normally; the session's resources
    /// (worker-pool access aside, which is shared) are freed when the last
    /// clone drops — including its budget lease, whose grant flows back to
    /// the surviving tenants.
    pub fn drop_tenant(&self, tenant: &str) -> Result<()> {
        lock_unpoisoned(&self.sessions)
            .remove(tenant)
            .map(|_| ())
            .ok_or_else(|| FsmError::unknown_tenant(tenant))
    }

    /// Live tenant ids, sorted.
    pub fn tenants(&self) -> Vec<String> {
        lock_unpoisoned(&self.sessions).keys().cloned().collect()
    }

    /// Tenant ids with durable state under the registry's durable root —
    /// what [`SessionRegistry::recover_tenant`] can resurrect after a crash.
    /// Empty without a durable root; ids that fail validation (a stray
    /// directory) are skipped.
    pub fn durable_tenants(&self) -> Result<Vec<String>> {
        let Some(root) = &self.config.durable_root else {
            return Ok(Vec::new());
        };
        let mut tenants = Vec::new();
        if !root.exists() {
            return Ok(tenants);
        }
        for entry in std::fs::read_dir(root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if validate_tenant_id(&name).is_ok() {
                tenants.push(name);
            }
        }
        tenants.sort();
        Ok(tenants)
    }
}

impl std::fmt::Debug for SessionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionRegistry")
            .field("tenants", &self.tenants())
            .field("exec", &self.config.exec)
            .finish()
    }
}

/// Accepts `[A-Za-z0-9_-]{1,64}` — ids double as durable directory names
/// and wire-protocol tokens, so nothing path- or whitespace-like gets in.
pub fn validate_tenant_id(tenant: &str) -> Result<()> {
    if tenant.is_empty() || tenant.len() > SessionRegistry::MAX_TENANT_ID_LEN {
        return Err(FsmError::config(format!(
            "tenant id must be 1..={} characters, got {}",
            SessionRegistry::MAX_TENANT_ID_LEN,
            tenant.len()
        )));
    }
    if let Some(bad) = tenant
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || *c == '_' || *c == '-'))
    {
        return Err(FsmError::config(format!(
            "tenant id may only contain [A-Za-z0-9_-], got {bad:?}"
        )));
    }
    Ok(())
}

/// What [`Session::ingest`] did with the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The batch reached the window immediately (possibly after draining
    /// earlier queued batches); the slide outcome is the window's.
    Applied(SlideOutcome),
    /// The window was busy (another caller mining or recovering); the batch
    /// parked in the ingest queue and will be applied, in order, by the next
    /// caller that acquires the window.
    Queued,
}

/// One tenant: one sliding window, its miner configuration, and its
/// delta/durable state, shareable across threads.
///
/// Created through [`SessionRegistry::create_tenant`] /
/// [`SessionRegistry::recover_tenant`]; all methods take `&self`.
pub struct Session {
    tenant: String,
    exec: Exec,
    max_pending: usize,
    /// The window.  Held only for the duration of one operation (an ingest
    /// drain, one mine); producers meeting a held lock park their batches in
    /// `pending` instead of blocking on it.
    miner: Mutex<StreamMiner>,
    /// Bounded arrival-order ingest queue (see the module docs).
    pending: Mutex<VecDeque<Batch>>,
    /// Latest mine-on-slide publication plus subscriber bookkeeping.
    published: Mutex<Published>,
    publish_signal: Condvar,
}

#[derive(Default)]
struct Published {
    /// Monotone publication counter; `0` = nothing published yet.
    seq: u64,
    result: Option<MiningResult>,
    subscribers: usize,
}

impl Session {
    fn new(tenant: String, miner: StreamMiner, exec: Exec, max_pending: usize) -> Self {
        Self {
            tenant,
            exec,
            max_pending: max_pending.max(1),
            miner: Mutex::new(miner),
            pending: Mutex::new(VecDeque::new()),
            published: Mutex::new(Published::default()),
            publish_signal: Condvar::new(),
        }
    }

    /// This session's tenant id.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Ingests one batch: applied immediately when the window is free,
    /// queued (bounded) when it is busy, [`FsmError::Backpressure`] when the
    /// queue is full — see the module docs for the exact protocol.
    pub fn ingest(&self, batch: &Batch) -> Result<IngestOutcome> {
        let Ok(mut miner) = self.miner.try_lock() else {
            let mut pending = lock_unpoisoned(&self.pending);
            if pending.len() >= self.max_pending {
                return Err(FsmError::backpressure(&self.tenant));
            }
            pending.push_back(batch.clone());
            return Ok(IngestOutcome::Queued);
        };
        self.drain_into(&mut miner)?;
        let outcome = miner.ingest_batch(batch)?;
        if self.has_subscribers() {
            self.publish(&mut miner)?;
        }
        Ok(IngestOutcome::Applied(outcome))
    }

    /// Mines the current window (draining any queued ingests first) under
    /// the registry's executor.  Equivalent to [`StreamMiner::mine`] on a
    /// standalone miner fed the same batches.
    pub fn mine(&self) -> Result<MiningResult> {
        let mut miner = lock_unpoisoned(&self.miner);
        self.drain_into(&mut miner)?;
        miner.mine_with(&self.exec)
    }

    /// Registers a mine-on-every-slide consumer; see the module docs.
    /// Publication work is only performed while at least one subscription
    /// is alive.
    pub fn subscribe(self: &Arc<Self>) -> Subscription {
        let mut published = lock_unpoisoned(&self.published);
        published.subscribers += 1;
        Subscription {
            session: Arc::clone(self),
            last_seen: published.seq,
        }
    }

    /// Runs `f` under the window lock after draining queued ingests —
    /// the escape hatch for callers needing [`StreamMiner`] surface the
    /// session does not wrap (recovery reports, memory accounting).
    pub fn with_miner<R>(&self, f: impl FnOnce(&mut StreamMiner) -> R) -> R {
        let mut miner = lock_unpoisoned(&self.miner);
        let _ = self.drain_into(&mut miner);
        f(&mut miner)
    }

    /// Queued batches not yet applied to the window.
    pub fn pending_batches(&self) -> usize {
        lock_unpoisoned(&self.pending).len()
    }

    /// Applies every queued batch in arrival order; returns the last slide
    /// outcome (`None` when the queue was empty).  Publishes to subscribers
    /// after any slide.
    fn drain_into(&self, miner: &mut StreamMiner) -> Result<Option<SlideOutcome>> {
        let mut last = None;
        loop {
            let batch = {
                let mut pending = lock_unpoisoned(&self.pending);
                match pending.pop_front() {
                    Some(batch) => batch,
                    None => break,
                }
            };
            last = Some(miner.ingest_batch(&batch)?);
        }
        if last.is_some() && self.has_subscribers() {
            self.publish(miner)?;
        }
        Ok(last)
    }

    fn has_subscribers(&self) -> bool {
        lock_unpoisoned(&self.published).subscribers > 0
    }

    /// Mines the just-slid window and publishes the result: through a
    /// frozen epoch snapshot for full-mine tenants, through the maintained
    /// delta state for delta tenants.
    fn publish(&self, miner: &mut StreamMiner) -> Result<()> {
        let result = if miner.config().delta {
            miner.mine_with(&self.exec)?
        } else {
            miner.snapshot()?.mine_with(&self.exec)?
        };
        let mut published = lock_unpoisoned(&self.published);
        published.seq += 1;
        published.result = Some(result);
        drop(published);
        self.publish_signal.notify_all();
        Ok(())
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("tenant", &self.tenant)
            .field("pending", &self.pending_batches())
            .finish()
    }
}

/// A mine-on-every-slide consumer handle (see [`Session::subscribe`]).
#[derive(Debug)]
pub struct Subscription {
    session: Arc<Session>,
    last_seen: u64,
}

impl Subscription {
    /// The newest published result this handle has not seen yet, if any.
    /// Slides between polls coalesce: only the latest epoch's result is
    /// retained, mirroring how a dashboard consumes a stream.
    pub fn poll(&mut self) -> Option<MiningResult> {
        let published = lock_unpoisoned(&self.session.published);
        if published.seq == self.last_seen {
            return None;
        }
        self.last_seen = published.seq;
        published.result.clone()
    }

    /// Blocks until a result newer than the last seen one is published,
    /// then returns it.
    pub fn wait(&mut self) -> MiningResult {
        let mut published = lock_unpoisoned(&self.session.published);
        while published.seq == self.last_seen || published.result.is_none() {
            published = self
                .session
                .publish_signal
                .wait(published)
                .unwrap_or_else(|p| p.into_inner());
        }
        self.last_seen = published.seq;
        published
            .result
            .clone()
            .expect("loop exits only with a published result")
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        let mut published = lock_unpoisoned(&self.session.published);
        published.subscribers = published.subscribers.saturating_sub(1);
    }
}

fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use fsm_types::{EdgeCatalog, MinSup, Transaction};

    fn tenant_config() -> MinerConfig {
        MinerConfig {
            algorithm: Algorithm::DirectVertical,
            window: fsm_stream::WindowConfig::new(2).unwrap(),
            min_support: MinSup::absolute(2),
            catalog: Some(EdgeCatalog::complete(4)),
            ..MinerConfig::default()
        }
    }

    fn paper_batches() -> Vec<Batch> {
        let e = |raw: &[u32]| Transaction::from_raw(raw.iter().copied());
        vec![
            Batch::from_transactions(0, vec![e(&[2, 3, 5]), e(&[0, 4, 5]), e(&[0, 2, 5])]),
            Batch::from_transactions(1, vec![e(&[0, 2, 3, 5]), e(&[0, 3, 4, 5]), e(&[0, 1, 2])]),
            Batch::from_transactions(2, vec![e(&[0, 2, 5]), e(&[0, 2, 3, 5]), e(&[1, 2, 3])]),
        ]
    }

    #[test]
    fn tenants_are_isolated_and_match_standalone_miners() {
        let registry = SessionRegistry::new(RegistryConfig::default());
        let a = registry.create_tenant("a", tenant_config(), false).unwrap();
        let b = registry.create_tenant("b", tenant_config(), false).unwrap();
        let batches = paper_batches();
        // Interleave: a gets all three batches, b only the first.
        a.ingest(&batches[0]).unwrap();
        b.ingest(&batches[0]).unwrap();
        a.ingest(&batches[1]).unwrap();
        a.ingest(&batches[2]).unwrap();
        let mut standalone_a = StreamMiner::new(tenant_config()).unwrap();
        let mut standalone_b = StreamMiner::new(tenant_config()).unwrap();
        for batch in &batches {
            standalone_a.ingest_batch(batch).unwrap();
        }
        standalone_b.ingest_batch(&batches[0]).unwrap();
        assert!(a
            .mine()
            .unwrap()
            .same_patterns_as(&standalone_a.mine().unwrap()));
        assert!(b
            .mine()
            .unwrap()
            .same_patterns_as(&standalone_b.mine().unwrap()));
    }

    #[test]
    fn registry_rejects_bad_ids_duplicates_and_reserved_config() {
        let registry = SessionRegistry::new(RegistryConfig::default());
        assert!(registry.create_tenant("", tenant_config(), false).is_err());
        assert!(registry
            .create_tenant("a/../b", tenant_config(), false)
            .is_err());
        assert!(registry
            .create_tenant(&"x".repeat(65), tenant_config(), false)
            .is_err());
        registry
            .create_tenant("dup", tenant_config(), false)
            .unwrap();
        assert!(matches!(
            registry.create_tenant("dup", tenant_config(), false),
            Err(FsmError::TenantExists(_))
        ));
        let mut config = tenant_config();
        config.durable_dir = Some("/tmp/evil".into());
        assert!(registry.create_tenant("evil", config, false).is_err());
        assert!(matches!(
            registry.get("missing"),
            Err(FsmError::UnknownTenant(_))
        ));
        registry.drop_tenant("dup").unwrap();
        assert!(registry.get("dup").is_err());
    }

    #[test]
    fn full_queue_reports_backpressure_and_drains_in_order() {
        let registry = SessionRegistry::new(RegistryConfig {
            max_pending_batches: 2,
            ..RegistryConfig::default()
        });
        let session = registry.create_tenant("t", tenant_config(), false).unwrap();
        let batches = paper_batches();
        // Hold the window hostage on another thread so ingests queue.
        let hostage = Arc::clone(&session);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        let holder = std::thread::spawn(move || {
            hostage.with_miner(|_| {
                ready_tx.send(()).unwrap();
                rx.recv().unwrap();
            });
        });
        ready_rx.recv().unwrap();
        assert_eq!(session.ingest(&batches[0]).unwrap(), IngestOutcome::Queued);
        assert_eq!(session.ingest(&batches[1]).unwrap(), IngestOutcome::Queued);
        assert!(matches!(
            session.ingest(&batches[2]),
            Err(FsmError::Backpressure { .. })
        ));
        tx.send(()).unwrap();
        holder.join().unwrap();
        // The third batch applies now; the queued two drain first, in order.
        assert!(matches!(
            session.ingest(&batches[2]).unwrap(),
            IngestOutcome::Applied(_)
        ));
        assert_eq!(session.pending_batches(), 0);
        let mut standalone = StreamMiner::new(tenant_config()).unwrap();
        for batch in &batches {
            standalone.ingest_batch(batch).unwrap();
        }
        assert!(session
            .mine()
            .unwrap()
            .same_patterns_as(&standalone.mine().unwrap()));
    }

    #[test]
    fn subscriptions_publish_on_every_slide() {
        let registry = SessionRegistry::new(RegistryConfig::default());
        let session = registry
            .create_tenant("sub", tenant_config(), false)
            .unwrap();
        let mut subscription = session.subscribe();
        assert!(subscription.poll().is_none());
        let batches = paper_batches();
        let mut standalone = StreamMiner::new(tenant_config()).unwrap();
        for batch in &batches {
            session.ingest(&batch.clone()).unwrap();
            standalone.ingest_batch(batch).unwrap();
            let published = subscription.poll().expect("every slide publishes");
            assert!(published.same_patterns_as(&standalone.mine().unwrap()));
        }
        // A late subscriber only sees publications after it joined.
        let mut late = session.subscribe();
        assert!(late.poll().is_none());
        drop(subscription);
        drop(late);
        // With no subscribers, slides stop publishing.
        let seq_before = lock_unpoisoned(&session.published).seq;
        session.ingest(&batches[0]).unwrap();
        assert_eq!(lock_unpoisoned(&session.published).seq, seq_before);
    }

    #[test]
    fn pool_execution_matches_scoped_execution() {
        let pooled = SessionRegistry::new(RegistryConfig {
            exec: Exec::pool(Arc::new(crate::WorkerPool::new(3))),
            ..RegistryConfig::default()
        });
        let scoped = SessionRegistry::new(RegistryConfig::default());
        let a = pooled.create_tenant("t", tenant_config(), false).unwrap();
        let b = scoped.create_tenant("t", tenant_config(), false).unwrap();
        for batch in paper_batches() {
            a.ingest(&batch).unwrap();
            b.ingest(&batch).unwrap();
        }
        assert!(a.mine().unwrap().same_patterns_as(&b.mine().unwrap()));
    }
}
