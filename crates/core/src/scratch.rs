//! Depth-indexed scratch buffers for the vertical miners.
//!
//! The vertical algorithms (§3.4 and §4) intersect one bit vector per
//! recursion level.  Allocating those vectors per candidate is the dominant
//! allocation cost of the hot loop, so each mining call owns a
//! [`ScratchArena`]: one reusable [`BitVec`] per recursion depth, allocated
//! the first time that depth is reached and reused for every sibling subtree
//! afterwards.  Combined with [`BitVec::and_count`] pre-screening (infrequent
//! candidates are rejected before any buffer is touched) the steady-state
//! extension step performs no heap allocation at all.
//!
//! Buffer hand-out is by *move*: [`ScratchArena::take`] removes the buffer
//! for a depth (leaving an empty, allocation-free placeholder) so the caller
//! can fill it while deeper recursion levels keep borrowing the arena, and
//! [`ScratchArena::put`] returns it when the level completes.

use fsm_storage::BitVec;

/// A per-mining-call pool of intersection buffers, one per recursion depth.
#[derive(Debug, Default)]
pub struct ScratchArena {
    levels: Vec<BitVec>,
}

impl ScratchArena {
    /// Creates an empty arena; levels are created lazily as recursion
    /// deepens.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes and returns the buffer for `depth`, creating empty levels up
    /// to it on first use.  The slot is left as an empty (allocation-free)
    /// vector until [`ScratchArena::put`] restores it.
    pub fn take(&mut self, depth: usize) -> BitVec {
        if self.levels.len() <= depth {
            self.levels.resize_with(depth + 1, BitVec::new);
        }
        std::mem::take(&mut self.levels[depth])
    }

    /// Returns `buffer` to the slot for `depth` so sibling subtrees reuse its
    /// capacity.
    pub fn put(&mut self, depth: usize, buffer: BitVec) {
        debug_assert!(depth < self.levels.len(), "put without matching take");
        self.levels[depth] = buffer;
    }

    /// Number of levels materialised so far (the deepest recursion reached).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total heap bytes currently parked in the arena (buffers handed out via
    /// [`ScratchArena::take`] are counted by their holders instead).
    pub fn heap_bytes(&self) -> usize {
        self.levels.iter().map(BitVec::heap_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_reuses_capacity() {
        let mut arena = ScratchArena::new();
        let mut buf = arena.take(2);
        assert_eq!(arena.depth(), 3);
        assert_eq!(buf.len(), 0);
        buf.resize(1000);
        let bytes = buf.heap_bytes();
        assert!(bytes >= 1000 / 8);
        arena.put(2, buf);
        assert_eq!(arena.heap_bytes(), bytes);
        // Taking the same level again hands back the grown buffer.
        let again = arena.take(2);
        assert_eq!(again.heap_bytes(), bytes);
        arena.put(2, again);
    }

    #[test]
    fn taken_levels_read_as_empty() {
        let mut arena = ScratchArena::new();
        let mut buf = arena.take(0);
        buf.resize(128);
        // While held, the arena accounts nothing for the level.
        assert_eq!(arena.heap_bytes(), 0);
        arena.put(0, buf);
        assert!(arena.heap_bytes() > 0);
    }
}
