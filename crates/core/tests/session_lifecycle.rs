//! Spill/thaw lifecycle corners that the headline isolation property
//! cannot reach on its own: a corrupt spill artifact surfacing (and the
//! tenant staying recreatable), a spill racing an in-flight mine, and a
//! delta tenant's incremental state rebuilding exactly across a
//! spill/thaw cycle.

use std::sync::{mpsc, Arc};

use fsm_core::{
    Algorithm, Exec, LifecycleState, MinerConfig, RegistryConfig, SessionRegistry, StreamMiner,
    WorkerPool,
};
use fsm_storage::{Hibernation, StorageBackend, TempDir};
use fsm_stream::WindowConfig;
use fsm_types::{Batch, EdgeCatalog, FsmError, MinSup, Transaction};

fn config(delta: bool) -> MinerConfig {
    MinerConfig {
        algorithm: Algorithm::DirectVertical,
        window: WindowConfig::new(2).unwrap(),
        min_support: MinSup::absolute(2),
        backend: StorageBackend::Memory,
        catalog: Some(EdgeCatalog::complete(4)),
        delta,
        ..MinerConfig::default()
    }
}

fn batches() -> Vec<Batch> {
    let t = |raw: &[u32]| Transaction::from_raw(raw.iter().copied());
    vec![
        Batch::from_transactions(0, vec![t(&[2, 3, 5]), t(&[0, 4, 5]), t(&[0, 2, 5])]),
        Batch::from_transactions(1, vec![t(&[0, 2, 3, 5]), t(&[0, 3, 4, 5]), t(&[0, 1, 2])]),
        Batch::from_transactions(2, vec![t(&[0, 2, 5]), t(&[0, 2, 3, 5]), t(&[1, 2, 3])]),
    ]
}

fn spilling_registry(root: &TempDir) -> SessionRegistry {
    SessionRegistry::new(RegistryConfig {
        spill_root: Some(root.path().into()),
        ..RegistryConfig::default()
    })
}

/// A corrupt spill artifact follows the recovery discipline: the thaw
/// fails with an error naming `window.hib`, the proven-corrupt artifact is
/// deleted so it cannot be retried into, and the tenant id stays usable —
/// drop it and create it afresh.
#[test]
fn corrupt_spill_artifact_is_named_and_tenant_is_recreatable() {
    let root = TempDir::new("lifecycle-corrupt").unwrap();
    let registry = spilling_registry(&root);
    let session = registry
        .create_tenant("victim", config(false), false)
        .unwrap();
    for batch in &batches() {
        session.ingest(batch).unwrap();
    }
    assert!(session.spill().unwrap());
    assert_eq!(session.state(), LifecycleState::Spilled);

    // Flip a byte in the middle of the artifact body.
    let artifact = Hibernation::artifact_path(&root.path().join("victim"));
    let mut bytes = std::fs::read(&artifact).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&artifact, &bytes).unwrap();

    let err = session.mine().unwrap_err();
    match &err {
        FsmError::CorruptArtifact { artifact, .. } => {
            assert!(
                artifact.contains("window.hib"),
                "error must name the spill artifact, got: {artifact:?}"
            );
        }
        other => panic!("expected CorruptArtifact, got: {other}"),
    }
    assert!(
        !artifact.exists(),
        "a proven-corrupt spill artifact must be deleted, not retried into"
    );

    // The tenant id is not poisoned: drop and recreate, and the fresh
    // tenant serves the stream like nothing happened.
    registry.drop_tenant("victim").unwrap();
    let fresh = registry
        .create_tenant("victim", config(false), false)
        .unwrap();
    let mut oracle = StreamMiner::new(config(false)).unwrap();
    for batch in &batches() {
        fresh.ingest(batch).unwrap();
        oracle.ingest_batch(batch).unwrap();
    }
    assert!(fresh
        .mine()
        .unwrap()
        .same_patterns_as(&oracle.mine().unwrap()));
}

/// A spill issued while a mine holds the window drains cleanly: the spill
/// blocks until the in-flight work releases the window, then lands, and
/// the next request thaws back to the exact same window.
#[test]
fn spill_racing_an_in_flight_mine_drains_cleanly() {
    let root = TempDir::new("lifecycle-race").unwrap();
    let registry = SessionRegistry::new(RegistryConfig {
        exec: Exec::pool(Arc::new(WorkerPool::new(2))),
        spill_root: Some(root.path().into()),
        ..RegistryConfig::default()
    });
    let session = registry
        .create_tenant("racer", config(false), false)
        .unwrap();
    for batch in &batches() {
        session.ingest(batch).unwrap();
    }
    let expected = session.mine().unwrap();

    // Hold the window hostage from another thread, issue the spill while
    // it is held, and only then release the hostage.
    let (hold_tx, hold_rx) = mpsc::channel::<()>();
    let (held_tx, held_rx) = mpsc::channel::<()>();
    let hostage = {
        let session = Arc::clone(&session);
        std::thread::spawn(move || {
            session
                .with_miner(move |_| {
                    held_tx.send(()).unwrap();
                    hold_rx.recv().unwrap();
                })
                .unwrap();
        })
    };
    held_rx.recv().unwrap();
    let spiller = {
        let session = Arc::clone(&session);
        std::thread::spawn(move || session.spill())
    };
    // The spill is now queued on the window lock; let the mine finish.
    std::thread::sleep(std::time::Duration::from_millis(20));
    hold_tx.send(()).unwrap();
    hostage.join().unwrap();
    assert!(
        spiller.join().unwrap().unwrap(),
        "the queued spill must land"
    );
    assert_eq!(session.state(), LifecycleState::Spilled);

    // Thaw-on-demand serves the exact pre-spill window.
    assert!(session.mine().unwrap().same_patterns_as(&expected));
    assert_ne!(session.state(), LifecycleState::Spilled);
    assert_eq!(session.status().thaws, 1);
}

/// A delta tenant's incremental pattern set rebuilds exactly on thaw: the
/// spill drops the `DeltaMiner` state, the first post-thaw mine rebuilds
/// it, and every subsequent slide maintains it — byte-identical to an
/// uninterrupted delta run and to a from-scratch mine of the same window.
#[test]
fn delta_state_rebuilds_exactly_on_thaw() {
    let root = TempDir::new("lifecycle-delta").unwrap();
    let registry = spilling_registry(&root);
    let session = registry
        .create_tenant("delta", config(true), false)
        .unwrap();
    let stream = batches();
    let mut oracle = StreamMiner::new(config(true)).unwrap();

    // Prime both with two batches and a mine so delta state exists.
    for batch in &stream[..2] {
        session.ingest(batch).unwrap();
        oracle.ingest_batch(batch).unwrap();
    }
    assert!(session
        .mine()
        .unwrap()
        .same_patterns_as(&oracle.mine().unwrap()));

    // Spill (dropping the delta state with the window), thaw by serving.
    assert!(session.spill().unwrap());
    assert!(session
        .mine()
        .unwrap()
        .same_patterns_as(&oracle.mine().unwrap()));

    // The stream continues across the cycle: the maintained set must track
    // both the uninterrupted delta oracle and a from-scratch miner.
    session.ingest(&stream[2]).unwrap();
    oracle.ingest_batch(&stream[2]).unwrap();
    let served = session.mine().unwrap();
    assert!(served.same_patterns_as(&oracle.mine().unwrap()));
    let mut scratch = StreamMiner::new(config(false)).unwrap();
    for batch in &stream {
        scratch.ingest_batch(batch).unwrap();
    }
    assert!(served.same_patterns_as(&scratch.mine().unwrap()));
}
