//! Tenant isolation: the PR-gating property of the multi-tenant refactor.
//!
//! Every tenant served by a [`SessionRegistry`] must produce output
//! **byte-identical to a standalone single-tenant run** of its own batch
//! sequence — regardless of which other tenants share the process, how
//! their ingests interleave, which backend each tenant uses, how many
//! threads the shared [`WorkerPool`] has, whether a [`BudgetGovernor`]
//! is arbitrating the cache cap, and whether a resident-set cap is forcing
//! cold tenants to spill to disk and thaw on demand.  The shared machinery
//! (pool, governor, registry locks, the spill/thaw lifecycle) may move work
//! and bytes around; it must never move *results*.  The harshest corner is
//! `max_resident = 1`: at most one tenant window is in memory at any time,
//! so nearly every event lands on a spilled tenant and forces a thaw.
//!
//! The harness derives everything from proptest-chosen inputs: a random
//! batch stream, a random per-tenant subsequence assignment, a random
//! interleaving of (ingest, mine) events across tenants, and per-tenant
//! backend/config corners.  A second deterministic test pins multi-tenant
//! durable recovery: several tenants under one `durable_root`, process
//! "crash" (drop), per-tenant recovery, identical windows.

use std::sync::Arc;

use fsm_core::{
    Algorithm, Exec, MinerConfig, RegistryConfig, SessionRegistry, StreamMiner, WorkerPool,
};
use fsm_storage::{BudgetGovernor, StorageBackend};
use fsm_stream::WindowConfig;
use fsm_types::{Batch, EdgeCatalog, MinSup, Transaction};
use proptest::prelude::*;

const VERTICES: u32 = 5;
const EDGES: u32 = 10;
const TENANTS: usize = 3;

/// Per-tenant corners: algorithm family × backend × delta, cycled by
/// tenant index so every multi-tenant case mixes them in one process.
fn tenant_config(index: usize) -> MinerConfig {
    let (algorithm, backend, delta) = match index % TENANTS {
        0 => (Algorithm::DirectVertical, StorageBackend::Memory, false),
        1 => (Algorithm::MultiTree, StorageBackend::DiskTemp, false),
        _ => (Algorithm::DirectVertical, StorageBackend::DiskTemp, true),
    };
    MinerConfig {
        algorithm,
        window: WindowConfig::new(2).unwrap(),
        min_support: MinSup::absolute(2),
        backend,
        catalog: Some(EdgeCatalog::complete(VERTICES)),
        cache_budget_bytes: 700,
        delta,
        ..MinerConfig::default()
    }
}

fn to_batches(raw: &[Vec<Vec<u32>>]) -> Vec<Batch> {
    raw.iter()
        .enumerate()
        .map(|(id, transactions)| {
            Batch::from_transactions(
                id as u64,
                transactions
                    .iter()
                    .map(|t| Transaction::from_raw(t.iter().copied()))
                    .collect(),
            )
        })
        .collect()
}

fn arb_stream() -> impl Strategy<Value = Vec<Vec<Vec<u32>>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::collection::btree_set(0u32..EDGES, 0..5)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            1..5,
        ),
        1..5,
    )
}

/// One tenant's event script: which stream batches it ingests, and after
/// which of its own ingests it also mines.
#[derive(Debug, Clone)]
struct Script {
    takes: Vec<bool>,
    mines: Vec<bool>,
}

fn arb_scripts() -> impl Strategy<Value = Vec<Script>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(any::<bool>(), 4),
            proptest::collection::vec(any::<bool>(), 4),
        )
            .prop_map(|(takes, mines)| Script { takes, mines }),
        TENANTS,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline property.  `order` seeds a deterministic round-robin
    /// rotation so different cases visit tenants in different interleavings.
    #[test]
    fn tenants_served_together_equal_tenants_run_alone(
        raw in arb_stream(),
        scripts in arb_scripts(),
        order in 0usize..TENANTS,
        pool_threads in 1usize..4,
    ) {
        let batches = to_batches(&raw);
        for (governed, max_resident) in
            [(false, None), (true, None), (false, Some(1)), (true, Some(1))]
        {
            // With the cap at 1 every cross-tenant visit evicts the
            // previous tenant's window; volatile tenants spill under a
            // throwaway root, which must outlive the registry.
            let spill_root = max_resident
                .map(|_| fsm_storage::TempDir::new("tenant-isolation-spill").unwrap());
            let registry = SessionRegistry::new(RegistryConfig {
                exec: Exec::pool(Arc::new(WorkerPool::new(pool_threads))),
                governor: governed.then(|| BudgetGovernor::new(2048)),
                max_resident,
                spill_root: spill_root.as_ref().map(|dir| dir.path().into()),
                ..RegistryConfig::default()
            });
            let sessions: Vec<_> = (0..TENANTS)
                .map(|i| {
                    registry
                        .create_tenant(&format!("tenant-{i}"), tenant_config(i), false)
                        .unwrap()
                })
                .collect();
            // Interleave: per stream batch, visit tenants in rotated order;
            // a tenant takes the batch iff its script says so, and mines
            // right after when its script says so — so tenant mines overlap
            // other tenants' ingests on the shared pool and governor.
            let mut served: Vec<Option<_>> = vec![None; TENANTS];
            for (b, batch) in batches.iter().enumerate() {
                for step in 0..TENANTS {
                    let i = (step + order) % TENANTS;
                    let script = &scripts[i];
                    if *script.takes.get(b).unwrap_or(&false) {
                        sessions[i].ingest(batch).unwrap();
                        if *script.mines.get(b).unwrap_or(&false) {
                            served[i] = Some(sessions[i].mine().unwrap());
                        }
                    }
                }
            }
            for (i, session) in sessions.iter().enumerate() {
                served[i] = Some(session.mine().unwrap());
            }
            // Oracle: each tenant replayed alone, sequentially, ungoverned.
            for i in 0..TENANTS {
                let mut alone = StreamMiner::new(tenant_config(i)).unwrap();
                for (b, batch) in batches.iter().enumerate() {
                    if *scripts[i].takes.get(b).unwrap_or(&false) {
                        alone.ingest_batch(batch).unwrap();
                        if *scripts[i].mines.get(b).unwrap_or(&false) {
                            alone.mine().unwrap();
                        }
                    }
                }
                let expected = alone.mine().unwrap();
                let got = served[i].as_ref().unwrap();
                prop_assert!(
                    got.same_patterns_as(&expected),
                    "tenant {} (governed={}, max_resident={:?}, pool={}) diverged: {:?}",
                    i, governed, max_resident, pool_threads, expected.diff(got)
                );
            }
        }
    }
}

/// Multi-tenant durable recovery: several durable tenants under one root,
/// crash (drop everything), recover each by id, serve identical windows —
/// and keep streaming as if the crash never happened.
#[test]
fn durable_tenants_recover_independently_under_one_root() {
    let root = fsm_storage::TempDir::new("tenant-isolation-durable").unwrap();
    let registry_config = || RegistryConfig {
        durable_root: Some(root.path().into()),
        ..RegistryConfig::default()
    };
    let durable_config = |i: usize| MinerConfig {
        backend: StorageBackend::DiskTemp,
        ..tenant_config(i)
    };
    let batches = to_batches(&[
        vec![vec![2, 3, 5], vec![0, 4, 5], vec![0, 2, 5]],
        vec![vec![0, 2, 3, 5], vec![0, 3, 4, 5], vec![0, 1, 2]],
        vec![vec![0, 2, 5], vec![0, 2, 3, 5], vec![1, 2, 3]],
    ]);

    let registry = SessionRegistry::new(registry_config());
    let mut before = Vec::new();
    for i in 0..TENANTS {
        let session = registry
            .create_tenant(&format!("tenant-{i}"), durable_config(i), true)
            .unwrap();
        // Tenant i ingests a different prefix, so recovered windows differ.
        for batch in &batches[..=i.min(batches.len() - 1)] {
            session.ingest(batch).unwrap();
        }
        before.push(session.mine().unwrap());
    }
    drop(registry); // the crash: no clean per-tenant teardown

    let recovered = SessionRegistry::new(registry_config());
    assert_eq!(
        recovered.durable_tenants().unwrap(),
        (0..TENANTS)
            .map(|i| format!("tenant-{i}"))
            .collect::<Vec<_>>()
    );
    for i in 0..TENANTS {
        let session = recovered
            .recover_tenant(&format!("tenant-{i}"), durable_config(i))
            .unwrap();
        assert!(
            session.mine().unwrap().same_patterns_as(&before[i]),
            "tenant {i} recovered a different window"
        );
        // The stream continues: one more batch post-recovery must equal a
        // crash-free run of the same sequence.
        session.ingest(batches.last().unwrap()).unwrap();
        let mut alone = StreamMiner::new(durable_config(i)).unwrap();
        for batch in &batches[..=i.min(batches.len() - 1)] {
            alone.ingest_batch(batch).unwrap();
        }
        alone.ingest_batch(batches.last().unwrap()).unwrap();
        assert!(
            session
                .mine()
                .unwrap()
                .same_patterns_as(&alone.mine().unwrap()),
            "tenant {i} diverged after post-recovery ingest"
        );
    }
}
