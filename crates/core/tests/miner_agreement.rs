//! Property tests for the zero-allocation / parallel mining engine: on
//! arbitrary (seeded, shrinkable) streams, the §3.4 vertical miner plus the
//! §3.5 connectivity filter agrees exactly with the §4 direct miner, and —
//! for all five algorithms, horizontal and vertical alike — every thread
//! count produces byte-identical output.

use std::sync::Arc;

use fsm_core::{miners, Algorithm, ConnectivityChecker, ConnectivityMode, Exec, WorkerPool};
use fsm_dsmatrix::{DsMatrix, DsMatrixConfig};
use fsm_fptree::MiningLimits;
use fsm_storage::StorageBackend;
use fsm_stream::WindowConfig;
use fsm_types::{Batch, EdgeCatalog, Transaction};
use proptest::prelude::*;

/// Complete graph over five vertices: ten possible edges.
const VERTICES: u32 = 5;
const EDGES: u32 = 10;

fn arb_stream() -> impl Strategy<Value = Vec<Vec<Vec<u32>>>> {
    // 1..5 batches of 1..6 transactions over the edge vocabulary.
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::collection::btree_set(0u32..EDGES, 0..6)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            1..6,
        ),
        1..5,
    )
}

fn ingest(raw: &[Vec<Vec<u32>>], window: usize) -> DsMatrix {
    let mut matrix = DsMatrix::new(DsMatrixConfig::new(
        WindowConfig::new(window).unwrap(),
        StorageBackend::Memory,
        EDGES as usize,
    ))
    .unwrap();
    for (id, transactions) in raw.iter().enumerate() {
        let batch = Batch::from_transactions(
            id as u64,
            transactions
                .iter()
                .map(|t| Transaction::from_raw(t.iter().copied()))
                .collect(),
        );
        matrix.ingest_batch(&batch).unwrap();
    }
    matrix
}

fn pattern_strings(patterns: &[fsm_types::FrequentPattern]) -> Vec<String> {
    let mut v: Vec<String> = patterns
        .iter()
        .map(|p| format!("{}:{}", p.edges.symbols(), p.support))
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Vertical mining + connectivity pruning equals direct mining, on any
    /// stream, for any window size and support threshold.
    #[test]
    fn vertical_plus_pruning_equals_direct(
        raw in arb_stream(),
        window in 1usize..4,
        minsup in 1u64..4,
    ) {
        let catalog = EdgeCatalog::complete(VERTICES);
        let mut matrix = ingest(&raw, window);

        let mut vertical = miners::run_algorithm(
            Algorithm::Vertical,
            &mut matrix,
            &catalog,
            minsup,
            MiningLimits::UNBOUNDED,
            &Exec::scoped(1),
        )
        .unwrap();
        let checker = ConnectivityChecker::new(&catalog, ConnectivityMode::Exact);
        checker.prune_disconnected(&mut vertical.patterns);

        let direct = miners::run_algorithm(
            Algorithm::DirectVertical,
            &mut matrix,
            &catalog,
            minsup,
            MiningLimits::UNBOUNDED,
            &Exec::scoped(1),
        )
        .unwrap();

        prop_assert_eq!(
            pattern_strings(&vertical.patterns),
            pattern_strings(&direct.patterns)
        );
    }

    /// The parallel engine is deterministic: every thread count reproduces
    /// the sequential pattern list (order included) and statistics, for all
    /// five algorithms — the three horizontal (FP-tree) miners fan per-pivot
    /// projected databases out exactly as the vertical miners fan out their
    /// per-singleton subtrees.
    #[test]
    fn thread_count_never_changes_the_output(
        raw in arb_stream(),
        window in 1usize..4,
        minsup in 1u64..4,
    ) {
        let catalog = EdgeCatalog::complete(VERTICES);
        let mut matrix = ingest(&raw, window);

        for algorithm in Algorithm::ALL {
            let sequential = miners::run_algorithm(
                algorithm,
                &mut matrix,
                &catalog,
                minsup,
                MiningLimits::UNBOUNDED,
                &Exec::scoped(1),
            )
            .unwrap();
            for exec in [
                Exec::scoped(2),
                Exec::scoped(3),
                Exec::scoped(8),
                Exec::scoped(0),
                Exec::pool(Arc::new(WorkerPool::new(2))),
                Exec::pool(Arc::new(WorkerPool::inline_only())),
            ] {
                let parallel = miners::run_algorithm(
                    algorithm,
                    &mut matrix,
                    &catalog,
                    minsup,
                    MiningLimits::UNBOUNDED,
                    &exec,
                )
                .unwrap();
                prop_assert_eq!(
                    &parallel.patterns,
                    &sequential.patterns,
                    "{} under {:?}",
                    algorithm,
                    &exec
                );
                // Byte-identical statistics too: intersection counts, tree
                // footprints, pattern counts — nothing may depend on the
                // worker count.
                prop_assert_eq!(
                    &parallel.stats,
                    &sequential.stats,
                    "{} under {:?}",
                    algorithm,
                    &exec
                );
            }
        }
    }
}
