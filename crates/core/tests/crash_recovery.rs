//! Crash-point recovery: after a crash at **any byte** of any WAL commit,
//! recovery must rebuild exactly the window of the last durable slide — the
//! same patterns a never-crashed run mined there — and corruption anywhere
//! in the durable artifacts must be *detected* and survived by falling back
//! to an older artifact, never silently answered with wrong patterns.
//!
//! The harness mirrors `backend_agreement.rs`: a memory-backend miner is the
//! oracle (mined after every batch), and the durable run under test is
//! snapshotted (directory copy) after every commit.  For commit `i`, every
//! byte prefix of its WAL frame is appended to the commit-`i-1` snapshot —
//! the exact on-disk state of a crash `cut` bytes into the WAL append — plus
//! a junk partial segment file standing in for a torn apply.  Recovery of a
//! strict prefix must mine the commit-`i-1` oracle patterns; recovery of the
//! full frame must mine the commit-`i` patterns (WAL committed ⇒ the batch
//! is durable even though the apply never ran).

use std::fs;
use std::path::Path;

use fsm_core::{Algorithm, MiningResult, StreamMinerBuilder};
use fsm_dsmatrix::encode_batch;
use fsm_storage::wal;
use fsm_types::{Batch, MinSup, Transaction};

const VERTICES: u32 = 5;
const EDGES: u32 = 10;

/// Deterministic pseudo-random batch stream (no external RNG crate): small
/// batches of small transactions so the WAL frames stay a few dozen bytes
/// and every byte-prefix cut is affordable.
fn batch_stream(seed: u64, num_batches: usize) -> Vec<Batch> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move |bound: u64| {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D) % bound
    };
    (0..num_batches)
        .map(|id| {
            let num_tx = 1 + next(4) as usize;
            let transactions = (0..num_tx)
                .map(|_| {
                    let num_edges = 1 + next(4) as usize;
                    Transaction::from_raw((0..num_edges).map(|_| next(EDGES as u64) as u32))
                })
                .collect();
            Batch::from_transactions(id as u64, transactions)
        })
        .collect()
}

fn builder(window: usize) -> StreamMinerBuilder {
    StreamMinerBuilder::new()
        .algorithm(Algorithm::DirectVertical)
        .window_batches(window)
        .min_support(MinSup::absolute(2))
        .complete_graph_vertices(VERTICES)
}

fn durable_builder(window: usize, dir: &Path, every: usize) -> StreamMinerBuilder {
    builder(window)
        .backend(fsm_storage::StorageBackend::DiskTemp)
        .durable(dir)
        .checkpoint_every(every)
}

/// `expected[j]` = patterns of a never-crashed run after `j` batches.
fn oracle(window: usize, batches: &[Batch]) -> Vec<MiningResult> {
    let mut miner = builder(window)
        .backend(fsm_storage::StorageBackend::Memory)
        .build()
        .unwrap();
    let mut results = vec![miner.mine().unwrap()];
    for batch in batches {
        miner.ingest_batch(batch).unwrap();
        results.push(miner.mine().unwrap());
    }
    results
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).unwrap();
        }
    }
}

fn assert_same(result: &MiningResult, expected: &MiningResult, context: &str) {
    assert!(
        result.same_patterns_as(expected),
        "{context}: recovered patterns diverge: {:?}",
        expected.diff(result)
    );
}

/// The tentpole property: for every commit and every byte-prefix of its WAL
/// frame, recovery lands on the last durable slide's exact patterns.
#[test]
fn recovery_is_exact_at_every_wal_byte_cut() {
    for (seed, window, every) in [(1u64, 3usize, 2usize), (2, 2, 1), (3, 4, 3)] {
        let batches = batch_stream(seed, 8);
        let expected = oracle(window, &batches);

        // Snapshot the durable directory after every commit.
        let root = fsm_storage::TempDir::new("crashpoint").unwrap();
        let live = root.path().join("live");
        let mut miner = durable_builder(window, &live, every).build().unwrap();
        let mut snapshots = vec![root.path().join("snap-0")];
        copy_dir(&live, &snapshots[0]);
        for (i, batch) in batches.iter().enumerate() {
            miner.ingest_batch(batch).unwrap();
            let snap = root.path().join(format!("snap-{}", i + 1));
            copy_dir(&live, &snap);
            snapshots.push(snap);
        }
        drop(miner);

        for (i, batch) in batches.iter().enumerate() {
            let seq = i as u64 + 1;
            let frame = wal::frame(seq, &encode_batch(batch));
            for cut in 0..=frame.len() {
                // Crash state: snapshot after commit i, plus `cut` bytes of
                // commit i+1's WAL record and a torn partial segment file.
                let scene = root.path().join("scene");
                if scene.exists() {
                    fs::remove_dir_all(&scene).unwrap();
                }
                copy_dir(&snapshots[i], &scene);
                let wal_path = scene.join("wal.log");
                let mut wal_bytes = fs::read(&wal_path).unwrap();
                wal_bytes.extend_from_slice(&frame[..cut]);
                fs::write(&wal_path, wal_bytes).unwrap();
                fs::write(scene.join("segments").join("seg-999983.pages"), b"torn").unwrap();

                let mut recovered = durable_builder(window, &scene, every)
                    .recover()
                    .build()
                    .unwrap();
                // A full frame is a durable commit; anything less recovers
                // the previous slide.
                let durable_prefix = if cut == frame.len() { i + 1 } else { i };
                let result = recovered.mine().unwrap();
                assert_same(
                    &result,
                    &expected[durable_prefix],
                    &format!("seed {seed} commit {seq} cut {cut}/{}", frame.len()),
                );
                let report = recovered.recovery_report().unwrap();
                assert_eq!(
                    report.wal_torn.is_some(),
                    cut != 0 && cut != frame.len(),
                    "seed {seed} commit {seq} cut {cut}: torn-tail detection"
                );
            }
        }
    }
}

/// A crashed run resumed with the real API (recover + keep streaming) ends
/// on the same patterns as the run that never crashed.
#[test]
fn resumed_stream_matches_uninterrupted_run() {
    let window = 3;
    let batches = batch_stream(9, 10);
    let expected = oracle(window, &batches);

    let root = fsm_storage::TempDir::new("resume").unwrap();
    let dir = root.path().join("durable");
    let mut miner = durable_builder(window, &dir, 2).build().unwrap();
    for batch in &batches[..6] {
        miner.ingest_batch(batch).unwrap();
    }
    // "Crash": drop without any shutdown checkpoint.
    drop(miner);

    let mut resumed = durable_builder(window, &dir, 2).recover().build().unwrap();
    assert_eq!(resumed.last_batch_id(), Some(5));
    for batch in &batches[6..] {
        resumed.ingest_batch(batch).unwrap();
    }
    assert_same(
        &resumed.mine().unwrap(),
        &expected[batches.len()],
        "resumed stream",
    );
}

/// Satellite (c) 1/3: a flipped bit in a WAL record is detected (checksum
/// mismatch naming the record) and recovery truncates there — the state is
/// the last slide before the damage, never a corrupted window.
#[test]
fn wal_bit_flip_truncates_at_the_damaged_record() {
    let window = 3;
    let batches = batch_stream(5, 6);
    let expected = oracle(window, &batches);

    let root = fsm_storage::TempDir::new("walflip").unwrap();
    let dir = root.path().join("durable");
    {
        // Interval larger than the stream: the WAL holds all six records.
        let mut miner = durable_builder(window, &dir, 100).build().unwrap();
        for batch in &batches {
            miner.ingest_batch(batch).unwrap();
        }
    }
    // Flip one payload bit of record 4 (records 1..=3 stay intact).
    let offset: usize = batches[..3]
        .iter()
        .enumerate()
        .map(|(i, b)| wal::frame(i as u64 + 1, &encode_batch(b)).len())
        .sum();
    let wal_path = dir.join("wal.log");
    let mut bytes = fs::read(&wal_path).unwrap();
    bytes[offset + 20] ^= 0x10;
    fs::write(&wal_path, bytes).unwrap();

    let mut recovered = durable_builder(window, &dir, 100)
        .recover()
        .build()
        .unwrap();
    let report = recovered.recovery_report().unwrap().clone();
    let torn = report.wal_torn.expect("damage must be reported");
    assert!(
        torn.contains("record #4") && torn.contains("checksum mismatch"),
        "report must name the damaged record: {torn}"
    );
    assert_eq!(report.replayed_batches, 3);
    assert_same(&recovered.mine().unwrap(), &expected[3], "WAL bit flip");
}

/// Satellite (c) 2/3: a flipped bit in the newest checkpoint makes recovery
/// reject it **by name** and fall back to the older retained checkpoint —
/// whose WAL suffix is retained precisely for this — reaching the full
/// pre-crash state, not the older checkpoint's.
#[test]
fn checkpoint_bit_flip_falls_back_to_the_previous_checkpoint() {
    let window = 3;
    let batches = batch_stream(6, 8);
    let expected = oracle(window, &batches);

    let root = fsm_storage::TempDir::new("ckptflip").unwrap();
    let dir = root.path().join("durable");
    {
        let mut miner = durable_builder(window, &dir, 2).build().unwrap();
        for batch in &batches {
            miner.ingest_batch(batch).unwrap();
        }
    }
    // Two checkpoints retained (seq 6 and 8 with every=2).  Damage the newest.
    let newest = dir.join("checkpoint-8.ckpt");
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&newest, bytes).unwrap();

    let mut recovered = durable_builder(window, &dir, 2).recover().build().unwrap();
    let report = recovered.recovery_report().unwrap().clone();
    assert_eq!(report.checkpoint_seq, Some(6), "fell back to the older one");
    assert_eq!(
        report.skipped_artifacts.len(),
        1,
        "the damaged artifact is reported: {:?}",
        report.skipped_artifacts
    );
    assert!(
        report.skipped_artifacts[0].contains("checkpoint-8.ckpt"),
        "the report names the artifact: {:?}",
        report.skipped_artifacts
    );
    assert_eq!(report.replayed_batches, 2, "WAL tail past seq 6");
    assert_same(&recovered.mine().unwrap(), &expected[8], "checkpoint flip");
}

/// Satellite (c) 3/3: a flipped bit in a *data page* referenced only by the
/// newest checkpoint is caught by the page CRC at verification time; the
/// checkpoint is distrusted, the older one restores, and WAL replay
/// re-creates the damaged segment — full state, correct patterns.
#[test]
fn data_page_bit_flip_is_detected_and_survived() {
    let window = 3;
    let batches = batch_stream(7, 8);
    let expected = oracle(window, &batches);

    let root = fsm_storage::TempDir::new("pageflip").unwrap();
    let dir = root.path().join("durable");
    {
        let mut miner = durable_builder(window, &dir, 2).build().unwrap();
        for batch in &batches {
            miner.ingest_batch(batch).unwrap();
        }
    }
    // The newest segment file was created after the older checkpoint, so
    // only the newest checkpoint references it.
    let newest_seg = fs::read_dir(dir.join("segments"))
        .unwrap()
        .filter_map(|e| {
            let path = e.unwrap().path();
            let name = path.file_name()?.to_str()?.to_string();
            let uid: u64 = name
                .strip_prefix("seg-")?
                .strip_suffix(".pages")?
                .parse()
                .ok()?;
            Some((uid, path))
        })
        .max()
        .expect("segment files exist")
        .1;
    let mut bytes = fs::read(&newest_seg).unwrap();
    assert!(!bytes.is_empty());
    bytes[0] ^= 0x80;
    fs::write(&newest_seg, bytes).unwrap();

    let mut recovered = durable_builder(window, &dir, 2).recover().build().unwrap();
    let report = recovered.recovery_report().unwrap().clone();
    assert_eq!(report.checkpoint_seq, Some(6), "fell back past the damage");
    assert!(
        report
            .skipped_artifacts
            .iter()
            .any(|s| s.contains("checkpoint-8.ckpt") && s.contains("page")),
        "the rejection names the damaged page: {:?}",
        report.skipped_artifacts
    );
    assert_same(&recovered.mine().unwrap(), &expected[8], "page flip");
}

/// A live epoch snapshot neither blocks nor skews recovery: crash while a
/// reader holds a frozen epoch, and `recover()` still rebuilds exactly the
/// last durable window — while the held snapshot keeps mining its own
/// pre-crash epoch from its self-contained decoded bits, concurrently with
/// the recovered miner and untouched by the crash.
#[test]
fn recovery_is_exact_while_a_snapshot_is_still_held() {
    let window = 3;
    let batches = batch_stream(11, 8);
    let expected = oracle(window, &batches);

    let root = fsm_storage::TempDir::new("heldsnap").unwrap();
    let dir = root.path().join("durable");
    let mut miner = durable_builder(window, &dir, 2).build().unwrap();
    // Freeze an epoch mid-stream, then slide through two more checkpoints
    // with the snapshot still live.
    for batch in &batches[..4] {
        miner.ingest_batch(batch).unwrap();
    }
    let held = miner.snapshot().unwrap();
    for batch in &batches[4..] {
        miner.ingest_batch(batch).unwrap();
    }
    // "Crash": drop the miner without any shutdown checkpoint; the reader's
    // snapshot outlives it.
    drop(miner);

    let mut recovered = durable_builder(window, &dir, 2).recover().build().unwrap();
    assert_eq!(recovered.last_batch_id(), Some(7));
    assert_same(
        &recovered.mine().unwrap(),
        &expected[batches.len()],
        "recovery under a live snapshot",
    );

    // The held snapshot still answers for its own epoch, mined on another
    // thread while the recovered miner is live.
    assert_eq!(held.last_batch_id(), Some(3));
    let mined = std::thread::spawn(move || held.mine().unwrap())
        .join()
        .unwrap();
    assert_same(&mined, &expected[4], "held snapshot after the crash");
}

/// Durability is strictly opt-in: the memory backend refuses it, and a
/// volatile miner's durability counters stay zero.
#[test]
fn durability_is_rejected_on_memory_and_free_when_off() {
    let root = fsm_storage::TempDir::new("zerocost").unwrap();
    let err = builder(2)
        .backend(fsm_storage::StorageBackend::Memory)
        .durable(root.path())
        .build();
    assert!(err.is_err(), "memory backend must reject durability");

    let mut volatile = builder(2)
        .backend(fsm_storage::StorageBackend::DiskTemp)
        .build()
        .unwrap();
    for batch in batch_stream(4, 4) {
        volatile.ingest_batch(&batch).unwrap();
    }
    let stats = volatile.mine().unwrap().stats().clone();
    assert!(!volatile.is_durable());
    assert_eq!(stats.wal_bytes_written, 0);
    assert_eq!(stats.fsyncs, 0);
    assert_eq!(stats.checkpoint_bytes, 0);
    assert_eq!(stats.recovery_replayed_batches, 0);
}
