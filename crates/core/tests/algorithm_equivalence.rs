//! Property tests: on randomly generated graph streams, all five DSMatrix
//! algorithms, the DSTree baseline, the DSTable baseline and the brute-force
//! oracle return exactly the same frequent connected collections (the paper's
//! first experiment, E1, as a property).

use fsm_core::{
    mine_dstable, mine_dstree, oracle, Algorithm, ConnectivityMode, StreamMinerBuilder,
};
use fsm_datagen::{GraphModel, GraphModelConfig, GraphStreamConfig, GraphStreamGenerator};
use fsm_dstable::{DsTable, DsTableConfig};
use fsm_dstree::{DsTree, DsTreeConfig};
use fsm_fptree::MiningLimits;
use fsm_storage::StorageBackend;
use fsm_stream::WindowConfig;
use fsm_types::{Batch, EdgeCatalog, MinSup, Transaction};
use proptest::prelude::*;

/// Generates a small random stream plus the catalog it is drawn from.
fn generate_stream(seed: u64, batches: usize, batch_size: usize) -> (EdgeCatalog, Vec<Batch>) {
    let model = GraphModel::generate(GraphModelConfig {
        num_vertices: 7,
        avg_fanout: 3.0,
        seed,
        ..GraphModelConfig::default()
    });
    let catalog = model.catalog().clone();
    let mut generator = GraphStreamGenerator::new(
        model,
        GraphStreamConfig {
            avg_edges_per_graph: 4.0,
            locality: 0.6,
            batch_size,
            seed,
        },
    );
    (catalog, generator.generate_batches(batches))
}

/// The connected-pattern strings of a window, per the oracle.
fn oracle_strings(catalog: &EdgeCatalog, window: &[Transaction], minsup: u64) -> Vec<String> {
    oracle::mine_connected_oracle(window, catalog, minsup, None, ConnectivityMode::Exact)
        .into_iter()
        .map(|p| format!("{}:{}", p.edges.symbols(), p.support))
        .collect()
}

fn result_strings(result: &fsm_core::MiningResult) -> Vec<String> {
    result
        .patterns()
        .iter()
        .map(|p| format!("{}:{}", p.edges.symbols(), p.support))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Experiment E1 as a property: everything agrees with the oracle.
    #[test]
    fn all_structures_and_algorithms_agree(
        seed in 0u64..1000,
        num_batches in 2usize..5,
        window in 1usize..4,
        minsup in 2u64..5,
    ) {
        let batch_size = 8;
        let (catalog, batches) = generate_stream(seed, num_batches, batch_size);

        // Ground truth: the oracle over the in-memory window.
        let start = batches.len().saturating_sub(window);
        let window_transactions: Vec<Transaction> = batches[start..]
            .iter()
            .flat_map(|b| b.transactions().iter().cloned())
            .collect();
        let expected = oracle_strings(&catalog, &window_transactions, minsup);

        // The five DSMatrix algorithms through the facade.
        for algorithm in Algorithm::ALL {
            let mut miner = StreamMinerBuilder::new()
                .algorithm(algorithm)
                .window_batches(window)
                .min_support(MinSup::absolute(minsup))
                .catalog(catalog.clone())
                .build()
                .unwrap();
            for batch in &batches {
                miner.ingest_batch(batch).unwrap();
            }
            let result = miner.mine().unwrap();
            prop_assert_eq!(
                result_strings(&result),
                expected.clone(),
                "algorithm {} disagrees with the oracle (seed {})",
                algorithm,
                seed
            );
        }

        // The DSTree baseline.
        let mut tree = DsTree::new(DsTreeConfig {
            window: WindowConfig::new(window).unwrap(),
        });
        for batch in &batches {
            tree.ingest_batch(batch).unwrap();
        }
        let tree_result = mine_dstree(
            &tree,
            &catalog,
            minsup,
            MiningLimits::UNBOUNDED,
            ConnectivityMode::Exact,
        )
        .unwrap();
        prop_assert_eq!(
            result_strings(&tree_result),
            expected.clone(),
            "DSTree baseline disagrees (seed {})",
            seed
        );

        // The DSTable baseline.
        let mut table = DsTable::new(DsTableConfig {
            window: WindowConfig::new(window).unwrap(),
            backend: StorageBackend::Memory,
            expected_edges: catalog.num_edges(),
        })
        .unwrap();
        for batch in &batches {
            table.ingest_batch(batch).unwrap();
        }
        let table_result = mine_dstable(
            &mut table,
            &catalog,
            minsup,
            MiningLimits::UNBOUNDED,
            ConnectivityMode::Exact,
        )
        .unwrap();
        prop_assert_eq!(
            result_strings(&table_result),
            expected,
            "DSTable baseline disagrees (seed {})",
            seed
        );
    }

    /// Disk-backed and memory-backed DSMatrix mining are indistinguishable.
    #[test]
    fn storage_backend_does_not_change_results(seed in 0u64..500, minsup in 2u64..4) {
        let (catalog, batches) = generate_stream(seed, 3, 6);
        let mut results = Vec::new();
        for backend in [StorageBackend::Memory, StorageBackend::DiskTemp] {
            let mut miner = StreamMinerBuilder::new()
                .algorithm(Algorithm::DirectVertical)
                .window_batches(2)
                .min_support(MinSup::absolute(minsup))
                .backend(backend)
                .catalog(catalog.clone())
                .build()
                .unwrap();
            for batch in &batches {
                miner.ingest_batch(batch).unwrap();
            }
            results.push(result_strings(&miner.mine().unwrap()));
        }
        prop_assert_eq!(&results[0], &results[1]);
    }
}
