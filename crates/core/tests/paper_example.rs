//! End-to-end reproduction of the paper's running example (Figure 1, Tables 1
//! and 2, Examples 1–7).
//!
//! The stream of nine graphs over the vertices v1..v4 is ingested in batches
//! of three with a window of two batches; after the window slides past the
//! first batch, every algorithm must find exactly the collections the paper
//! reports: 17 collections of frequently co-occurring edges, of which 15 are
//! connected subgraphs once {a,f} and {c,d} are pruned.

use fsm_core::{Algorithm, ConnectivityMode, StreamMinerBuilder};
use fsm_types::{EdgeCatalog, EdgeSet, GraphSnapshot, MinSup};

/// The nine graphs of Figure 1, expressed as vertex pairs.
fn figure_1_stream() -> Vec<GraphSnapshot> {
    vec![
        GraphSnapshot::from_pairs([(1, 4), (2, 3), (3, 4)]), // E1
        GraphSnapshot::from_pairs([(1, 2), (2, 4), (3, 4)]), // E2
        GraphSnapshot::from_pairs([(1, 2), (1, 4), (3, 4)]), // E3
        GraphSnapshot::from_pairs([(1, 2), (1, 4), (2, 3), (3, 4)]), // E4
        GraphSnapshot::from_pairs([(1, 2), (2, 3), (2, 4), (3, 4)]), // E5
        GraphSnapshot::from_pairs([(1, 2), (1, 3), (1, 4)]), // E6
        GraphSnapshot::from_pairs([(1, 2), (1, 4), (3, 4)]), // E7
        GraphSnapshot::from_pairs([(1, 2), (1, 4), (2, 3), (3, 4)]), // E8
        GraphSnapshot::from_pairs([(1, 3), (1, 4), (2, 3)]), // E9
    ]
}

fn miner_for(algorithm: Algorithm, connectivity: ConnectivityMode) -> fsm_core::StreamMiner {
    StreamMinerBuilder::new()
        .algorithm(algorithm)
        .window_batches(2)
        .min_support(MinSup::absolute(2))
        .connectivity(connectivity)
        .catalog(EdgeCatalog::complete(4))
        .build()
        .expect("valid configuration")
}

fn run(algorithm: Algorithm, connectivity: ConnectivityMode) -> fsm_core::MiningResult {
    let mut miner = miner_for(algorithm, connectivity);
    let stream = figure_1_stream();
    for batch in stream.chunks(3) {
        miner.ingest_snapshots(batch).unwrap();
    }
    assert_eq!(miner.window_transactions(), 6, "window holds E4..E9");
    miner.mine().unwrap()
}

/// Example 6: the 15 frequent connected subgraphs with their supports.
fn expected_connected() -> Vec<(&'static str, u64)> {
    vec![
        ("{a}", 5),
        ("{b}", 2),
        ("{c}", 5),
        ("{d}", 4),
        ("{f}", 4),
        ("{a,c}", 4),
        ("{a,c,d}", 2),
        ("{a,c,d,f}", 2),
        ("{a,c,f}", 3),
        ("{a,d}", 3),
        ("{a,d,f}", 3),
        ("{b,c}", 2),
        ("{c,d,f}", 2),
        ("{c,f}", 3),
        ("{d,f}", 3),
    ]
}

#[test]
fn every_algorithm_reproduces_examples_2_through_7() {
    for algorithm in Algorithm::ALL {
        let result = run(algorithm, ConnectivityMode::Exact);
        assert_eq!(
            result.len(),
            15,
            "{algorithm}: 15 connected collections expected\n{result}"
        );
        for (symbols, support) in expected_connected() {
            let found = result
                .patterns()
                .iter()
                .find(|p| p.edges.symbols() == symbols);
            match found {
                Some(p) => assert_eq!(
                    p.support, support,
                    "{algorithm}: support of {symbols} should be {support}"
                ),
                None => panic!("{algorithm}: missing pattern {symbols}"),
            }
        }
        // The disjoint collections of Example 6 must not appear.
        assert!(result.support_of(&EdgeSet::from_raw([0, 5])).is_none());
        assert!(result.support_of(&EdgeSet::from_raw([2, 3])).is_none());
    }
}

#[test]
fn post_processing_algorithms_report_17_collections_before_pruning() {
    // Examples 2–5: each of the four post-processing algorithms first finds
    // 17 collections of frequent edges, then prunes {a,f} and {c,d}.
    for algorithm in [
        Algorithm::MultiTree,
        Algorithm::SingleTree,
        Algorithm::TopDown,
        Algorithm::Vertical,
    ] {
        let result = run(algorithm, ConnectivityMode::Exact);
        assert_eq!(
            result.stats().patterns_before_postprocess,
            17,
            "{algorithm}: Example 2 finds 17 collections before pruning"
        );
        assert_eq!(
            result.stats().patterns_pruned,
            2,
            "{algorithm}: {{a,f}} and {{c,d}} are pruned"
        );
    }
    // The direct algorithm never produces the disjoint collections at all.
    let direct = run(Algorithm::DirectVertical, ConnectivityMode::Exact);
    assert_eq!(direct.stats().patterns_before_postprocess, 15);
    assert_eq!(direct.stats().patterns_pruned, 0);
}

#[test]
fn paper_rule_connectivity_matches_the_exact_check_on_the_running_example() {
    for algorithm in Algorithm::ALL {
        let exact = run(algorithm, ConnectivityMode::Exact);
        let rule = run(algorithm, ConnectivityMode::PaperRule);
        assert!(
            exact.same_patterns_as(&rule),
            "{algorithm}: §3.5 rule and union-find disagree on the running example: {:?}",
            exact.diff(&rule)
        );
    }
}

#[test]
fn example_3_supports_for_the_a_projected_patterns() {
    // Example 3 spells out: {a,c}:4, {a,c,d}:2, {a,c,d,f}:2, {a,c,f}:3,
    // {a,d}:3, {a,d,f}:3, {a,f}:4.  All but {a,f} are connected and must be
    // reported with exactly these supports.
    let result = run(Algorithm::SingleTree, ConnectivityMode::Exact);
    let expect = [
        ("{a,c}", 4u64),
        ("{a,c,d}", 2),
        ("{a,c,d,f}", 2),
        ("{a,c,f}", 3),
        ("{a,d}", 3),
        ("{a,d,f}", 3),
    ];
    for (symbols, support) in expect {
        let p = result
            .patterns()
            .iter()
            .find(|p| p.edges.symbols() == symbols)
            .unwrap_or_else(|| panic!("missing {symbols}"));
        assert_eq!(p.support, support, "{symbols}");
    }
}

#[test]
fn before_the_slide_the_window_covers_e1_to_e6() {
    // Example 1's first matrix: at the end of T6 the window holds E1..E6.
    let mut miner = miner_for(Algorithm::Vertical, ConnectivityMode::Exact);
    let stream = figure_1_stream();
    miner.ingest_snapshots(&stream[0..3]).unwrap();
    miner.ingest_snapshots(&stream[3..6]).unwrap();
    let result = miner.mine().unwrap();
    // Supports over E1..E6: a:5, b:1, c:4, d:3, e:2, f:5 — so the frequent
    // singletons at minsup 2 are a, c, d, e, f.
    assert_eq!(result.support_of(&EdgeSet::from_raw([0])), Some(5));
    assert_eq!(result.support_of(&EdgeSet::from_raw([2])), Some(4));
    assert_eq!(result.support_of(&EdgeSet::from_raw([4])), Some(2));
    assert_eq!(
        result.support_of(&EdgeSet::from_raw([1])),
        None,
        "b is infrequent before the slide"
    );
    // {c,f} = {(v1,v4),(v3,v4)} appears in E1, E3, E4 → support 3.
    assert_eq!(result.support_of(&EdgeSet::from_raw([2, 5])), Some(3));
}
