//! The read-path refactor must not change a single output byte.
//!
//! All five algorithms now read the window through the zero-copy
//! [`fsm_dsmatrix::WindowView`].  On the memory backend the view borrows the
//! incrementally-maintained row cache; on the disk backends it falls back to
//! eager row assembly — the old snapshot-style read path.  Running the same
//! stream through both backends therefore pits view-based mining against
//! eager-snapshot mining, and this file property-tests that the pattern
//! lists (order included) and the work counters are byte-identical for every
//! algorithm on arbitrary streams.
//!
//! It also pins the acceptance criterion of the refactor directly: a
//! steady-state mine-after-slide on the memory backend materialises *zero*
//! words of window data, regardless of how large the window is.

use fsm_core::{miners, Algorithm, Exec, StreamMinerBuilder};
use fsm_dsmatrix::{DsMatrix, DsMatrixConfig};
use fsm_fptree::MiningLimits;
use fsm_storage::StorageBackend;
use fsm_stream::WindowConfig;
use fsm_types::{Batch, EdgeCatalog, MinSup, Transaction};
use proptest::prelude::*;

/// Complete graph over five vertices: ten possible edges.
const VERTICES: u32 = 5;
const EDGES: u32 = 10;

fn arb_stream() -> impl Strategy<Value = Vec<Vec<Vec<u32>>>> {
    // 1..5 batches of 1..6 transactions over the edge vocabulary.
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::collection::btree_set(0u32..EDGES, 0..6)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            1..6,
        ),
        1..5,
    )
}

fn ingest(raw: &[Vec<Vec<u32>>], window: usize, backend: StorageBackend) -> DsMatrix {
    let mut matrix = DsMatrix::new(DsMatrixConfig::new(
        WindowConfig::new(window).unwrap(),
        backend,
        EDGES as usize,
    ))
    .unwrap();
    for (id, transactions) in raw.iter().enumerate() {
        let batch = Batch::from_transactions(
            id as u64,
            transactions
                .iter()
                .map(|t| Transaction::from_raw(t.iter().copied()))
                .collect(),
        );
        matrix.ingest_batch(&batch).unwrap();
    }
    matrix
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Zero-copy (memory backend) and eager-assembly (disk backend) mining
    /// are byte-identical for all five algorithms on arbitrary streams.
    #[test]
    fn view_mining_equals_eager_snapshot_mining(
        raw in arb_stream(),
        window in 1usize..4,
        minsup in 1u64..4,
    ) {
        let catalog = EdgeCatalog::complete(VERTICES);
        let mut zero_copy = ingest(&raw, window, StorageBackend::Memory);
        let mut eager = ingest(&raw, window, StorageBackend::DiskTemp);
        for algorithm in Algorithm::ALL {
            let via_view = miners::run_algorithm(
                algorithm, &mut zero_copy, &catalog, minsup, MiningLimits::UNBOUNDED,
                &Exec::scoped(1),
            ).unwrap();
            let via_assembly = miners::run_algorithm(
                algorithm, &mut eager, &catalog, minsup, MiningLimits::UNBOUNDED,
                &Exec::scoped(1),
            ).unwrap();
            // Not just as sets: order and supports must match exactly.
            prop_assert_eq!(
                &via_view.patterns, &via_assembly.patterns,
                "{} patterns diverged between read paths", algorithm
            );
            prop_assert_eq!(
                via_view.stats.intersections, via_assembly.stats.intersections,
                "{} intersection counts diverged", algorithm
            );
            prop_assert_eq!(
                via_view.stats.tree_footprint.trees_built,
                via_assembly.stats.tree_footprint.trees_built,
                "{} tree counts diverged", algorithm
            );
        }
    }
}

/// The acceptance criterion: after the window is full, every mine call on
/// the memory backend reads zero materialised words — the read cost moved to
/// the (slide-proportional) cache maintenance — while the disk backend still
/// pays one full assembly per mine, and both find identical patterns.
#[test]
fn steady_state_mine_after_slide_materialises_nothing_on_memory() {
    for algorithm in Algorithm::ALL {
        let build = |backend: StorageBackend| {
            StreamMinerBuilder::new()
                .algorithm(algorithm)
                .window_batches(3)
                .min_support(MinSup::absolute(2))
                .backend(backend)
                .complete_graph_vertices(VERTICES)
                .build()
                .unwrap()
        };
        let mut memory = build(StorageBackend::Memory);
        let mut disk = build(StorageBackend::DiskTemp);
        for id in 0..8u64 {
            let batch = Batch::from_transactions(
                id,
                vec![
                    Transaction::from_raw([(id % 4) as u32, ((id + 1) % 4) as u32]),
                    Transaction::from_raw([0u32, 1, 2]),
                    Transaction::from_raw([((id + 2) % 5) as u32]),
                ],
            );
            memory.ingest_batch(&batch).unwrap();
            disk.ingest_batch(&batch).unwrap();
            let mem_result = memory.mine().unwrap();
            let disk_result = disk.mine().unwrap();
            assert_eq!(
                mem_result.stats().read_words_assembled,
                0,
                "{algorithm}: memory-backend mine #{id} materialised window data"
            );
            assert!(
                disk_result.stats().read_words_assembled > 0,
                "{algorithm}: disk-backend mine #{id} should report its assembly"
            );
            assert!(
                mem_result.same_patterns_as(&disk_result),
                "{algorithm}: read paths disagree on mine #{id}"
            );
        }
    }
}

/// Read amplification scales with the rows a slide touches, not with the
/// window: growing the window 16x leaves the per-mine read cost flat.
#[test]
fn per_mine_read_cost_is_independent_of_window_size() {
    let batch = |id: u64| {
        Batch::from_transactions(
            id,
            vec![
                Transaction::from_raw([0u32, 1]),
                Transaction::from_raw([2u32, 3]),
            ],
        )
    };
    let mut costs = Vec::new();
    for window in [2usize, 32] {
        let mut matrix = DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(window).unwrap(),
            StorageBackend::Memory,
            4,
        ))
        .unwrap();
        for id in 0..window as u64 + 1 {
            matrix.ingest_batch(&batch(id)).unwrap();
        }
        // One steady-state slide + mine: the read cost is eager words (must
        // be zero) plus the slide's cache-splice words.
        let before = matrix.read_stats();
        matrix.ingest_batch(&batch(window as u64 + 1)).unwrap();
        let view = matrix.view().unwrap();
        assert!(view.num_transactions() == window * 2);
        let _ = view;
        let after = matrix.read_stats();
        assert_eq!(after.words_assembled, before.words_assembled);
        costs.push(after.cache_splice_words - before.cache_splice_words);
    }
    assert_eq!(
        costs[0], costs[1],
        "a 16x larger window must not change the read-side cost of a slide: {costs:?}"
    );
}
