//! Concurrent ingest + mine agreement: a snapshot mined on another thread —
//! while the writer keeps sliding the window underneath it — must produce
//! **byte-identical** patterns to a stop-the-world miner replayed to the
//! same epoch.
//!
//! The harness is the real deployment shape of [`StreamMiner::snapshot`]:
//! one writer (the test body) slides a random batch stream and hands every
//! epoch's [`fsm_core::MinerSnapshot`] to a pool of reader threads over
//! channels; readers mine concurrently with the writer's later ingests, so
//! by the time most snapshots are mined the live window has already moved
//! on (and, on the disk backend, the segments they froze have been popped
//! and their cache pins released).  Every mined epoch is then compared
//! against a sequential oracle: a fresh miner that replays the batch prefix
//! up to the snapshot's [`fsm_core::MinerSnapshot::last_batch_id`] and
//! mines stop-the-world.  Snapshotting *every* epoch is a superset of
//! "readers snapshot at random points" — each case checks all of them.
//!
//! The property fans over {memory, eager disk, tiny disk budget, unlimited
//! disk budget} × mining thread counts × both algorithm families, on random
//! streams, windows and thresholds.  A second test pins relative-threshold
//! semantics: `MinSup::relative` resolves against the *epoch's* transaction
//! count at snapshot time, not the live window's at mine time.

use std::sync::mpsc;
use std::thread;

use fsm_core::{Algorithm, MinerSnapshot, MiningResult, StreamMiner, StreamMinerBuilder};
use fsm_storage::StorageBackend;
use fsm_types::{Batch, BatchId, MinSup, Transaction};
use proptest::prelude::*;

const VERTICES: u32 = 5;
const EDGES: u32 = 10;

/// Reader threads mining snapshots concurrently with the writer.
const READERS: usize = 3;

/// The backend/budget corners under test: memory, eager disk, a tiny disk
/// budget (pinned/fallback mixes under eviction pressure) and an unlimited
/// disk budget (all rows pinned).
fn corners() -> Vec<(&'static str, StorageBackend, usize)> {
    vec![
        ("memory", StorageBackend::Memory, 0),
        ("disk budget=0", StorageBackend::DiskTemp, 0),
        ("disk budget=tiny", StorageBackend::DiskTemp, 600),
        ("disk budget=max", StorageBackend::DiskTemp, usize::MAX),
    ]
}

fn build(
    algorithm: Algorithm,
    window: usize,
    minsup: MinSup,
    backend: StorageBackend,
    budget: usize,
    threads: usize,
) -> StreamMiner {
    StreamMinerBuilder::new()
        .algorithm(algorithm)
        .window_batches(window)
        .min_support(minsup)
        .backend(backend)
        .cache_budget_bytes(budget)
        .threads(threads)
        .complete_graph_vertices(VERTICES)
        .build()
        .unwrap()
}

fn arb_stream() -> impl Strategy<Value = Vec<Vec<Vec<u32>>>> {
    // 1..6 batches of 1..6 transactions over the edge vocabulary.
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::collection::btree_set(0u32..EDGES, 0..6)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            1..6,
        ),
        1..6,
    )
}

fn to_batches(raw: &[Vec<Vec<u32>>]) -> Vec<Batch> {
    raw.iter()
        .enumerate()
        .map(|(id, transactions)| {
            Batch::from_transactions(
                id as u64,
                transactions
                    .iter()
                    .map(|t| Transaction::from_raw(t.iter().copied()))
                    .collect(),
            )
        })
        .collect()
}

/// Stop-the-world oracle: a fresh sequential miner replayed to the epoch
/// whose newest batch is `last` (`None` = the empty epoch), mined there.
fn oracle_at(
    algorithm: Algorithm,
    window: usize,
    minsup: MinSup,
    batches: &[Batch],
    last: Option<BatchId>,
) -> MiningResult {
    let mut miner = build(algorithm, window, minsup, StorageBackend::Memory, 0, 1);
    if let Some(last) = last {
        for batch in batches.iter().filter(|b| b.id <= last) {
            miner.ingest_batch(batch).unwrap();
        }
    }
    miner.mine().unwrap()
}

/// Slides `batches` through `miner` while a pool of reader threads mines
/// every epoch's snapshot concurrently; returns each epoch's mined result
/// keyed by the snapshot's newest batch id.
fn mine_epochs_concurrently(
    miner: &mut StreamMiner,
    batches: &[Batch],
) -> Vec<(Option<BatchId>, MiningResult)> {
    thread::scope(|scope| {
        let (result_tx, result_rx) = mpsc::channel();
        let mut jobs: Vec<mpsc::Sender<MinerSnapshot>> = Vec::with_capacity(READERS);
        for _ in 0..READERS {
            let (tx, rx) = mpsc::channel::<MinerSnapshot>();
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                for job in rx {
                    let epoch = job.last_batch_id();
                    result_tx.send((epoch, job.mine().unwrap())).unwrap();
                }
            });
            jobs.push(tx);
        }
        drop(result_tx);
        // The writer: snapshot the empty epoch, then every post-slide epoch,
        // handing each to a reader round-robin and ingesting on without
        // waiting for any mine to finish.
        jobs[0].send(miner.snapshot().unwrap()).unwrap();
        for (i, batch) in batches.iter().enumerate() {
            miner.ingest_batch(batch).unwrap();
            jobs[(i + 1) % READERS]
                .send(miner.snapshot().unwrap())
                .unwrap();
        }
        drop(jobs);
        result_rx.iter().collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: every epoch mined concurrently with later
    /// slides equals the stop-the-world oracle replayed to that epoch, on
    /// every backend/budget corner, for every mining thread count, for one
    /// algorithm of each family.
    #[test]
    fn concurrent_snapshot_mining_matches_the_stop_the_world_oracle(
        raw in arb_stream(),
        window in 1usize..4,
        minsup in 1u64..4,
    ) {
        let batches = to_batches(&raw);
        for algorithm in [Algorithm::DirectVertical, Algorithm::MultiTree] {
            for (label, backend, budget) in corners() {
                for threads in [1usize, 2] {
                    let mut miner = build(
                        algorithm,
                        window,
                        MinSup::absolute(minsup),
                        backend.clone(),
                        budget,
                        threads,
                    );
                    let results = mine_epochs_concurrently(&mut miner, &batches);
                    prop_assert_eq!(
                        results.len(),
                        batches.len() + 1,
                        "{} {}: every epoch must be mined exactly once", algorithm, label
                    );
                    for (epoch, result) in &results {
                        let expected = oracle_at(
                            algorithm,
                            window,
                            MinSup::absolute(minsup),
                            &batches,
                            *epoch,
                        );
                        prop_assert!(
                            result.same_patterns_as(&expected),
                            "{} {} threads={} epoch={:?}: {:?}",
                            algorithm, label, threads, epoch, expected.diff(result)
                        );
                    }
                }
            }
        }
    }
}

/// All five algorithms agree with the oracle through the concurrent harness
/// on one fixed stream — a cheap deterministic anchor for the property.
#[test]
fn every_algorithm_survives_the_concurrent_harness() {
    let raw: Vec<Vec<Vec<u32>>> = vec![
        vec![vec![2, 3, 5], vec![0, 4, 5], vec![0, 2, 5]],
        vec![vec![0, 2, 3, 5], vec![0, 3, 4, 5], vec![0, 1, 2]],
        vec![vec![0, 2, 5], vec![0, 2, 3, 5], vec![1, 2, 3]],
        vec![vec![1, 4], vec![0, 2]],
    ];
    let batches = to_batches(&raw);
    for algorithm in Algorithm::ALL {
        let mut miner = build(
            algorithm,
            2,
            MinSup::absolute(2),
            StorageBackend::DiskTemp,
            usize::MAX,
            2,
        );
        for (epoch, result) in mine_epochs_concurrently(&mut miner, &batches) {
            let expected = oracle_at(algorithm, 2, MinSup::absolute(2), &batches, epoch);
            assert!(
                result.same_patterns_as(&expected),
                "{algorithm} epoch={epoch:?}: {:?}",
                expected.diff(&result)
            );
        }
    }
}

/// A relative threshold is resolved against the epoch's transaction count
/// *at snapshot time*: a held snapshot keeps its own resolved absolute
/// support even after later slides change the live window's size.
#[test]
fn relative_minsup_resolves_at_the_snapshots_own_epoch() {
    let minsup = MinSup::relative(0.5);
    let small = Batch::from_transactions(
        0,
        vec![
            Transaction::from_raw([0u32, 1]),
            Transaction::from_raw([0u32, 2]),
        ],
    );
    let large = Batch::from_transactions(
        1,
        (0..6)
            .map(|i| Transaction::from_raw([i as u32 % EDGES, (i as u32 + 1) % EDGES]))
            .collect(),
    );
    let mut miner = build(
        Algorithm::DirectVertical,
        2,
        minsup,
        StorageBackend::DiskTemp,
        usize::MAX,
        1,
    );
    miner.ingest_batch(&small).unwrap();
    let early = miner.snapshot().unwrap();
    miner.ingest_batch(&large).unwrap();
    let late = miner.snapshot().unwrap();
    // 50% of 2 transactions vs 50% of 8: the held snapshot must keep the
    // small epoch's threshold even though the live window has grown.
    assert_eq!(early.resolved_minsup(), minsup.resolve(2));
    assert_eq!(late.resolved_minsup(), minsup.resolve(8));
    let handle = thread::spawn(move || early.mine().unwrap());
    let expected = oracle_at(
        Algorithm::DirectVertical,
        2,
        minsup,
        std::slice::from_ref(&small),
        Some(0),
    );
    let mined = handle.join().unwrap();
    assert!(
        mined.same_patterns_as(&expected),
        "held snapshot diverged: {:?}",
        expected.diff(&mined)
    );
}
