//! Delta-mining agreement: the incrementally maintained pattern set must be
//! **byte-identical** to a full re-mine at every epoch of a randomized slide
//! sequence — for all five algorithms, both storage backends, several thread
//! counts, and absolute *and* relative thresholds (whose re-resolution as
//! the window size changes forces the delta miner's rebuild fallback).
//!
//! Alongside the facade-level oracle property, a shadow-model test drives
//! [`DeltaMiner`] directly and recounts every support brute-force from the
//! window's transactions (the `HashMap`-free equivalent of recounting from
//! scratch): the maintained set must equal the recounted frequent set after
//! every advance, which catches border-set bookkeeping errors (missed
//! promotions, stale triggers, wrong per-segment contributions) that the
//! pattern-level oracle would only surface indirectly.  A third test
//! interleaves delta advances with a held epoch snapshot mined concurrently
//! on another thread — the PR 7 reader/writer split must compose with delta
//! state.

use std::thread;

use fsm_core::{Algorithm, DeltaMiner, MiningResult, StreamMiner, StreamMinerBuilder};
use fsm_fptree::MiningLimits;
use fsm_storage::StorageBackend;
use fsm_types::{Batch, MinSup, Transaction};
use proptest::prelude::*;

const VERTICES: u32 = 5;
const EDGES: u32 = 10;

fn build(
    algorithm: Algorithm,
    window: usize,
    minsup: MinSup,
    backend: StorageBackend,
    threads: usize,
    max_len: Option<usize>,
    delta: bool,
) -> StreamMiner {
    let mut builder = StreamMinerBuilder::new()
        .algorithm(algorithm)
        .window_batches(window)
        .min_support(minsup)
        .backend(backend)
        .threads(threads)
        .delta(delta)
        .complete_graph_vertices(VERTICES);
    if let Some(max) = max_len {
        builder = builder.max_pattern_len(max);
    }
    builder.build().unwrap()
}

fn arb_stream() -> impl Strategy<Value = Vec<Vec<Vec<u32>>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::collection::btree_set(0u32..EDGES, 0..6)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            1..6,
        ),
        1..7,
    )
}

fn to_batches(raw: &[Vec<Vec<u32>>]) -> Vec<Batch> {
    raw.iter()
        .enumerate()
        .map(|(id, transactions)| {
            Batch::from_transactions(
                id as u64,
                transactions
                    .iter()
                    .map(|t| Transaction::from_raw(t.iter().copied()))
                    .collect(),
            )
        })
        .collect()
}

fn assert_same(
    label: &str,
    delta: &MiningResult,
    oracle: &MiningResult,
) -> std::result::Result<(), TestCaseError> {
    prop_assert!(
        delta.same_patterns_as(oracle),
        "{label}: delta diverged from the full re-mine: {:?}",
        oracle.diff(delta)
    );
    let stats = &delta.stats().delta;
    prop_assert!(
        stats.patterns_tracked as u64 >= stats.border_promotions,
        "{label}: promotions ({}) cannot exceed tracked patterns ({})",
        stats.border_promotions,
        stats.patterns_tracked
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline property: `mine_delta` after every slide (and, via the
    /// random mask, after *runs* of slides — multi-segment advances) equals
    /// the stop-the-world miner of each algorithm at the same epoch, on
    /// both backends, sequential and threaded oracles, absolute and
    /// relative thresholds.  Relative thresholds re-resolve as the window
    /// fills, which must route the delta miner through its rebuild
    /// fallback without breaking agreement.
    #[test]
    fn delta_mining_matches_every_full_remine_oracle(
        raw in arb_stream(),
        mask in proptest::collection::vec(any::<bool>(), 6),
        window in 1usize..4,
        knobs in (1u64..4, any::<bool>(), 0usize..4),
    ) {
        let (abs, relative, max_len_raw) = knobs;
        let max_len = if max_len_raw == 0 { None } else { Some(max_len_raw) };
        let batches = to_batches(&raw);
        let minsup = if relative {
            MinSup::relative(abs as f64 / 4.0)
        } else {
            MinSup::absolute(abs)
        };
        for algorithm in Algorithm::ALL {
            for backend in [StorageBackend::Memory, StorageBackend::DiskTemp] {
                for threads in [1usize, 2] {
                    let label = format!(
                        "{algorithm} {backend:?} threads={threads} minsup={minsup} max_len={max_len:?}"
                    );
                    let mut delta_miner = build(
                        algorithm, window, minsup, backend.clone(), threads, max_len, true,
                    );
                    let mut oracle = build(
                        algorithm, window, minsup, backend.clone(), threads, max_len, false,
                    );
                    for (i, batch) in batches.iter().enumerate() {
                        delta_miner.ingest_batch(batch).unwrap();
                        oracle.ingest_batch(batch).unwrap();
                        // The mask skips mines at some epochs, so the next
                        // delta advance has to absorb several slides at once
                        // (and a full window turnover when the gap exceeds
                        // the window).  The last epoch is always mined.
                        if i + 1 != batches.len() && !mask[i % mask.len()] {
                            continue;
                        }
                        let incremental = delta_miner.mine().unwrap();
                        let full = oracle.mine().unwrap();
                        assert_same(&format!("{label} epoch={i}"), &incremental, &full)?;
                    }
                }
            }
        }
    }

    /// Shadow model: drive the [`DeltaMiner`] directly through randomized
    /// slides and recount every pattern's support brute-force from the
    /// window's transactions.  The maintained (pre-connectivity) set must
    /// equal the recounted frequent set exactly — supports included — after
    /// every advance, including advances that cover several slides and a
    /// mid-stream threshold switch (which must trigger exactly one rebuild).
    #[test]
    fn delta_state_matches_a_brute_force_recount(
        raw in arb_stream(),
        mask in proptest::collection::vec(any::<bool>(), 6),
        window in 1usize..4,
        thresholds in (1u64..4, 1u64..4),
    ) {
        let (minsup, switched) = thresholds;
        let batches = to_batches(&raw);
        let mut miner = build(
            Algorithm::Vertical,
            window,
            MinSup::absolute(minsup),
            StorageBackend::Memory,
            1,
            None,
            false,
        );
        let mut state = DeltaMiner::new();
        let mut rebuilds_seen = 0u64;
        for (i, batch) in batches.iter().enumerate() {
            miner.ingest_batch(batch).unwrap();
            if i + 1 != batches.len() && !mask[i % mask.len()] {
                continue;
            }
            // Switch thresholds halfway through the stream: the advance
            // must fall back to a full rebuild exactly once per switch.
            let threshold = if i >= batches.len() / 2 { switched } else { minsup };
            let snapshot = miner.matrix_mut().snapshot_epoch().unwrap();
            let mut found = state.advance(&snapshot, threshold, MiningLimits::UNBOUNDED).unwrap();
            rebuilds_seen += state.stats().full_rebuilds;

            let window_tx = window_transactions(&batches, i, window);
            let mut expected = brute_force_frequent(&window_tx, threshold.max(1));
            let mut got: Vec<(Vec<u32>, u64)> = found
                .drain(..)
                .map(|p| (p.edges.edges().iter().map(|e| e.0).collect(), p.support))
                .collect();
            got.sort();
            expected.sort();
            prop_assert_eq!(
                got,
                expected,
                "epoch {} window {} minsup {}: maintained set diverged from recount",
                i,
                window,
                threshold
            );
            prop_assert_eq!(state.stats().patterns_tracked, state.patterns_tracked());
            prop_assert_eq!(state.stats().border_size, state.border_size());
        }
        prop_assert!(rebuilds_seen >= 1, "the first advance is always a rebuild");
    }
}

/// The transactions inside the window after ingesting batches `0..=upto`.
fn window_transactions(batches: &[Batch], upto: usize, window: usize) -> Vec<Vec<u32>> {
    let first = (upto + 1).saturating_sub(window);
    batches[first..=upto]
        .iter()
        .flat_map(|b| {
            b.transactions()
                .iter()
                .map(|t| t.edges().iter().map(|e| e.0).collect())
        })
        .collect()
}

/// Brute-force frequent-set enumeration by rescanning the window for every
/// candidate — the recount oracle for the maintained state.
fn brute_force_frequent(window_tx: &[Vec<u32>], minsup: u64) -> Vec<(Vec<u32>, u64)> {
    fn support(window_tx: &[Vec<u32>], set: &[u32]) -> u64 {
        window_tx
            .iter()
            .filter(|t| set.iter().all(|e| t.contains(e)))
            .count() as u64
    }
    fn extend(
        window_tx: &[Vec<u32>],
        minsup: u64,
        prefix: &mut Vec<u32>,
        from: u32,
        out: &mut Vec<(Vec<u32>, u64)>,
    ) {
        for edge in from..EDGES {
            prefix.push(edge);
            let s = support(window_tx, prefix);
            if s >= minsup {
                out.push((prefix.clone(), s));
                extend(window_tx, minsup, prefix, edge + 1, out);
            }
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    extend(window_tx, minsup, &mut Vec::new(), 0, &mut out);
    out
}

/// Deterministic anchor: the paper's stream mined delta-first on every
/// algorithm and backend gives the 15 connected collections at the final
/// epoch, with the second advance incremental (no rebuild) and cheaper than
/// the tracked set.
#[test]
fn paper_stream_delta_mines_incrementally() {
    let raw: Vec<Vec<Vec<u32>>> = vec![
        vec![vec![2, 3, 5], vec![0, 4, 5], vec![0, 2, 5]],
        vec![vec![0, 2, 3, 5], vec![0, 3, 4, 5], vec![0, 1, 2]],
        vec![vec![0, 2, 5], vec![0, 2, 3, 5], vec![1, 2, 3]],
    ];
    let batches = to_batches(&raw);
    for backend in [StorageBackend::Memory, StorageBackend::DiskTemp] {
        let mut miner = StreamMinerBuilder::new()
            .window_batches(2)
            .min_support(MinSup::absolute(2))
            .backend(backend)
            .delta(true)
            .complete_graph_vertices(4)
            .build()
            .unwrap();
        let mut last = None;
        for batch in &batches {
            miner.ingest_batch(batch).unwrap();
            last = Some(miner.mine().unwrap());
        }
        let result = last.unwrap();
        assert_eq!(result.len(), 15);
        let delta = &result.stats().delta;
        assert_eq!(delta.full_rebuilds, 0, "steady state must not rebuild");
        assert_eq!(delta.slides_applied, 1);
        assert!(delta.patterns_tracked >= 15);
    }
}

/// Epoch-snapshot interleaving: delta state advances (and stays correct)
/// while a previously held snapshot of an older epoch is mined concurrently
/// on another thread — and the held snapshot still reproduces its own epoch.
#[test]
fn delta_advances_while_a_held_snapshot_is_mined() {
    let raw: Vec<Vec<Vec<u32>>> = vec![
        vec![vec![2, 3, 5], vec![0, 4, 5], vec![0, 2, 5]],
        vec![vec![0, 2, 3, 5], vec![0, 3, 4, 5], vec![0, 1, 2]],
        vec![vec![0, 2, 5], vec![0, 2, 3, 5], vec![1, 2, 3]],
        vec![vec![1, 4], vec![0, 2]],
    ];
    let batches = to_batches(&raw);
    let mut delta_miner = build(
        Algorithm::Vertical,
        2,
        MinSup::absolute(2),
        StorageBackend::Memory,
        1,
        None,
        true,
    );
    let mut oracle = build(
        Algorithm::Vertical,
        2,
        MinSup::absolute(2),
        StorageBackend::Memory,
        1,
        None,
        false,
    );
    delta_miner.ingest_batch(&batches[0]).unwrap();
    delta_miner.ingest_batch(&batches[1]).unwrap();
    oracle.ingest_batch(&batches[0]).unwrap();
    oracle.ingest_batch(&batches[1]).unwrap();
    let at_hold = delta_miner.mine().unwrap();
    assert!(at_hold.same_patterns_as(&oracle.mine().unwrap()));

    // Hold the epoch, then keep sliding + delta-mining while a reader mines
    // the frozen epoch on its own thread.
    let held = delta_miner.snapshot().unwrap();
    let reader = thread::spawn(move || (held.last_batch_id(), held.mine().unwrap()));
    for batch in &batches[2..] {
        delta_miner.ingest_batch(batch).unwrap();
        oracle.ingest_batch(batch).unwrap();
        let incremental = delta_miner.mine().unwrap();
        let full = oracle.mine().unwrap();
        assert!(
            incremental.same_patterns_as(&full),
            "delta diverged while the snapshot was held: {:?}",
            full.diff(&incremental)
        );
        assert_eq!(incremental.stats().delta.full_rebuilds, 0);
    }
    let (held_epoch, held_result) = reader.join().unwrap();
    assert_eq!(held_epoch, Some(1));
    assert!(
        held_result.same_patterns_as(&at_hold),
        "held snapshot no longer reproduces its epoch: {:?}",
        at_hold.diff(&held_result)
    );
}

/// Repeating `mine_delta` without an intervening ingest is idempotent and
/// does not recount anything.
#[test]
fn repeated_delta_mines_are_idempotent() {
    let mut miner = build(
        Algorithm::Vertical,
        2,
        MinSup::absolute(2),
        StorageBackend::Memory,
        1,
        None,
        true,
    );
    miner
        .ingest_batch(&to_batches(&[vec![vec![0, 1, 2], vec![0, 2, 3]]])[0])
        .unwrap();
    let first = miner.mine().unwrap();
    let again = miner.mine().unwrap();
    assert!(first.same_patterns_as(&again));
    assert_eq!(again.stats().delta.full_rebuilds, 0);
    assert_eq!(again.stats().delta.slides_applied, 0);
    assert_eq!(again.stats().delta.patterns_reexamined, 0);
}
