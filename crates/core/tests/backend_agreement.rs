//! Cross-backend agreement: the pinned-chunk disk read path (and the
//! budgeted chunk cache underneath it) must be invisible in every output
//! byte.
//!
//! The same batch stream is mined on the `Memory` backend, the eager
//! `DiskTemp` backend (budget 0 — fully-eager per-mine assembly) and the
//! budgeted disk path at both extremes (a deliberately tiny budget whose
//! views mix pinned rows with eager fallbacks under constant eviction
//! pressure, and an unlimited budget where every row is mined straight from
//! pinned chunks).  Mining after every ingested batch exercises arbitrary
//! slide schedules; the property also fans each corner over multiple worker
//! thread counts.  Patterns (order included) and work counters must be
//! byte-identical across every (corner × threads) combination; only the
//! disk-read accounting may differ.
//!
//! A second test pins the acceptance criterion of the pinned path: with a
//! budget covering the touched working set, a steady-state disk mine
//! assembles **zero** words (every row served from pinned chunks) and
//! fetches at most the pages of the rows the slide touched, while budget 0
//! keeps paying the full per-mine window assembly.

use fsm_core::{Algorithm, StreamMiner, StreamMinerBuilder};
use fsm_storage::StorageBackend;
use fsm_types::{Batch, MinSup, Transaction};
use proptest::prelude::*;

const VERTICES: u32 = 5;
const EDGES: u32 = 10;

/// The backend/budget corners under test: memory, eager disk, a tiny disk
/// budget (pinned/fallback mixes under eviction pressure) and an unlimited
/// disk budget (all rows pinned).
fn corners() -> Vec<(&'static str, StorageBackend, usize)> {
    vec![
        ("memory", StorageBackend::Memory, 0),
        ("disk budget=0", StorageBackend::DiskTemp, 0),
        ("disk budget=tiny", StorageBackend::DiskTemp, 600),
        ("disk budget=max", StorageBackend::DiskTemp, usize::MAX),
    ]
}

fn build(
    algorithm: Algorithm,
    window: usize,
    minsup: u64,
    backend: StorageBackend,
    budget: usize,
    threads: usize,
) -> StreamMiner {
    StreamMinerBuilder::new()
        .algorithm(algorithm)
        .window_batches(window)
        .min_support(MinSup::absolute(minsup))
        .backend(backend)
        .cache_budget_bytes(budget)
        .threads(threads)
        .complete_graph_vertices(VERTICES)
        .build()
        .unwrap()
}

fn arb_stream() -> impl Strategy<Value = Vec<Vec<Vec<u32>>>> {
    // 1..6 batches of 1..6 transactions over the edge vocabulary.
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::collection::btree_set(0u32..EDGES, 0..6)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            1..6,
        ),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mining after every ingested batch (arbitrary slide schedules) yields
    /// byte-identical patterns and work counters on all four backend/budget
    /// corners crossed with every worker thread count, for all five
    /// algorithms — pinned-borrow mining is indistinguishable from the eager
    /// fallback in every output byte.
    #[test]
    fn all_budget_corners_mine_identically(
        raw in arb_stream(),
        window in 1usize..4,
        minsup in 1u64..4,
    ) {
        for algorithm in Algorithm::ALL {
            let mut miners: Vec<(String, StreamMiner)> = corners()
                .into_iter()
                .flat_map(|(label, backend, budget)| {
                    [1usize, 3].map(|threads| {
                        (
                            format!("{label} threads={threads}"),
                            build(algorithm, window, minsup, backend.clone(), budget, threads),
                        )
                    })
                })
                .collect();
            for (id, transactions) in raw.iter().enumerate() {
                let batch = Batch::from_transactions(
                    id as u64,
                    transactions
                        .iter()
                        .map(|t| Transaction::from_raw(t.iter().copied()))
                        .collect(),
                );
                let mut reference = None;
                for (label, miner) in miners.iter_mut() {
                    miner.ingest_batch(&batch).unwrap();
                    let result = miner.mine().unwrap();
                    match &reference {
                        None => reference = Some(result),
                        Some(expected) => {
                            prop_assert_eq!(
                                expected.patterns(), result.patterns(),
                                "{} {}: patterns diverged on batch {}", algorithm, label, id
                            );
                            prop_assert_eq!(
                                expected.stats().intersections,
                                result.stats().intersections,
                                "{} {}: intersection counts diverged", algorithm, label
                            );
                            prop_assert_eq!(
                                expected.stats().tree_footprint.trees_built,
                                result.stats().tree_footprint.trees_built,
                                "{} {}: tree counts diverged", algorithm, label
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The tentpole's acceptance criterion, at the facade level: a budgeted disk
/// mine serves every row from pinned cached chunks — **zero** words
/// assembled, matching the memory backend — and once the window is warm it
/// fetches at most the pages of the rows the slide touched, while budget 0
/// reproduces the eager read pattern (full assembly, strictly more pages)
/// and the two agree on every pattern.
#[test]
fn steady_state_disk_mines_read_only_the_slide() {
    let window = 3usize;
    let mut eager = build(
        Algorithm::DirectVertical,
        window,
        2,
        StorageBackend::DiskTemp,
        0,
        1,
    );
    let mut budgeted = build(
        Algorithm::DirectVertical,
        window,
        2,
        StorageBackend::DiskTemp,
        usize::MAX,
        1,
    );
    for id in 0..10u64 {
        let batch = Batch::from_transactions(
            id,
            vec![
                Transaction::from_raw([(id % 4) as u32, ((id + 1) % 4) as u32]),
                Transaction::from_raw([0u32, 1, 2]),
                Transaction::from_raw([((id + 2) % 5) as u32]),
            ],
        );
        // Rows the slide touches: the distinct edges of the entering batch.
        let slide_rows: std::collections::BTreeSet<u32> =
            batch.iter().flat_map(|t| t.iter().map(|e| e.0)).collect();
        eager.ingest_batch(&batch).unwrap();
        budgeted.ingest_batch(&batch).unwrap();
        let eager_result = eager.mine().unwrap();
        let budgeted_result = budgeted.mine().unwrap();

        assert!(
            eager_result.same_patterns_as(&budgeted_result),
            "mine #{id}: budgets must not change patterns"
        );
        assert_eq!(
            budgeted_result.stats().read_words_assembled,
            0,
            "mine #{id}: pinned-chunk mining must assemble nothing"
        );
        assert_eq!(
            budgeted_result.stats().rows_pinned,
            EDGES as u64,
            "mine #{id}: every row must be served from pinned chunks"
        );
        assert!(
            eager_result.stats().read_words_assembled > 0,
            "mine #{id}: budget 0 still pays the per-mine window assembly"
        );
        assert_eq!(eager_result.stats().rows_pinned, 0);
        assert_eq!(eager_result.stats().cache_hits, 0);
        assert!(
            eager_result.stats().pages_read > 0,
            "mine #{id}: the eager path reads the window from disk"
        );
        if id > 0 {
            // Steady state (cache warmed by the first mine): at most one
            // page per row the slide touched.
            assert!(
                budgeted_result.stats().pages_read <= slide_rows.len() as u64,
                "mine #{id}: {} pages > {} slide rows",
                budgeted_result.stats().pages_read,
                slide_rows.len()
            );
            assert!(
                eager_result.stats().pages_read > budgeted_result.stats().pages_read,
                "mine #{id}: budgeted mine must fetch fewer pages"
            );
            assert!(budgeted_result.stats().cache_hits > 0, "mine #{id}");
        }
    }
}
