//! A dense-dataset synthesizer matched to connect4's published statistics.
//!
//! The paper characterises connect4 as "a dense data set containing 67,557
//! records with an average transaction length of 43 items, and a domain of
//! 130 items".  The defaults below reproduce those dimensions (scaled-down
//! presets exist for unit tests); density — the property the DSTable-versus-
//! DSMatrix comparison hinges on — is achieved by giving every item a high
//! base probability plus strongly correlated item blocks, which also mimics
//! how board-position attributes co-occur.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fsm_types::{Batch, EdgeId, Transaction};

/// Configuration of the dense generator.
#[derive(Debug, Clone, Copy)]
pub struct DenseGenerator {
    /// Number of distinct items (connect4: 130).
    pub num_items: u32,
    /// Target average transaction length (connect4: 43).
    pub avg_transaction_len: f64,
    /// Number of correlated item blocks.
    pub num_blocks: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for DenseGenerator {
    fn default() -> Self {
        Self {
            num_items: 130,
            avg_transaction_len: 43.0,
            num_blocks: 8,
            seed: 21,
        }
    }
}

impl DenseGenerator {
    /// A scaled-down preset for unit tests and smoke benchmarks.
    pub fn small(seed: u64) -> Self {
        Self {
            num_items: 30,
            avg_transaction_len: 10.0,
            num_blocks: 4,
            seed,
        }
    }

    /// Generates `count` transactions.
    pub fn generate_transactions(&self, count: usize) -> Vec<Transaction> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.num_items.max(2) as usize;
        let blocks = self.num_blocks.max(1);
        let block_size = n.div_ceil(blocks);
        // Base inclusion probability chosen so the expected length matches the
        // target: half the mass comes from the base rate, half from blocks.
        let base_p = (self.avg_transaction_len / (2.0 * n as f64)).clamp(0.01, 0.95);
        let block_p = (self.avg_transaction_len / (2.0 * block_size as f64)).clamp(0.05, 0.95);

        (0..count)
            .map(|_| {
                let mut items = Vec::with_capacity(self.avg_transaction_len as usize + 8);
                // Independent base occurrences.
                for item in 0..n {
                    if rng.gen_bool(base_p) {
                        items.push(EdgeId::new(item as u32));
                    }
                }
                // One or two "active" correlated blocks per record.
                let active = 1 + usize::from(rng.gen_bool(0.5));
                for _ in 0..active {
                    let block = rng.gen_range(0..blocks);
                    let start = block * block_size;
                    let end = ((block + 1) * block_size).min(n);
                    for item in start..end {
                        if rng.gen_bool(block_p) {
                            items.push(EdgeId::new(item as u32));
                        }
                    }
                }
                Transaction::from_edges(items)
            })
            .collect()
    }

    /// Generates `num_batches` batches of `batch_size` transactions.
    pub fn generate_batches(&self, num_batches: usize, batch_size: usize) -> Vec<Batch> {
        let transactions = self.generate_transactions(num_batches * batch_size);
        transactions
            .chunks(batch_size.max(1))
            .enumerate()
            .map(|(id, chunk)| Batch::from_transactions(id as u64, chunk.to_vec()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_stream::StreamStats;

    #[test]
    fn small_preset_is_dense() {
        let generator = DenseGenerator::small(1);
        let batches = generator.generate_batches(2, 200);
        let mut stats = StreamStats::new();
        stats.observe_all(batches.iter());
        assert_eq!(stats.transactions(), 400);
        assert!(
            stats.density() > 0.15,
            "dense preset should be dense, got {}",
            stats.density()
        );
    }

    #[test]
    fn default_preset_matches_connect4_shape_on_a_sample() {
        let generator = DenseGenerator::default();
        let sample = generator.generate_transactions(300);
        let avg: f64 = sample.iter().map(|t| t.len() as f64).sum::<f64>() / 300.0;
        assert!(
            (avg - 43.0).abs() < 12.0,
            "average transaction length {avg} should be near 43"
        );
        assert!(sample.iter().all(|t| t.iter().all(|e| e.index() < 130)));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = DenseGenerator::small(5).generate_transactions(50);
        let b = DenseGenerator::small(5).generate_transactions(50);
        let c = DenseGenerator::small(6).generate_transactions(50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn batch_chunking_is_exact() {
        let batches = DenseGenerator::small(2).generate_batches(3, 10);
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|b| b.len() == 10));
        assert_eq!(batches[2].id, 2);
    }
}
