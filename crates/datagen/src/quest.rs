//! An IBM Quest-style synthetic transaction generator.
//!
//! The original Quest generator is parameterised by the number of
//! transactions `D`, the average transaction size `T`, the average size `I`
//! of maximal potentially-frequent itemsets, the number `L` of such patterns
//! and the number of items `N`.  Transactions are assembled from the pattern
//! pool with per-pattern weights and a corruption level, which is what gives
//! the data its characteristic clustered co-occurrence.  This reimplementation
//! follows that recipe closely enough to reproduce the workload *shape* the
//! paper's "IBM synthetic data" experiments rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fsm_types::{Batch, EdgeId, Transaction};

/// Parameters of the Quest-style generator (names follow the original tool).
#[derive(Debug, Clone, Copy)]
pub struct QuestConfig {
    /// Number of distinct items (`N`).
    pub num_items: u32,
    /// Average transaction size (`T`).
    pub avg_transaction_len: f64,
    /// Average pattern size (`I`).
    pub avg_pattern_len: f64,
    /// Number of potential patterns (`L`).
    pub num_patterns: usize,
    /// Probability that an item of a chosen pattern is dropped (corruption).
    pub corruption: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for QuestConfig {
    fn default() -> Self {
        Self {
            num_items: 100,
            avg_transaction_len: 10.0,
            avg_pattern_len: 4.0,
            num_patterns: 50,
            corruption: 0.25,
            seed: 13,
        }
    }
}

/// The generator itself.
#[derive(Debug, Clone)]
pub struct QuestGenerator {
    config: QuestConfig,
    patterns: Vec<Vec<EdgeId>>,
    pattern_weights: Vec<f64>,
    rng: StdRng,
    next_batch_id: u64,
}

impl QuestGenerator {
    /// Creates a generator, materialising the pattern pool.
    pub fn new(config: QuestConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = config.num_items.max(2);
        let mut patterns = Vec::with_capacity(config.num_patterns.max(1));
        for _ in 0..config.num_patterns.max(1) {
            let len = sample_around(&mut rng, config.avg_pattern_len).clamp(1, n as usize);
            let mut items: Vec<EdgeId> = Vec::with_capacity(len);
            while items.len() < len {
                let item = EdgeId::new(rng.gen_range(0..n));
                if !items.contains(&item) {
                    items.push(item);
                }
            }
            items.sort_unstable();
            patterns.push(items);
        }
        // Exponentially decaying pattern weights, as in the original tool.
        let pattern_weights: Vec<f64> = (0..patterns.len())
            .map(|i| (-(i as f64) / (patterns.len() as f64 / 4.0 + 1.0)).exp())
            .collect();
        Self {
            config,
            patterns,
            pattern_weights,
            rng,
            next_batch_id: 0,
        }
    }

    /// The pattern pool (exposed for tests and workload characterisation).
    pub fn patterns(&self) -> &[Vec<EdgeId>] {
        &self.patterns
    }

    /// Generates one transaction.
    pub fn next_transaction(&mut self) -> Transaction {
        let n = self.config.num_items.max(2);
        let target =
            sample_around(&mut self.rng, self.config.avg_transaction_len).clamp(1, n as usize);
        let mut items: Vec<EdgeId> = Vec::with_capacity(target);
        let total_weight: f64 = self.pattern_weights.iter().sum();
        while items.len() < target {
            // Pick a pattern by weight.
            let mut ticket = self.rng.gen_range(0.0..total_weight);
            let mut chosen = 0;
            for (i, w) in self.pattern_weights.iter().enumerate() {
                if ticket < *w {
                    chosen = i;
                    break;
                }
                ticket -= w;
            }
            for &item in &self.patterns[chosen] {
                if items.len() >= target {
                    break;
                }
                if self.rng.gen_bool(self.config.corruption.clamp(0.0, 0.99)) {
                    continue;
                }
                if !items.contains(&item) {
                    items.push(item);
                }
            }
            // Occasionally add random noise items so closed patterns do not
            // dominate completely.
            if self.rng.gen_bool(0.1) && items.len() < target {
                let noise = EdgeId::new(self.rng.gen_range(0..n));
                if !items.contains(&noise) {
                    items.push(noise);
                }
            }
        }
        Transaction::from_edges(items)
    }

    /// Generates `count` transactions.
    pub fn generate_transactions(&mut self, count: usize) -> Vec<Transaction> {
        (0..count).map(|_| self.next_transaction()).collect()
    }

    /// Generates `num_batches` batches of `batch_size` transactions.
    pub fn generate_batches(&mut self, num_batches: usize, batch_size: usize) -> Vec<Batch> {
        (0..num_batches)
            .map(|_| {
                let transactions = self.generate_transactions(batch_size.max(1));
                let batch = Batch::from_transactions(self.next_batch_id, transactions);
                self.next_batch_id += 1;
                batch
            })
            .collect()
    }
}

fn sample_around(rng: &mut StdRng, avg: f64) -> usize {
    let avg = avg.max(1.0);
    rng.gen_range((avg * 0.5).max(1.0)..(avg * 1.5 + 1.0))
        .round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_stream::StreamStats;

    #[test]
    fn transaction_lengths_track_the_configured_average() {
        let mut generator = QuestGenerator::new(QuestConfig {
            num_items: 200,
            avg_transaction_len: 12.0,
            ..QuestConfig::default()
        });
        let transactions = generator.generate_transactions(500);
        let avg: f64 = transactions.iter().map(|t| t.len() as f64).sum::<f64>() / 500.0;
        assert!(
            (avg - 12.0).abs() < 3.0,
            "average length {avg} too far from the target 12"
        );
        assert!(transactions
            .iter()
            .all(|t| t.iter().all(|e| e.index() < 200)));
    }

    #[test]
    fn batches_have_ids_and_stats_make_sense() {
        let mut generator = QuestGenerator::new(QuestConfig::default());
        let batches = generator.generate_batches(3, 100);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[2].id, 2);
        let mut stats = StreamStats::new();
        stats.observe_all(batches.iter());
        assert_eq!(stats.transactions(), 300);
        assert!(stats.distinct_edges() > 10);
        assert!(stats.density() < 0.5, "Quest data is sparse");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = QuestGenerator::new(QuestConfig::default()).generate_transactions(50);
        let b = QuestGenerator::new(QuestConfig::default()).generate_transactions(50);
        assert_eq!(a, b);
        let c = QuestGenerator::new(QuestConfig {
            seed: 99,
            ..QuestConfig::default()
        })
        .generate_transactions(50);
        assert_ne!(a, c);
    }

    #[test]
    fn pattern_pool_respects_configuration() {
        let generator = QuestGenerator::new(QuestConfig {
            num_patterns: 10,
            avg_pattern_len: 3.0,
            ..QuestConfig::default()
        });
        assert_eq!(generator.patterns().len(), 10);
        assert!(generator.patterns().iter().all(|p| !p.is_empty()));
    }
}
