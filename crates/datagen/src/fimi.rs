//! Reading and writing the FIMI transaction format.
//!
//! The Frequent Itemset Mining Implementations repository distributes
//! datasets as plain text: one transaction per line, items as space-separated
//! non-negative integers.  The paper draws several of its workloads from that
//! repository, so the harness reads and writes the same format.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use fsm_types::{FsmError, Result, Transaction};

/// Parses FIMI-format text into transactions.
pub fn parse_fimi(text: &str) -> Result<Vec<Transaction>> {
    let mut out = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut items = Vec::new();
        for token in line.split_whitespace() {
            let item: u32 = token.parse().map_err(|_| {
                FsmError::parse_at(number + 1, format!("'{token}' is not an item id"))
            })?;
            items.push(item);
        }
        out.push(Transaction::from_raw(items));
    }
    Ok(out)
}

/// Reads a FIMI file from disk.
pub fn read_fimi(path: impl AsRef<Path>) -> Result<Vec<Transaction>> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut out = Vec::new();
    for (number, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut items = Vec::new();
        for token in line.split_whitespace() {
            let item: u32 = token.parse().map_err(|_| {
                FsmError::parse_at(number + 1, format!("'{token}' is not an item id"))
            })?;
            items.push(item);
        }
        out.push(Transaction::from_raw(items));
    }
    Ok(out)
}

/// Writes transactions to disk in FIMI format.
pub fn write_fimi(path: impl AsRef<Path>, transactions: &[Transaction]) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = BufWriter::new(file);
    for t in transactions {
        let mut first = true;
        for edge in t.iter() {
            if !first {
                write!(writer, " ")?;
            }
            write!(writer, "{}", edge.0)?;
            first = false;
        }
        writeln!(writer)?;
    }
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_storage::TempDir;

    #[test]
    fn parses_lines_and_skips_comments() {
        let text = "# header\n1 5 3\n\n2 2 7\n";
        let transactions = parse_fimi(text).unwrap();
        assert_eq!(transactions.len(), 2);
        assert_eq!(transactions[0].to_string(), "{b,d,f}");
        assert_eq!(transactions[1].len(), 2, "duplicates collapse");
    }

    #[test]
    fn rejects_non_numeric_items() {
        let err = parse_fimi("1 x 3").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = TempDir::new("fimi").unwrap();
        let path = dir.file("data.dat");
        let original = vec![
            Transaction::from_raw([3, 1, 2]),
            Transaction::from_raw([9]),
            Transaction::new(),
        ];
        write_fimi(&path, &original).unwrap();
        let back = read_fimi(&path).unwrap();
        // The empty transaction becomes an empty line which is skipped.
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], original[0]);
        assert_eq!(back[1], original[1]);
        assert!(read_fimi(dir.file("missing.dat")).is_err());
    }
}
