//! Generating streams of graph transactions from a graph model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fsm_types::{Batch, EdgeId, Transaction};

use crate::model::GraphModel;

/// Configuration of a generated graph stream.
#[derive(Debug, Clone, Copy)]
pub struct GraphStreamConfig {
    /// Average number of edges per streamed graph (transaction).
    pub avg_edges_per_graph: f64,
    /// Probability that each additional edge is drawn from the neighbourhood
    /// of the edges already in the transaction (0 = independent edges, 1 =
    /// strongly connected transactions).  Connected co-occurrence is what the
    /// connected-subgraph miners are supposed to find, so the experiments
    /// sweep this.
    pub locality: f64,
    /// Number of transactions per batch (the paper uses 6 000).
    pub batch_size: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for GraphStreamConfig {
    fn default() -> Self {
        Self {
            avg_edges_per_graph: 6.0,
            locality: 0.7,
            batch_size: 1000,
            seed: 7,
        }
    }
}

/// Samples transactions (streamed graphs) from a [`GraphModel`].
#[derive(Debug, Clone)]
pub struct GraphStreamGenerator {
    model: GraphModel,
    config: GraphStreamConfig,
    rng: StdRng,
    cumulative: Vec<f64>,
    next_batch_id: u64,
}

impl GraphStreamGenerator {
    /// Creates a generator over `model`.
    pub fn new(model: GraphModel, config: GraphStreamConfig) -> Self {
        let mut cumulative = Vec::with_capacity(model.weights().len());
        let mut acc = 0.0;
        for w in model.weights() {
            acc += w;
            cumulative.push(acc);
        }
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            model,
            config,
            rng,
            cumulative,
            next_batch_id: 0,
        }
    }

    /// The model the stream is drawn from.
    pub fn model(&self) -> &GraphModel {
        &self.model
    }

    /// Generates one transaction.
    pub fn next_transaction(&mut self) -> Transaction {
        let m = self.model.catalog().num_edges();
        if m == 0 {
            return Transaction::new();
        }
        // Transaction size: 1 + Poisson-ish around the configured average,
        // approximated with a geometric accumulation to avoid heavy deps.
        let target = self.sample_size();
        let mut edges: Vec<EdgeId> = vec![self.sample_global_edge()];
        while edges.len() < target && edges.len() < m {
            let from_neighborhood = self.rng.gen_bool(self.config.locality.clamp(0.0, 1.0));
            let candidate = if from_neighborhood {
                self.sample_neighbor(&edges)
            } else {
                None
            };
            let edge = candidate.unwrap_or_else(|| self.sample_global_edge());
            if !edges.contains(&edge) {
                edges.push(edge);
            } else {
                // Duplicate draw: fall back to a fresh global sample to keep
                // progress on dense targets.
                let fresh = self.sample_global_edge();
                if !edges.contains(&fresh) {
                    edges.push(fresh);
                }
            }
        }
        Transaction::from_edges(edges)
    }

    /// Generates one batch of the configured size.
    pub fn next_batch(&mut self) -> Batch {
        let transactions = (0..self.config.batch_size.max(1))
            .map(|_| self.next_transaction())
            .collect();
        let batch = Batch::from_transactions(self.next_batch_id, transactions);
        self.next_batch_id += 1;
        batch
    }

    /// Generates a whole stream of `num_batches` batches.
    pub fn generate_batches(&mut self, num_batches: usize) -> Vec<Batch> {
        (0..num_batches).map(|_| self.next_batch()).collect()
    }

    fn sample_size(&mut self) -> usize {
        let avg = self.config.avg_edges_per_graph.max(1.0);
        // Uniform in [avg/2, 3*avg/2] keeps the mean at `avg` without heavy
        // tails that would blow up subset enumeration in tests.
        let low = (avg / 2.0).max(1.0);
        let high = (avg * 1.5).max(low + 1.0);
        self.rng.gen_range(low..high).round() as usize
    }

    fn sample_global_edge(&mut self) -> EdgeId {
        let total = *self.cumulative.last().expect("non-empty model");
        let ticket = self.rng.gen_range(0.0..total);
        let idx = match self
            .cumulative
            .binary_search_by(|probe| probe.partial_cmp(&ticket).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i,
        };
        EdgeId::new(idx.min(self.cumulative.len() - 1) as u32)
    }

    fn sample_neighbor(&mut self, edges: &[EdgeId]) -> Option<EdgeId> {
        let catalog = self.model.catalog();
        let anchor = edges[self.rng.gen_range(0..edges.len())];
        let neighbors = catalog.neighbors(anchor).ok()?;
        if neighbors.is_empty() {
            return None;
        }
        Some(neighbors[self.rng.gen_range(0..neighbors.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GraphModel, GraphModelConfig};

    fn generator(locality: f64, seed: u64) -> GraphStreamGenerator {
        let model = GraphModel::generate(GraphModelConfig {
            num_vertices: 12,
            avg_fanout: 4.0,
            seed,
            ..GraphModelConfig::default()
        });
        GraphStreamGenerator::new(
            model,
            GraphStreamConfig {
                avg_edges_per_graph: 4.0,
                locality,
                batch_size: 50,
                seed,
            },
        )
    }

    #[test]
    fn transactions_have_reasonable_sizes_and_valid_edges() {
        let mut generator = generator(0.5, 3);
        let m = generator.model().catalog().num_edges();
        for _ in 0..200 {
            let t = generator.next_transaction();
            assert!(!t.is_empty());
            assert!(t.len() <= m);
            assert!(t.iter().all(|e| e.index() < m));
        }
    }

    #[test]
    fn batches_carry_sequential_ids_and_configured_sizes() {
        let mut generator = generator(0.5, 4);
        let batches = generator.generate_batches(3);
        assert_eq!(batches.len(), 3);
        for (i, b) in batches.iter().enumerate() {
            assert_eq!(b.id, i as u64);
            assert_eq!(b.len(), 50);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Vec<Transaction> = {
            let mut generator = generator(0.7, 11);
            (0..20).map(|_| generator.next_transaction()).collect()
        };
        let b: Vec<Transaction> = {
            let mut generator = generator(0.7, 11);
            (0..20).map(|_| generator.next_transaction()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn high_locality_yields_more_connected_transactions() {
        let connected_fraction = |locality: f64| {
            let mut generator = generator(locality, 5);
            let catalog = generator.model().catalog().clone();
            let mut connected = 0;
            let total = 300;
            for _ in 0..total {
                let t = generator.next_transaction();
                let set = fsm_types::EdgeSet::from_edges(t.iter());
                if set.is_connected(&catalog) {
                    connected += 1;
                }
            }
            connected as f64 / total as f64
        };
        let low = connected_fraction(0.0);
        let high = connected_fraction(1.0);
        assert!(
            high > low,
            "locality should increase connectedness (low {low}, high {high})"
        );
    }
}
