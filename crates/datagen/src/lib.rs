//! Workload generators for the experimental evaluation.
//!
//! The paper's evaluation (§5) draws its streams from three places, none of
//! which can be redistributed here, so each is substituted with a synthetic
//! generator that preserves the property the experiments depend on (see
//! DESIGN.md §2 for the substitution table):
//!
//! * a Java-based **random graph model** generator with knobs for topology,
//!   average fan-out and edge centrality → [`model::GraphModel`] and
//!   [`stream::GraphStreamGenerator`];
//! * **IBM synthetic data** (the Quest generator) → [`quest::QuestGenerator`];
//! * **connect4** and other dense FIMI datasets → [`dense::DenseGenerator`],
//!   matched to connect4's published statistics, plus a [`fimi`] reader and
//!   writer for the interchange format;
//! * linked-data streams → [`rdf::RdfStreamGenerator`], which emits N-Triples
//!   style statements derived from a graph model.
//!
//! Every generator is seeded explicitly so experiments are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod fimi;
pub mod model;
pub mod quest;
pub mod rdf;
pub mod stream;

pub use dense::DenseGenerator;
pub use fimi::{read_fimi, write_fimi};
pub use model::{GraphModel, GraphModelConfig, Topology};
pub use quest::{QuestConfig, QuestGenerator};
pub use rdf::RdfStreamGenerator;
pub use stream::{GraphStreamConfig, GraphStreamGenerator};
