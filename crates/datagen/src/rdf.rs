//! Generating synthetic linked-data (RDF) streams.
//!
//! The paper motivates its graph streams as semantic-web updates: documents,
//! blog posts and profiles linking to one another at high velocity.  This
//! generator emits a triple stream over a graph model's vertex universe —
//! resources get URIs, each streamed graph becomes a burst of `links-to`
//! triples, and attribute triples with literal objects are sprinkled in so the
//! adapter's literal filtering is exercised end to end.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fsm_linked_data::{Iri, Term, Triple};
use fsm_types::GraphSnapshot;

use crate::model::GraphModel;
use crate::stream::{GraphStreamConfig, GraphStreamGenerator};

/// Generates a stream of RDF triples whose linkage structure follows a graph
/// model.
#[derive(Debug, Clone)]
pub struct RdfStreamGenerator {
    stream: GraphStreamGenerator,
    namespace: String,
    attribute_rate: f64,
    rng: StdRng,
}

impl RdfStreamGenerator {
    /// Creates a generator over `model`.
    ///
    /// `attribute_rate` is the fraction of additional literal-object triples
    /// (attribute updates) interleaved with the linkage triples.
    pub fn new(
        model: GraphModel,
        config: GraphStreamConfig,
        namespace: impl Into<String>,
        attribute_rate: f64,
    ) -> Self {
        let seed = config.seed;
        Self {
            stream: GraphStreamGenerator::new(model, config),
            namespace: namespace.into(),
            attribute_rate: attribute_rate.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed.wrapping_add(0x5eed)),
        }
    }

    /// URI of a vertex resource.
    pub fn resource_iri(&self, vertex: u32) -> Iri {
        Iri::new(format!("{}/resource/{vertex}", self.namespace)).expect("valid namespace IRI")
    }

    /// The `links-to` predicate used for linkage triples.
    pub fn links_predicate(&self) -> Iri {
        Iri::new(format!("{}/linksTo", self.namespace)).expect("valid namespace IRI")
    }

    /// Generates the triples describing the next streamed graph, together with
    /// the underlying snapshot (so tests can check the correspondence).
    pub fn next_event(&mut self) -> (GraphSnapshot, Vec<Triple>) {
        let transaction = self.stream.next_transaction();
        let catalog = self.stream.model().catalog();
        let mut snapshot = GraphSnapshot::new();
        let mut triples = Vec::new();
        for edge in transaction.iter() {
            if let Ok((u, v)) = catalog.endpoints(edge) {
                snapshot.add_edge(u, v);
                triples.push(
                    Triple::new(
                        Term::Iri(self.resource_iri(u.0)),
                        self.links_predicate(),
                        Term::Iri(self.resource_iri(v.0)),
                    )
                    .expect("IRI subject"),
                );
                if self.rng.gen_bool(self.attribute_rate) {
                    triples.push(
                        Triple::new(
                            Term::Iri(self.resource_iri(u.0)),
                            Iri::new(format!("{}/updatedAt", self.namespace)).expect("valid IRI"),
                            Term::literal(format!("t{}", self.rng.gen_range(0..1_000_000))),
                        )
                        .expect("IRI subject"),
                    );
                }
            }
        }
        (snapshot, triples)
    }

    /// Generates a stream of `count` events, returning the flat triple list.
    pub fn generate_triples(&mut self, count: usize) -> Vec<Triple> {
        (0..count).flat_map(|_| self.next_event().1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GraphModel, GraphModelConfig};
    use fsm_linked_data::{ntriples, GroupingStrategy, TripleStreamAdapter};

    fn generator(attribute_rate: f64) -> RdfStreamGenerator {
        let model = GraphModel::generate(GraphModelConfig {
            num_vertices: 8,
            avg_fanout: 3.0,
            seed: 17,
            ..GraphModelConfig::default()
        });
        RdfStreamGenerator::new(
            model,
            GraphStreamConfig {
                avg_edges_per_graph: 3.0,
                locality: 0.8,
                batch_size: 10,
                seed: 17,
            },
            "http://example.org",
            attribute_rate,
        )
    }

    #[test]
    fn events_produce_matching_snapshots_and_triples() {
        let mut generator = generator(0.0);
        for _ in 0..20 {
            let (snapshot, triples) = generator.next_event();
            assert_eq!(snapshot.num_edges(), triples.len());
            assert!(triples.iter().all(Triple::links_resources));
        }
    }

    #[test]
    fn attribute_triples_are_interleaved_and_filtered_by_the_adapter() {
        let mut generator = generator(0.5);
        let triples = generator.generate_triples(30);
        let literal_count = triples.iter().filter(|t| !t.links_resources()).count();
        assert!(literal_count > 0, "some attribute triples expected");

        let mut adapter = TripleStreamAdapter::new(GroupingStrategy::FixedSize(3));
        let snapshots = adapter.convert(&triples);
        assert!(!snapshots.is_empty());
        assert_eq!(adapter.skipped_literals(), literal_count);
    }

    #[test]
    fn triples_serialise_as_valid_ntriples() {
        let mut generator = generator(0.3);
        let triples = generator.generate_triples(10);
        let document = ntriples::serialize(&triples);
        let reparsed = ntriples::parse(&document).unwrap();
        assert_eq!(reparsed.len(), triples.len());
    }
}
