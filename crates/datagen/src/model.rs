//! Random graph models: the edge vocabulary streams are drawn from.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use fsm_types::{EdgeCatalog, EdgeId, VertexId};

/// Topology of the generated model, mirroring the "model parameters (e.g.,
/// topology, average fan-out of nodes, edge centrality)" the paper varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Edges drawn uniformly at random between vertex pairs.
    #[default]
    Uniform,
    /// New edges prefer vertices that already have many edges (scale-free
    /// hubs, as in citation or social networks).
    PreferentialAttachment,
    /// A ring lattice with random chords (small-world style).
    SmallWorld,
}

/// Configuration of a random graph model.
#[derive(Debug, Clone, Copy)]
pub struct GraphModelConfig {
    /// Number of vertices in the universe.
    pub num_vertices: u32,
    /// Average number of incident edges per vertex (fan-out).
    pub avg_fanout: f64,
    /// Topology of the edge set.
    pub topology: Topology,
    /// Skew of edge centrality: 0.0 gives every edge the same sampling
    /// weight; larger values concentrate transaction mass on a few central
    /// edges (Zipf-like).
    pub centrality_skew: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for GraphModelConfig {
    fn default() -> Self {
        Self {
            num_vertices: 20,
            avg_fanout: 4.0,
            topology: Topology::Uniform,
            centrality_skew: 1.0,
            seed: 42,
        }
    }
}

/// A randomly generated graph model: a fixed edge vocabulary over a vertex
/// universe plus per-edge sampling weights (edge centrality).
#[derive(Debug, Clone)]
pub struct GraphModel {
    catalog: EdgeCatalog,
    weights: Vec<f64>,
    config: GraphModelConfig,
}

impl GraphModel {
    /// Generates a model from the configuration.
    pub fn generate(config: GraphModelConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = config.num_vertices.max(2);
        let target_edges = ((n as f64 * config.avg_fanout) / 2.0).ceil() as usize;
        let max_edges = (n as usize * (n as usize - 1)) / 2;
        let target_edges = target_edges.clamp(1, max_edges);

        let mut catalog = EdgeCatalog::new();
        match config.topology {
            Topology::Uniform => {
                let mut pairs: Vec<(u32, u32)> = (1..=n)
                    .flat_map(|u| ((u + 1)..=n).map(move |v| (u, v)))
                    .collect();
                pairs.shuffle(&mut rng);
                for &(u, v) in pairs.iter().take(target_edges) {
                    catalog.intern(VertexId::new(u), VertexId::new(v));
                }
            }
            Topology::PreferentialAttachment => {
                // Start from a small seed clique, then attach edges favouring
                // high-degree endpoints.
                let mut degree = vec![0usize; n as usize + 1];
                for u in 1..=3.min(n) {
                    for v in (u + 1)..=3.min(n) {
                        catalog.intern(VertexId::new(u), VertexId::new(v));
                        degree[u as usize] += 1;
                        degree[v as usize] += 1;
                    }
                }
                while catalog.num_edges() < target_edges {
                    let u = rng.gen_range(1..=n);
                    // Pick the other endpoint proportionally to degree + 1.
                    let total: usize = degree.iter().sum::<usize>() + n as usize;
                    let mut ticket = rng.gen_range(0..total);
                    let mut v = 1;
                    for (vertex, &deg) in degree.iter().enumerate().skip(1) {
                        let share = deg + 1;
                        if ticket < share {
                            v = vertex as u32;
                            break;
                        }
                        ticket -= share;
                    }
                    if u == v {
                        continue;
                    }
                    let before = catalog.num_edges();
                    catalog.intern(VertexId::new(u), VertexId::new(v));
                    if catalog.num_edges() > before {
                        degree[u as usize] += 1;
                        degree[v as usize] += 1;
                    }
                }
            }
            Topology::SmallWorld => {
                // Ring lattice...
                for u in 1..=n {
                    let v = if u == n { 1 } else { u + 1 };
                    catalog.intern(VertexId::new(u), VertexId::new(v));
                }
                // ...plus random chords up to the target edge count.
                while catalog.num_edges() < target_edges {
                    let u = rng.gen_range(1..=n);
                    let v = rng.gen_range(1..=n);
                    if u != v {
                        catalog.intern(VertexId::new(u), VertexId::new(v));
                    }
                }
            }
        }

        // Edge centrality: Zipf-like weights over a random permutation of the
        // edges so that "central" edges are spread across the graph.
        let m = catalog.num_edges();
        let mut order: Vec<usize> = (0..m).collect();
        order.shuffle(&mut rng);
        let mut weights = vec![0.0; m];
        for (rank, &edge) in order.iter().enumerate() {
            weights[edge] = 1.0 / ((rank + 1) as f64).powf(config.centrality_skew.max(0.0));
        }

        Self {
            catalog,
            weights,
            config,
        }
    }

    /// The edge vocabulary of the model.
    pub fn catalog(&self) -> &EdgeCatalog {
        &self.catalog
    }

    /// Per-edge sampling weights (same indexing as the catalog).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Sampling weight of one edge.
    pub fn weight_of(&self, edge: EdgeId) -> f64 {
        self.weights.get(edge.index()).copied().unwrap_or(0.0)
    }

    /// The configuration the model was generated from.
    pub fn config(&self) -> &GraphModelConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_model_hits_the_target_edge_count() {
        let model = GraphModel::generate(GraphModelConfig {
            num_vertices: 10,
            avg_fanout: 3.0,
            ..GraphModelConfig::default()
        });
        assert_eq!(model.catalog().num_edges(), 15);
        assert_eq!(model.weights().len(), 15);
        assert!(model.weights().iter().all(|w| *w > 0.0));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = GraphModelConfig {
            num_vertices: 12,
            seed: 7,
            ..GraphModelConfig::default()
        };
        let a = GraphModel::generate(config);
        let b = GraphModel::generate(config);
        assert_eq!(a.catalog().num_edges(), b.catalog().num_edges());
        assert_eq!(a.weights(), b.weights());
        let c = GraphModel::generate(GraphModelConfig { seed: 8, ..config });
        // A different seed gives a different edge set (with overwhelming
        // probability for this size).
        let same_edges = a
            .catalog()
            .iter()
            .zip(c.catalog().iter())
            .all(|(x, y)| x.endpoints() == y.endpoints());
        assert!(!same_edges || a.catalog().num_edges() != c.catalog().num_edges());
    }

    #[test]
    fn all_topologies_produce_connected_vocabularies_of_reasonable_size() {
        for topology in [
            Topology::Uniform,
            Topology::PreferentialAttachment,
            Topology::SmallWorld,
        ] {
            let model = GraphModel::generate(GraphModelConfig {
                num_vertices: 15,
                avg_fanout: 4.0,
                topology,
                ..GraphModelConfig::default()
            });
            assert!(
                model.catalog().num_edges() >= 15,
                "{topology:?} produced too few edges"
            );
            assert!(model.catalog().num_vertices() <= 15);
        }
    }

    #[test]
    fn centrality_skew_concentrates_weight() {
        let flat = GraphModel::generate(GraphModelConfig {
            centrality_skew: 0.0,
            ..GraphModelConfig::default()
        });
        let skewed = GraphModel::generate(GraphModelConfig {
            centrality_skew: 2.0,
            ..GraphModelConfig::default()
        });
        let spread = |weights: &[f64]| {
            let max = weights.iter().cloned().fold(f64::MIN, f64::max);
            let min = weights.iter().cloned().fold(f64::MAX, f64::min);
            max / min
        };
        assert!((spread(flat.weights()) - 1.0).abs() < 1e-9);
        assert!(spread(skewed.weights()) > 10.0);
    }

    #[test]
    fn degenerate_configurations_are_clamped() {
        let model = GraphModel::generate(GraphModelConfig {
            num_vertices: 2,
            avg_fanout: 100.0,
            ..GraphModelConfig::default()
        });
        assert_eq!(model.catalog().num_edges(), 1);
        assert_eq!(model.weight_of(EdgeId::new(0)), 1.0);
        assert_eq!(model.weight_of(EdgeId::new(5)), 0.0);
    }
}
