//! The DSMatrix: a disk-backed binary matrix capturing the sliding window.
//!
//! Each **row** represents one domain edge (item), each **column** one
//! transaction of the current window; entry `(x, t)` is `1` iff transaction
//! `t` contains edge `x`.  The matrix keeps one global boundary value per
//! batch so a window slide simply discards a prefix of every row and appends
//! the new batch's columns — no per-row bookkeeping, which is the advantage
//! over the DSTable the paper emphasises (§2.3).
//!
//! The matrix is "kept on the disk": by default rows live in a
//! [`fsm_storage::RowStore`] backed by a temporary file and are loaded one at
//! a time while mining, so the resident footprint during capture is only the
//! boundary bookkeeping.  An in-memory backend exists for tests and for the
//! storage ablation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;

pub use matrix::{DsMatrix, DsMatrixConfig};
