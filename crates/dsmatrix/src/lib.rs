//! The DSMatrix: a disk-backed binary matrix capturing the sliding window.
//!
//! Each **row** represents one domain edge (item), each **column** one
//! transaction of the current window; entry `(x, t)` is `1` iff transaction
//! `t` contains edge `x`.  The matrix keeps one global boundary value per
//! batch so a window slide simply discards the evicted batch's columns and
//! appends the new batch's columns — no per-row bookkeeping, which is the
//! advantage over the DSTable the paper emphasises (§2.3).
//!
//! # What this crate owns
//!
//! * [`DsMatrix`] — the capture structure itself: ingest batches, slide the
//!   window, read rows/columns, report memory.  Construction goes through
//!   [`DsMatrixConfig`] (window size, storage backend, expected domain).
//! * [`RowSnapshot`] / [`ProjectionScratch`] — an immutable, concurrently
//!   readable copy of the live window plus per-worker scratch space, which is
//!   how the parallel horizontal miners build per-pivot projected databases
//!   without contending on `&mut DsMatrix`.
//!
//! # Incremental capture
//!
//! Physically the rows live in a [`fsm_storage::SegmentedWindowStore`]: one
//! immutable segment per ingested batch, holding bit chunks only for the rows
//! the batch touches.  [`DsMatrix::ingest_batch`] therefore costs
//! `O(rows touched by the batch + evicted columns)` — it appends one segment
//! and, when the window is full, unlinks the oldest — instead of rewriting
//! every cell of every row as a flat-row layout would.  The
//! [`DsMatrix::capture_stats`] counters expose the words actually written so
//! tests and benchmarks can assert the bound.  Reads assemble flat
//! [`fsm_storage::BitVec`] rows on demand, so the mining algorithms see
//! exactly the paper's conceptual matrix.
//!
//! The matrix is "kept on the disk" by default: segments live in per-batch
//! paged files under a temporary directory and are loaded row-chunk at a time
//! while mining, so the resident footprint during capture is only the
//! boundary bookkeeping and the per-segment indexes.  An in-memory backend
//! exists for tests and for the storage ablation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
mod snapshot;

pub use fsm_storage::CaptureStats;
pub use matrix::{DsMatrix, DsMatrixConfig};
pub use snapshot::{ProjectedRows, ProjectionScratch, RowSnapshot};
