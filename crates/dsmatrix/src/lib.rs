//! The DSMatrix: a disk-backed binary matrix capturing the sliding window.
//!
//! Each **row** represents one domain edge (item), each **column** one
//! transaction of the current window; entry `(x, t)` is `1` iff transaction
//! `t` contains edge `x`.  The matrix keeps one global boundary value per
//! batch so a window slide simply discards the evicted batch's columns and
//! appends the new batch's columns — no per-row bookkeeping, which is the
//! advantage over the DSTable the paper emphasises (§2.3).
//!
//! # What this crate owns
//!
//! * [`DsMatrix`] — the capture structure itself: ingest batches, slide the
//!   window, read rows/columns, report memory.  Construction goes through
//!   [`DsMatrixConfig`] (window size, storage backend, expected domain).
//! * [`WindowView`] / [`ProjectionScratch`] — the miners' read surface: an
//!   immutable, concurrently-shareable view of the live window (zero-copy on
//!   the memory backend) plus per-worker scratch space, which is how the
//!   parallel miners read rows and build per-pivot projected databases
//!   without contending on `&mut DsMatrix`.
//! * [`EpochSnapshot`] — the owned, `Arc`-backed, `Send + Sync` snapshot of
//!   one window epoch ([`DsMatrix::snapshot_epoch`]): reader threads mine it
//!   while `ingest_batch` keeps sliding on the writer side, and its segment
//!   data is reclaimed when the last holder drops.
//! * [`RowSnapshot`] — the demoted eager copy: retained as the reference for
//!   the view's byte-identity tests and for callers that need an owned copy
//!   of the window outliving the matrix.
//!
//! # Incremental capture — and incremental reads
//!
//! Physically the rows live in a [`fsm_storage::SegmentedWindowStore`]: one
//! immutable segment per ingested batch, holding bit chunks only for the rows
//! the batch touches.  [`DsMatrix::ingest_batch`] therefore costs
//! `O(rows touched by the batch + evicted columns)` — it appends one segment
//! and, when the window is full, unlinks the oldest — instead of rewriting
//! every cell of every row as a flat-row layout would.  The
//! [`DsMatrix::capture_stats`] counters expose the words actually written so
//! tests and benchmarks can assert the bound.
//!
//! The *read* side is incremental too: on the memory backend the matrix
//! maintains a generation-tagged flat-row cache at ingest/evict time (splice
//! the entering chunk, lazily zero the evicted prefix, amortised
//! `drop_prefix` compaction) together with per-edge support counters, so
//! [`DsMatrix::view`] hands the miners a zero-copy [`WindowView`] and the
//! steady-state read cost of a mine call is proportional to the rows the
//! slide touched, not to the window.  [`DsMatrix::read_stats`] counts the
//! words the read path actually materialises, mirroring `capture_stats` on
//! the write side.
//!
//! The matrix is "kept on the disk" by default: segments live in per-batch
//! paged files under a temporary directory, the resident footprint during
//! capture is only the boundary bookkeeping, counters and per-segment
//! indexes, and [`DsMatrix::view`] falls back to assembling flat rows for
//! the duration of a mine call.  An in-memory backend serves the zero-copy
//! path, tests, and the storage ablation.
//!
//! # Durability
//!
//! With [`DsMatrixConfig::durability`] set (disk backends only), every
//! ingested batch is appended to a write-ahead log and `fsync`ed *before*
//! any state mutates, a [`fsm_storage::Checkpoint`] snapshots the window
//! metadata every K slides, and [`DsMatrix::recover`] rebuilds the exact
//! pre-crash window from the newest verifiable checkpoint plus the WAL
//! tail — see [`durable`] for the protocol and [`RecoveryReport`] for what
//! a recovery observed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
mod epoch;
mod matrix;
mod snapshot;
mod view;

pub use durable::{decode_batch, encode_batch, DurabilityConfig, RecoveryReport};
pub use epoch::EpochSnapshot;
pub use fsm_storage::CaptureStats;
pub use matrix::{DsMatrix, DsMatrixConfig, ReadStats};
pub use snapshot::{ProjectedRows, ProjectionScratch, RowSnapshot};
pub use view::WindowView;
