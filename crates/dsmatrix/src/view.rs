//! Zero-copy window views: the miners' read surface over the live window.
//!
//! [`WindowView`] replaces the eager [`crate::RowSnapshot`] as the default
//! read path of all five miners.  On the memory backend it *borrows* the
//! matrix's incrementally-maintained row cache — constructing a view copies
//! nothing, so the per-mine read cost is whatever the slide touched, not the
//! window size.  On the disk backends with a chunk-cache budget configured
//! the view serves rows straight out of **pinned decoded chunks**
//! ([`fsm_storage::SegmentedWindowStore::pin_row_chunks`]): each row becomes
//! a [`fsm_storage::ChunkedRow`] cursor over cache-resident chunks, so no
//! flat row is assembled at all; only rows whose chunks miss the budget fall
//! back to eager assembly into the matrix's cache buffers (and with a zero
//! budget every row does — the original fully-eager path, byte for byte).
//! Whatever mix results, the view API is identical: miners read rows as
//! [`RowRef`]s and never know which representation they got.
//!
//! # Alignment convention
//!
//! Cached rows may carry a **dead prefix** of `offset()` all-zero bits (lazy
//! eviction: a window slide zeroes the evicted chunk and defers the physical
//! [`fsm_storage::BitVec::drop_prefix`] until enough dead columns
//! accumulate) and may be **shorter** than `offset() + num_transactions()`
//! (rows untouched since their last set bit are not padded; missing tail
//! bits read as zero).  Both conventions are invisible to the mining
//! kernels:
//!
//! * every row shares the same `offset` (pinned chunked rows always have
//!   offset 0), so the fused AND kernels between rows — the vertical hot
//!   loop — see identical intersections bit for bit;
//! * [`WindowView::project_into`] translates set-bit positions back to
//!   logical window columns, producing output byte-identical to
//!   [`crate::RowSnapshot::project_into`];
//! * singleton supports come from counters the matrix maintains at
//!   ingest/evict time, not from row scans.

use fsm_storage::{BitVec, ChunkedRow, RowRef};
use fsm_types::{EdgeId, Support};

use crate::snapshot::{ProjectedRows, ProjectionScratch};

/// One row of a mixed-representation view (see [`WindowView`]).
#[derive(Debug, Clone)]
pub(crate) enum MixedRow<'a> {
    /// Eagerly-assembled flat fallback (chunks missed the pin budget).
    Flat(&'a BitVec),
    /// Borrowed cursor over chunks pinned in the decoded-chunk cache.
    Chunked(ChunkedRow<'a>),
}

#[derive(Debug, Clone)]
enum ViewRows<'a> {
    /// Every row is a flat [`BitVec`] in one shared slice (memory-backend
    /// row cache, or the fully-eager disk fallback).
    Flat(&'a [BitVec]),
    /// Per-row representations (the pinned disk read path).
    Mixed(Vec<MixedRow<'a>>),
}

/// An immutable, concurrently-shareable (`&self` everywhere, `Send + Sync`)
/// read surface over the live window.
///
/// Built by [`crate::DsMatrix::view`].  Zero-copy on the memory backend;
/// served from pinned cache chunks (with per-row eager fallback) on the
/// budgeted disk backends; assembled once per call at budget 0.
#[derive(Debug, Clone)]
pub struct WindowView<'a> {
    rows: ViewRows<'a>,
    supports: &'a [Support],
    /// Dead (all-zero) bits at the front of every row.
    offset: usize,
    num_cols: usize,
}

impl<'a> WindowView<'a> {
    pub(crate) fn new(
        rows: &'a [BitVec],
        supports: &'a [Support],
        offset: usize,
        num_cols: usize,
    ) -> Self {
        debug_assert_eq!(rows.len(), supports.len());
        debug_assert!(rows.iter().all(|r| r.len() <= offset + num_cols));
        Self {
            rows: ViewRows::Flat(rows),
            supports,
            offset,
            num_cols,
        }
    }

    pub(crate) fn new_mixed(
        rows: Vec<MixedRow<'a>>,
        supports: &'a [Support],
        num_cols: usize,
    ) -> Self {
        debug_assert_eq!(rows.len(), supports.len());
        debug_assert!(rows.iter().all(|row| match row {
            MixedRow::Flat(row) => row.len() <= num_cols,
            MixedRow::Chunked(row) => row.len() == num_cols,
        }));
        Self {
            rows: ViewRows::Mixed(rows),
            supports,
            offset: 0,
            num_cols,
        }
    }

    /// Number of rows (domain edges) visible.
    pub fn num_items(&self) -> usize {
        match &self.rows {
            ViewRows::Flat(rows) => rows.len(),
            ViewRows::Mixed(rows) => rows.len(),
        }
    }

    /// Number of columns (window transactions) visible.
    pub fn num_transactions(&self) -> usize {
        self.num_cols
    }

    /// Dead bits at the front of every row (see the module docs).  Logical
    /// window column `c` lives at bit `c + offset()` of every row.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The aligned row of `item`: bits `[offset(), offset() + c)` hold the
    /// window's first `c` columns, everything else is zero.
    ///
    /// All rows of one view share the same alignment, so intersecting two
    /// rows through the [`RowRef`] kernels yields exactly the flat-matrix
    /// intersection — this is what the vertical miners feed their hot loop,
    /// whether the row is a borrowed flat vector or a cursor over pinned
    /// chunks.
    pub fn row(&self, item: EdgeId) -> Option<RowRef<'_>> {
        self.row_at(item.index())
    }

    fn row_at(&self, idx: usize) -> Option<RowRef<'_>> {
        match &self.rows {
            ViewRows::Flat(rows) => rows.get(idx).map(RowRef::Flat),
            ViewRows::Mixed(rows) => rows.get(idx).map(|row| match row {
                MixedRow::Flat(row) => RowRef::Flat(row),
                MixedRow::Chunked(row) => RowRef::Chunked(row),
            }),
        }
    }

    /// The bit at logical window column `col` of `item`'s row (`false` out of
    /// range, matching the matrix convention).
    pub fn get(&self, item: EdgeId, col: usize) -> bool {
        if col >= self.num_cols {
            return false;
        }
        self.row(item).is_some_and(|row| row.get(col + self.offset))
    }

    /// Support of a single edge, from the matrix's ingest/evict-maintained
    /// counters (no row scan).
    pub fn support(&self, item: EdgeId) -> Support {
        self.supports.get(item.index()).copied().unwrap_or(0)
    }

    /// Supports of every edge in canonical order — the first step of all five
    /// algorithms.  Counter reads, no row scans.
    pub fn singleton_supports(&self) -> Vec<(EdgeId, Support)> {
        self.supports
            .iter()
            .enumerate()
            .map(|(idx, &support)| (EdgeId::new(idx as u32), support))
            .collect()
    }

    /// Heap bytes of the rows this view reads (the resident mining working
    /// set; on the memory backend — and for pinned chunked rows, whose
    /// chunks live in the budgeted cache — it is shared with the capture
    /// structures rather than copied per mine call).
    pub fn heap_bytes(&self) -> usize {
        match &self.rows {
            ViewRows::Flat(rows) => rows.iter().map(BitVec::heap_bytes).sum(),
            ViewRows::Mixed(rows) => rows
                .iter()
                .map(|row| match row {
                    MixedRow::Flat(row) => row.heap_bytes(),
                    MixedRow::Chunked(row) => row.heap_bytes(),
                })
                .sum(),
        }
    }

    /// Builds the `{pivot}`-projected database into `scratch` and returns a
    /// view of it: for every column whose pivot bit is `1`, the items
    /// strictly *after* the pivot in canonical order, with identical suffixes
    /// merged into weighted entries (Example 2 of the paper).
    ///
    /// Byte-identical to [`crate::RowSnapshot::project_into`] over the same
    /// window — property-tested in `tests/view_consistency.rs`.
    pub fn project_into<'s>(
        &self,
        pivot: EdgeId,
        scratch: &'s mut ProjectionScratch,
    ) -> &'s ProjectedRows {
        crate::snapshot::project_row_refs_into(
            self.num_items(),
            |idx| self.row_at(idx),
            self.offset,
            pivot,
            scratch,
        )
    }

    /// Convenience wrapper around [`WindowView::project_into`] that allocates
    /// its own scratch (tests, one-off callers).
    pub fn project(&self, pivot: EdgeId) -> ProjectedRows {
        let mut scratch = ProjectionScratch::new();
        self.project_into(pivot, &mut scratch).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(patterns: &[&str]) -> Vec<BitVec> {
        patterns
            .iter()
            .map(|r| BitVec::from_bools(r.chars().map(|c| c == '1')))
            .collect()
    }

    /// The paper's window E4..E9 (Example 1 after the slide), with a
    /// two-bit dead prefix and one lazily-short row to exercise the
    /// alignment conventions.
    fn paper_view() -> (Vec<BitVec>, Vec<Support>) {
        let rows = rows(&[
            "00111110", // a
            "00001001", // b
            "00101111", // c
            "00110011", // d
            "000100",   // e — short tail: trailing zeros not stored
            "00110110", // f
        ]);
        let supports = vec![5, 2, 5, 4, 1, 4];
        (rows, supports)
    }

    #[test]
    fn projection_matches_example_2_through_the_offset() {
        let (rows, supports) = paper_view();
        let view = WindowView::new(&rows, &supports, 2, 6);
        let db = view.project(EdgeId::new(0));
        let as_strings: Vec<(String, Support)> = db
            .iter()
            .map(|(items, c)| (items.iter().map(|e| e.symbol()).collect::<String>(), *c))
            .collect();
        assert!(as_strings.contains(&("cdf".to_string(), 2)));
        assert!(as_strings.contains(&("def".to_string(), 1)));
        assert!(as_strings.contains(&("bc".to_string(), 1)));
        assert!(as_strings.contains(&("cf".to_string(), 1)));
        let total: Support = db.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5);
        // Out-of-range pivots project to nothing.
        assert!(view.project(EdgeId::new(99)).is_empty());
    }

    #[test]
    fn supports_come_from_the_counters() {
        let (rows, supports) = paper_view();
        let view = WindowView::new(&rows, &supports, 2, 6);
        assert_eq!(view.num_items(), 6);
        assert_eq!(view.num_transactions(), 6);
        assert_eq!(view.support(EdgeId::new(0)), 5);
        assert_eq!(view.support(EdgeId::new(4)), 1);
        assert_eq!(view.support(EdgeId::new(40)), 0, "unknown rows are zero");
        let listed = view.singleton_supports();
        assert_eq!(listed.len(), 6);
        assert_eq!(listed[3], (EdgeId::new(3), 4));
    }

    #[test]
    fn get_translates_columns_and_handles_short_tails() {
        let (rows, supports) = paper_view();
        let view = WindowView::new(&rows, &supports, 2, 6);
        assert!(view.get(EdgeId::new(0), 0));
        assert!(!view.get(EdgeId::new(0), 5));
        // Row e is stored short; its missing tail reads as zero.
        assert!(view.get(EdgeId::new(4), 1));
        assert!(!view.get(EdgeId::new(4), 4));
        assert!(!view.get(EdgeId::new(4), 99), "past the window is false");
    }
}
