//! Eager row snapshots and reusable projection scratch space.
//!
//! [`RowSnapshot`] copies every live-window row into an immutable,
//! concurrently-readable block.  It used to be the only way the parallel
//! horizontal miners could share the window; since the zero-copy
//! [`crate::WindowView`] took over as the default read surface, the eager
//! snapshot is retained as (a) the reference the view's byte-identity tests
//! compare against and (b) an owned, `'static`-friendly copy for callers
//! that need the window to outlive the matrix.  [`ProjectionScratch`] is the
//! per-worker recycled buffer set both read surfaces project through, so
//! steady-state projection allocates nothing.

use fsm_storage::{BitVec, RowRef};
use fsm_types::{EdgeId, Support};

/// A weighted transaction list in canonical edge order — structurally the
/// same type as `fsm_fptree::ProjectedDb`, spelled out here so the capture
/// crate does not depend on the mining crate.
pub type ProjectedRows = Vec<(Vec<EdgeId>, Support)>;

/// An immutable copy of every live-window row, padded to a common length.
///
/// Built by [`crate::DsMatrix::snapshot`]; all access is `&self`, so a
/// snapshot can be shared across mining worker threads.
#[derive(Debug, Clone)]
pub struct RowSnapshot {
    rows: Vec<BitVec>,
    num_cols: usize,
}

impl RowSnapshot {
    pub(crate) fn new(rows: Vec<BitVec>, num_cols: usize) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == num_cols));
        Self { rows, num_cols }
    }

    /// Number of rows (domain edges) captured.
    pub fn num_items(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns (window transactions) captured.
    pub fn num_transactions(&self) -> usize {
        self.num_cols
    }

    /// The row of `item`, if the snapshot has one.
    pub fn row(&self, item: EdgeId) -> Option<&BitVec> {
        self.rows.get(item.index())
    }

    /// Heap bytes held by the materialised rows (for working-set accounting:
    /// a snapshot keeps the whole window resident while it is alive).
    pub fn heap_bytes(&self) -> usize {
        self.rows.iter().map(BitVec::heap_bytes).sum()
    }

    /// Supports of every row in canonical order (the row sums).
    pub fn singleton_supports(&self) -> Vec<(EdgeId, Support)> {
        self.rows
            .iter()
            .enumerate()
            .map(|(idx, row)| (EdgeId::new(idx as u32), row.count_ones()))
            .collect()
    }

    /// Builds the `{pivot}`-projected database into `scratch` and returns a
    /// view of it: for every column whose pivot bit is `1`, the items
    /// strictly *after* the pivot in canonical order, with identical suffixes
    /// merged into weighted entries (Example 2 of the paper).
    ///
    /// The output is identical to [`crate::DsMatrix::project`]; the
    /// difference is purely operational — `&self` access plus per-worker
    /// scratch reuse make it safe and cheap to call from a parallel fan-out.
    pub fn project_into<'a>(
        &self,
        pivot: EdgeId,
        scratch: &'a mut ProjectionScratch,
    ) -> &'a ProjectedRows {
        project_rows_into(&self.rows, 0, pivot, scratch)
    }

    /// Convenience wrapper around [`RowSnapshot::project_into`] that
    /// allocates its own scratch (tests, one-off callers).
    pub fn project(&self, pivot: EdgeId) -> ProjectedRows {
        let mut scratch = ProjectionScratch::new();
        self.project_into(pivot, &mut scratch);
        scratch.db
    }
}

/// Flat-slice entry point of the shared projection body (the eager
/// [`RowSnapshot::project_into`] case).
pub(crate) fn project_rows_into<'a>(
    rows: &[BitVec],
    offset: usize,
    pivot: EdgeId,
    scratch: &'a mut ProjectionScratch,
) -> &'a ProjectedRows {
    project_row_refs_into(
        rows.len(),
        |idx| rows.get(idx).map(RowRef::Flat),
        offset,
        pivot,
        scratch,
    )
}

/// The one projection implementation behind every read surface
/// ([`RowSnapshot::project_into`] and [`crate::WindowView::project_into`],
/// whatever representation the view serves its rows in): build the
/// `{pivot}`-projected database into `scratch`, reading row `i` through
/// `row_of(i)` and treating bit `c + offset` of every row as logical window
/// column `c` (the eager snapshot is exactly the `offset = 0` flat case).
///
/// Sharing the body is what makes the surfaces byte-identical by
/// construction rather than by parallel maintenance.
pub(crate) fn project_row_refs_into<'a, 'r>(
    num_items: usize,
    row_of: impl Fn(usize) -> Option<RowRef<'r>>,
    offset: usize,
    pivot: EdgeId,
    scratch: &'a mut ProjectionScratch,
) -> &'a ProjectedRows {
    scratch.reset();
    let Some(pivot_row) = row_of(pivot.index()) else {
        return &scratch.db;
    };
    // All set bits sit at or past the dead prefix, so the translation to
    // logical columns never underflows.
    scratch
        .columns
        .extend(pivot_row.iter_ones().map(|c| c - offset));
    if scratch.columns.is_empty() {
        return &scratch.db;
    }
    for _ in 0..scratch.columns.len() {
        let mut suffix = scratch.spare.pop().unwrap_or_default();
        suffix.clear();
        scratch.suffixes.push(suffix);
    }
    // suffixes[i] collects the items of window column columns[i]; the
    // row-major sweep appends items in ascending (canonical) order.
    for idx in pivot.index() + 1..num_items {
        let Some(row) = row_of(idx) else {
            continue;
        };
        for (slot, &col) in scratch.columns.iter().enumerate() {
            if row.get(col + offset) {
                scratch.suffixes[slot].push(EdgeId::new(idx as u32));
            }
        }
    }
    // Merge identical suffixes into weighted entries; emptied vectors go
    // back to the spare pool for the next pivot.
    scratch.suffixes.sort();
    for suffix in scratch.suffixes.drain(..) {
        if suffix.is_empty() {
            scratch.spare.push(suffix);
            continue;
        }
        match scratch.db.last_mut() {
            Some((prev, count)) if *prev == suffix => {
                *count += 1;
                scratch.spare.push(suffix);
            }
            _ => scratch.db.push((suffix, 1)),
        }
    }
    &scratch.db
}

/// Reusable buffers for building projected databases.
///
/// One instance per mining worker: the projected database of the previous
/// pivot is dismantled into a spare pool, so steady-state projection performs
/// no heap allocation.
#[derive(Debug, Default)]
pub struct ProjectionScratch {
    /// Window columns whose pivot bit is set.
    columns: Vec<usize>,
    /// One suffix per pivot column while a projection is being built.
    suffixes: Vec<Vec<EdgeId>>,
    /// The finished projected database of the current pivot.
    db: ProjectedRows,
    /// Recycled suffix vectors.
    spare: Vec<Vec<EdgeId>>,
}

impl ProjectionScratch {
    /// Creates empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self) {
        self.columns.clear();
        for (mut suffix, _) in self.db.drain(..) {
            suffix.clear();
            self.spare.push(suffix);
        }
        for mut suffix in self.suffixes.drain(..) {
            suffix.clear();
            self.spare.push(suffix);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(rows: &[&str]) -> RowSnapshot {
        let cols = rows.first().map(|r| r.len()).unwrap_or(0);
        RowSnapshot::new(
            rows.iter()
                .map(|r| BitVec::from_bools(r.chars().map(|c| c == '1')))
                .collect(),
            cols,
        )
    }

    /// The paper's window E4..E9 (Example 1 after the slide).
    fn paper_snapshot() -> RowSnapshot {
        snapshot(&[
            "111110", // a
            "001001", // b
            "101111", // c
            "110011", // d
            "010000", // e
            "110110", // f
        ])
    }

    #[test]
    fn projection_matches_example_2() {
        let snap = paper_snapshot();
        let db = snap.project(EdgeId::new(0));
        let as_strings: Vec<(String, Support)> = db
            .iter()
            .map(|(items, c)| (items.iter().map(|e| e.symbol()).collect::<String>(), *c))
            .collect();
        assert!(as_strings.contains(&("cdf".to_string(), 2)));
        assert!(as_strings.contains(&("def".to_string(), 1)));
        assert!(as_strings.contains(&("bc".to_string(), 1)));
        assert!(as_strings.contains(&("cf".to_string(), 1)));
        let total: Support = db.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn scratch_is_reusable_across_pivots() {
        let snap = paper_snapshot();
        let mut scratch = ProjectionScratch::new();
        // Projecting twice through the same scratch matches fresh projections.
        for pivot in 0..6u32 {
            let through_scratch = snap.project_into(EdgeId::new(pivot), &mut scratch).clone();
            assert_eq!(
                through_scratch,
                snap.project(EdgeId::new(pivot)),
                "pivot {pivot}"
            );
        }
        // Last edge projects to nothing; out-of-range pivots are empty too.
        assert!(snap.project(EdgeId::new(5)).is_empty());
        assert!(snap.project(EdgeId::new(99)).is_empty());
    }

    #[test]
    fn supports_match_example_5() {
        let snap = paper_snapshot();
        let supports = snap.singleton_supports();
        let expected = [5u64, 2, 5, 4, 1, 4];
        for (idx, &want) in expected.iter().enumerate() {
            assert_eq!(supports[idx].1, want, "support of row {idx}");
        }
        assert_eq!(snap.num_items(), 6);
        assert_eq!(snap.num_transactions(), 6);
    }
}
