//! Epoch snapshots: owned, `Send + Sync` snapshots of the window that
//! readers mine while the writer keeps ingesting.
//!
//! [`crate::WindowView`] borrows the matrix, so a view and an ingest are
//! mutually exclusive on one `DsMatrix`.  An [`EpochSnapshot`] removes that
//! exclusion: [`crate::DsMatrix::snapshot_epoch`] returns an owned,
//! `Arc`-backed snapshot — the immutable per-batch segments (shared as
//! [`Arc<EpochSegment>`] handles with the store), the frozen singleton
//! support counters, and the window geometry of one **epoch** (one store
//! generation) — that any number of reader threads can hold and mine while
//! `ingest_batch` keeps appending and sliding on the writer side.
//!
//! # Ownership and reclamation
//!
//! A snapshot owns `Arc` handles to decoded segment data, not chunk-cache
//! pins and not borrows of the matrix:
//!
//! * on the **memory backend** the handles alias the live store segments —
//!   taking a snapshot copies nothing but the support counters;
//! * on the **disk backends** each segment is decoded once into an
//!   [`EpochSegment`] and memoised on the live segment
//!   ([`fsm_storage::SegmentedWindowStore::epoch_segment`]), so consecutive
//!   snapshots of a sliding window pay only for the segment that entered.
//!
//! Either way the `Arc` *is* the per-epoch pin set: a window slide,
//! [`crate::DsMatrix::set_cache_budget`], or
//! [`fsm_storage::SegmentedWindowStore::release_pins`] cannot invalidate a
//! held snapshot, and a popped segment's data is freed exactly when the last
//! snapshot referencing it drops (plain `Arc` reclamation — no epoch
//! registry to leak).  Segment *files* are governed separately by the
//! durable deferred-GC protocol; snapshots never read files.
//!
//! Mining a snapshot goes through [`EpochSnapshot::view`], which serves the
//! same [`crate::WindowView`] surface the miners already consume — output is
//! byte-identical to a stop-the-world mine at the same epoch, property-tested
//! in `crates/core/tests/epoch_agreement.rs` under real concurrent slides.

use std::sync::Arc;

use fsm_storage::{ChunkedRow, EpochSegment};
use fsm_types::{BatchId, Support};

use crate::view::{MixedRow, WindowView};

/// An owned, immutable snapshot of one window epoch.
///
/// Built by [`crate::DsMatrix::snapshot_epoch`]; `Send + Sync`, so it can be
/// handed to another thread and mined there while the source matrix keeps
/// ingesting.  Two snapshots of the same epoch share their segment data (and
/// the matrix memoises the last one, so repeated calls without an intervening
/// ingest return the same `Arc`).
#[derive(Debug)]
pub struct EpochSnapshot {
    /// Store generation this snapshot froze (see
    /// [`fsm_storage::SegmentedWindowStore::generation`]).
    epoch: u64,
    /// Batches inside the window at the epoch.
    batches: usize,
    /// Newest batch id at the epoch (`None` for an empty window).
    last_batch_id: Option<BatchId>,
    /// The window's segments, oldest first, shared with the store (memory
    /// backend) or with its decode memo (disk backends).
    segments: Vec<Arc<EpochSegment>>,
    /// Frozen singleton supports: `supports[i]` is the popcount of item `i`'s
    /// window row at the epoch.
    supports: Vec<Support>,
    num_items: usize,
    num_cols: usize,
}

impl EpochSnapshot {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        epoch: u64,
        batches: usize,
        last_batch_id: Option<BatchId>,
        segments: Vec<Arc<EpochSegment>>,
        supports: Vec<Support>,
        num_items: usize,
        num_cols: usize,
    ) -> Self {
        debug_assert_eq!(supports.len(), num_items);
        debug_assert_eq!(segments.iter().map(|s| s.cols()).sum::<usize>(), num_cols);
        Self {
            epoch,
            batches,
            last_batch_id,
            segments,
            supports,
            num_items,
            num_cols,
        }
    }

    /// The store generation this snapshot froze — the epoch's identity.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of batches inside the window at the epoch.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Identifier of the newest batch at the epoch (`None` when the window
    /// was empty).  This is what an oracle replaying the same stream aligns
    /// on.
    pub fn last_batch_id(&self) -> Option<BatchId> {
        self.last_batch_id
    }

    /// Number of rows (domain edges) the snapshot covers.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of columns (window transactions) at the epoch.
    pub fn num_transactions(&self) -> usize {
        self.num_cols
    }

    /// The snapshot's segment handles, oldest first (exposed so lifecycle
    /// tests can hold [`std::sync::Weak`] probes on them).
    pub fn segments(&self) -> &[Arc<EpochSegment>] {
        &self.segments
    }

    /// Frozen support of one singleton at the epoch (`0` for items outside
    /// the snapshot's domain).
    pub fn singleton_support(&self, item: usize) -> Support {
        self.supports.get(item).copied().unwrap_or(0)
    }

    /// Per-segment column attribution: for each window segment, oldest
    /// first, its identity uid and the half-open column range it occupies in
    /// the epoch's concatenated window.
    ///
    /// Views built by [`EpochSnapshot::view`] always start at column 0 (no
    /// dead prefix, unlike live memory-backend views), so these ranges index
    /// snapshot-derived tidsets directly — this is what lets the delta miner
    /// split a pattern's support into per-segment contributions with
    /// [`fsm_storage::BitVec::count_range`].
    pub fn segment_col_ranges(&self) -> Vec<(u64, std::ops::Range<usize>)> {
        let mut start = 0usize;
        self.segments
            .iter()
            .map(|seg| {
                let range = start..start + seg.cols();
                start = range.end;
                (seg.uid(), range)
            })
            .collect()
    }

    /// Support contribution of `item` from window segment `segment` alone
    /// (the popcount of the item's chunk in that segment; `0` when the item
    /// has no chunk there or the index is out of range).
    pub fn segment_support(&self, segment: usize, item: usize) -> Support {
        self.segments
            .get(segment)
            .and_then(|seg| seg.chunk(item))
            .map_or(0, |chunk| chunk.count_ones())
    }

    /// Heap bytes of the segment data reachable from this snapshot.  Shared
    /// with the live store (and with other snapshots of overlapping epochs),
    /// not owned exclusively.
    pub fn heap_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.heap_bytes()).sum()
    }

    /// The read surface over the frozen epoch: the same [`WindowView`] API
    /// every miner consumes, with each row a chunk cursor over the
    /// snapshot's segments.  `&self` — any number of views (and threads) can
    /// read one snapshot concurrently.
    pub fn view(&self) -> WindowView<'_> {
        let mut rows = Vec::with_capacity(self.num_items);
        for idx in 0..self.num_items {
            let parts = self
                .segments
                .iter()
                .map(|seg| (seg.cols(), seg.chunk(idx)))
                .collect();
            rows.push(MixedRow::Chunked(ChunkedRow::from_parts(parts)));
        }
        WindowView::new_mixed(rows, &self.supports, self.num_cols)
    }
}

// A snapshot's whole point is crossing threads; regress loudly if a future
// field breaks that.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EpochSnapshot>();
};

#[cfg(test)]
mod tests {
    use crate::{DsMatrix, DsMatrixConfig};
    use fsm_storage::StorageBackend;
    use fsm_stream::WindowConfig;
    use fsm_types::{Batch, EdgeId, Transaction};

    fn batch(id: u64, rows: &[&[u32]]) -> Batch {
        Batch::from_transactions(
            id,
            rows.iter()
                .map(|r| Transaction::from_raw(r.iter().copied()))
                .collect(),
        )
    }

    fn paper_batches() -> Vec<Batch> {
        vec![
            batch(0, &[&[2, 3, 5], &[0, 4, 5], &[0, 2, 5]]),
            batch(1, &[&[0, 2, 3, 5], &[0, 3, 4, 5], &[0, 1, 2]]),
            batch(2, &[&[0, 2, 5], &[0, 2, 3, 5], &[1, 2, 3]]),
        ]
    }

    fn matrix(backend: StorageBackend, budget: usize) -> DsMatrix {
        DsMatrix::new(
            DsMatrixConfig::new(WindowConfig::new(2).unwrap(), backend, 6)
                .with_cache_budget(budget),
        )
        .unwrap()
    }

    /// Every bit, every support, and one projection of a view, rendered to
    /// owned data so two views can be compared after their sources diverge.
    fn render(view: &crate::WindowView<'_>) -> (Vec<Vec<bool>>, Vec<u64>, Vec<String>) {
        let bits = (0..view.num_items())
            .map(|i| {
                (0..view.num_transactions())
                    .map(|c| view.get(EdgeId::new(i as u32), c))
                    .collect()
            })
            .collect();
        let supports = view
            .singleton_supports()
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        let projected = view
            .project(EdgeId::new(0))
            .iter()
            .map(|(items, count)| {
                let syms: String = items.iter().map(|e| e.symbol()).collect();
                format!("{syms}:{count}")
            })
            .collect();
        (bits, supports, projected)
    }

    fn backends() -> Vec<(StorageBackend, usize)> {
        vec![
            (StorageBackend::Memory, 0),
            (StorageBackend::DiskTemp, 0),
            (StorageBackend::DiskTemp, usize::MAX),
            (StorageBackend::DiskTemp, 64),
        ]
    }

    #[test]
    fn snapshot_view_matches_the_live_view_at_every_epoch() {
        for (backend, budget) in backends() {
            let mut m = matrix(backend.clone(), budget);
            for b in paper_batches() {
                m.ingest_batch(&b).unwrap();
                let snap = m.snapshot_epoch().unwrap();
                let from_snapshot = render(&snap.view());
                let live = render(&m.view().unwrap());
                assert_eq!(from_snapshot, live, "{backend:?} budget {budget}");
                assert_eq!(snap.num_transactions(), m.num_transactions());
                assert_eq!(snap.batches(), m.num_batches());
                assert_eq!(snap.last_batch_id(), m.last_batch_id());
            }
        }
    }

    #[test]
    fn snapshots_of_one_epoch_are_memoised_and_new_epochs_are_not() {
        let mut m = matrix(StorageBackend::Memory, 0);
        m.ingest_batch(&paper_batches()[0]).unwrap();
        let first = m.snapshot_epoch().unwrap();
        let again = m.snapshot_epoch().unwrap();
        assert!(std::sync::Arc::ptr_eq(&first, &again));
        m.ingest_batch(&paper_batches()[1]).unwrap();
        let next = m.snapshot_epoch().unwrap();
        assert!(!std::sync::Arc::ptr_eq(&first, &next));
        assert_ne!(first.epoch(), next.epoch());
    }

    #[test]
    fn a_held_snapshot_survives_slides_and_budget_changes() {
        for (backend, budget) in backends() {
            let mut m = matrix(backend.clone(), budget);
            let batches = paper_batches();
            m.ingest_batch(&batches[0]).unwrap();
            m.ingest_batch(&batches[1]).unwrap();
            let snap = m.snapshot_epoch().unwrap();
            let frozen = render(&snap.view());

            // The writer keeps going: a slide evicts the snapshot's oldest
            // segment, the cache is re-budgeted twice (the old footgun
            // released every pin here), and a live view is taken.
            m.ingest_batch(&batches[2]).unwrap();
            m.set_cache_budget(64);
            m.set_cache_budget(0);
            let _ = m.view().unwrap();

            assert_eq!(
                render(&snap.view()),
                frozen,
                "{backend:?} budget {budget}: held snapshot must be immutable"
            );

            // And the frozen contents equal an oracle replayed to the same
            // epoch (same batch prefix, stop-the-world read).
            let mut oracle = matrix(backend.clone(), budget);
            oracle.ingest_batch(&batches[0]).unwrap();
            oracle.ingest_batch(&batches[1]).unwrap();
            assert_eq!(oracle.last_batch_id(), snap.last_batch_id());
            assert_eq!(
                render(&oracle.view().unwrap()),
                frozen,
                "{backend:?} budget {budget}: snapshot must equal its epoch's oracle"
            );
        }
    }

    #[test]
    fn segment_attribution_sums_to_window_supports() {
        for (backend, budget) in backends() {
            let mut m = matrix(backend.clone(), budget);
            for b in paper_batches() {
                m.ingest_batch(&b).unwrap();
                let snap = m.snapshot_epoch().unwrap();
                let ranges = snap.segment_col_ranges();
                assert_eq!(ranges.len(), snap.segments().len());
                assert_eq!(ranges.first().map_or(0, |(_, r)| r.start), 0);
                assert_eq!(
                    ranges.last().map_or(0, |(_, r)| r.end),
                    snap.num_transactions(),
                    "{backend:?} budget {budget}: ranges must tile the window"
                );
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].1.end, pair[1].1.start, "ranges must be contiguous");
                }
                for item in 0..snap.num_items() {
                    let total: u64 = (0..snap.segments().len())
                        .map(|s| snap.segment_support(s, item))
                        .sum();
                    assert_eq!(
                        total,
                        snap.singleton_support(item),
                        "{backend:?} budget {budget}: per-segment supports must sum to the frozen support of item {item}"
                    );
                }
                assert_eq!(snap.segment_support(99, 0), 0);
                assert_eq!(snap.singleton_support(usize::MAX), 0);
            }
        }
    }

    #[test]
    fn empty_window_snapshots_are_well_formed() {
        let mut m = matrix(StorageBackend::Memory, 0);
        let snap = m.snapshot_epoch().unwrap();
        assert_eq!(snap.batches(), 0);
        assert_eq!(snap.last_batch_id(), None);
        assert_eq!(snap.view().num_transactions(), 0);
        assert!(snap
            .view()
            .singleton_supports()
            .iter()
            .all(|(_, s)| *s == 0));
    }
}
