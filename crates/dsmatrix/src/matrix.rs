//! DSMatrix implementation.

use std::collections::BTreeMap;

use fsm_storage::{BitVec, CaptureStats, MemoryTracker, SegmentedWindowStore, StorageBackend};
use fsm_stream::{SlideOutcome, SlidingWindow, WindowConfig};
use fsm_types::{Batch, EdgeId, FsmError, Result, Support, Transaction};

use crate::snapshot::{ProjectedRows, RowSnapshot};

/// Construction options for a [`DsMatrix`].
#[derive(Debug, Clone, Default)]
pub struct DsMatrixConfig {
    /// Sliding-window configuration (`w` batches).
    pub window: WindowConfig,
    /// Where the rows are stored.
    pub backend: StorageBackend,
    /// Expected number of domain edges (rows); the matrix grows beyond this
    /// if a later batch introduces new edges.
    pub expected_edges: usize,
}

impl DsMatrixConfig {
    /// Convenience constructor.
    pub fn new(window: WindowConfig, backend: StorageBackend, expected_edges: usize) -> Self {
        Self {
            window,
            backend,
            expected_edges,
        }
    }
}

/// The Data Stream Matrix of the paper (§2.3).
///
/// Rows are stored as per-batch segments in a
/// [`SegmentedWindowStore`]: ingesting a batch appends one segment holding
/// only the rows the batch touches, and a window slide drops the oldest
/// segment whole.  Capture cost is therefore proportional to the entering
/// batch plus the evicted columns — never to the full window — while reads
/// ([`DsMatrix::row`], [`DsMatrix::snapshot`]) materialise flat
/// [`BitVec`] rows identical to the paper's conceptual matrix.
pub struct DsMatrix {
    store: SegmentedWindowStore,
    window: SlidingWindow,
    num_items: usize,
    num_cols: usize,
    tracker: Option<MemoryTracker>,
    /// Reused per-ingest map of row id → bit chunk for the entering batch.
    chunks: BTreeMap<usize, BitVec>,
    /// Recycled chunk buffers for the map above.
    spare_chunks: Vec<BitVec>,
}

impl DsMatrix {
    /// Memory-accounting category used when a tracker is attached.
    pub const TRACK_CATEGORY: &'static str = "dsmatrix-resident";

    /// Creates an empty matrix.
    pub fn new(config: DsMatrixConfig) -> Result<Self> {
        Ok(Self {
            store: SegmentedWindowStore::open(config.backend)?,
            window: SlidingWindow::new(config.window),
            num_items: config.expected_edges,
            num_cols: 0,
            tracker: None,
            chunks: BTreeMap::new(),
            spare_chunks: Vec::new(),
        })
    }

    /// Creates a matrix with the default configuration (disk-backed, `w = 5`).
    pub fn with_window(window: WindowConfig) -> Result<Self> {
        Self::new(DsMatrixConfig {
            window,
            ..DsMatrixConfig::default()
        })
    }

    /// Attaches a memory tracker; the matrix reports the bytes it holds
    /// resident (which, for the disk backend, excludes the row payloads).
    pub fn set_tracker(&mut self, tracker: MemoryTracker) {
        self.tracker = Some(tracker);
        self.report_memory();
    }

    /// Number of rows (domain edges) currently represented.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of columns (window transactions), `|T|` in the paper.
    pub fn num_transactions(&self) -> usize {
        self.num_cols
    }

    /// Batch boundaries as cumulative column counts (Example 1's
    /// "Boundaries: Cols 3 & 6").
    pub fn boundaries(&self) -> Vec<usize> {
        self.window.boundaries()
    }

    /// Number of batches currently inside the window.
    pub fn num_batches(&self) -> usize {
        self.window.num_batches()
    }

    /// Returns `true` if no batch has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Returns `true` if the rows are spilled to disk rather than resident.
    pub fn is_disk_backed(&self) -> bool {
        !self.store.is_memory_resident()
    }

    /// Ingests one batch, sliding the window if it is already full.
    ///
    /// This is the incremental capture step: the entering batch becomes one
    /// new row segment (touching only the rows that actually occur in the
    /// batch), and — when the window slides — the evicted batch's segment is
    /// dropped whole.  Unevicted row prefixes are never rewritten; the
    /// [`DsMatrix::capture_stats`] counters prove it.
    pub fn ingest_batch(&mut self, batch: &Batch) -> Result<SlideOutcome> {
        let outcome = self.window.push(batch.id, batch.len());
        if let Some((_, cols)) = outcome.evicted {
            let dropped = self.store.pop_segment()?;
            debug_assert_eq!(dropped, cols, "window bookkeeping must match the store");
            self.num_cols -= dropped;
        }

        // Grow the domain if the batch mentions edges beyond the current rows.
        let max_edge = batch
            .iter()
            .flat_map(|t| t.iter())
            .map(|e| e.index() + 1)
            .max()
            .unwrap_or(0);
        self.num_items = self.num_items.max(max_edge);

        // One bit chunk per row the batch touches; rows absent from the batch
        // cost nothing and read back as zeros.
        debug_assert!(self.chunks.is_empty());
        for (col, transaction) in batch.iter().enumerate() {
            for edge in transaction.iter() {
                let chunk = self.chunks.entry(edge.index()).or_insert_with(|| {
                    let mut chunk = self.spare_chunks.pop().unwrap_or_default();
                    chunk.resize(0);
                    chunk.resize(batch.len());
                    chunk
                });
                chunk.set(col, true);
            }
        }
        self.store
            .push_segment(batch.len(), self.chunks.iter().map(|(id, c)| (*id, c)))?;
        while let Some((_, chunk)) = self.chunks.pop_first() {
            self.spare_chunks.push(chunk);
        }
        self.num_cols += batch.len();
        debug_assert_eq!(self.num_cols, self.store.num_cols());
        self.report_memory();
        Ok(outcome)
    }

    /// Cumulative capture-cost counters (words/rows written, segments
    /// appended and dropped).  Differencing `words_written` across two
    /// [`DsMatrix::ingest_batch`] calls yields the exact write cost of one
    /// slide.
    pub fn capture_stats(&self) -> CaptureStats {
        self.store.stats()
    }

    /// Loads the bit-vector row of `item` (all zeros if the edge has never
    /// occurred), assembled from the live per-batch segments.
    pub fn row(&mut self, item: EdgeId) -> Result<BitVec> {
        let mut row = BitVec::new();
        if item.index() < self.num_items {
            self.store.assemble_row(item.index(), &mut row)?;
        }
        row.resize(self.num_cols);
        Ok(row)
    }

    /// Materialises every live-window row into an immutable [`RowSnapshot`]
    /// that can be read concurrently (the parallel horizontal miners project
    /// from a snapshot so workers never contend on `&mut self`).
    pub fn snapshot(&mut self) -> Result<RowSnapshot> {
        let mut rows = Vec::with_capacity(self.num_items);
        for idx in 0..self.num_items {
            let mut row = BitVec::new();
            self.store.assemble_row(idx, &mut row)?;
            row.resize(self.num_cols);
            rows.push(row);
        }
        Ok(RowSnapshot::new(rows, self.num_cols))
    }

    /// Support of a single edge: the row sum (number of `1`s) of its row.
    pub fn support(&mut self, item: EdgeId) -> Result<Support> {
        Ok(self.row(item)?.count_ones())
    }

    /// Supports of every edge in canonical order — the first step of both
    /// vertical algorithms (§3.4 and §4).
    pub fn singleton_supports(&mut self) -> Result<Vec<(EdgeId, Support)>> {
        let mut out = Vec::with_capacity(self.num_items);
        for idx in 0..self.num_items {
            let item = EdgeId::new(idx as u32);
            out.push((item, self.support(item)?));
        }
        Ok(out)
    }

    /// Reconstructs one window transaction (one column read downwards).
    pub fn column(&mut self, column: usize) -> Result<Transaction> {
        if column >= self.num_cols {
            return Err(FsmError::corrupt(format!(
                "column {column} out of range ({} transactions in window)",
                self.num_cols
            )));
        }
        let mut edges = Vec::new();
        let mut row = BitVec::new();
        for idx in 0..self.num_items {
            self.store.assemble_row(idx, &mut row)?;
            if row.get(column) {
                edges.push(EdgeId::new(idx as u32));
            }
        }
        Ok(Transaction::from_edges(edges))
    }

    /// Builds the `{pivot}`-projected database: for every column whose pivot
    /// bit is `1`, the items strictly *after* the pivot in canonical order
    /// ("extract its column downwards", Example 2).
    ///
    /// The result is a weighted transaction list ready for FP-tree
    /// construction; identical suffixes are merged to keep it small.
    ///
    /// Only the pivot row and the rows after it are assembled, so a single
    /// projection never materialises the whole window.  Callers projecting
    /// every pivot in a loop should [`DsMatrix::snapshot`] once and use
    /// [`RowSnapshot::project_into`] instead — that is what the parallel
    /// horizontal miners do.
    pub fn project(&mut self, pivot: EdgeId) -> Result<ProjectedRows> {
        let pivot_row = self.row(pivot)?;
        let columns: Vec<usize> = pivot_row.iter_ones().collect();
        if columns.is_empty() {
            return Ok(Vec::new());
        }
        // suffixes[i] collects the items of window column columns[i].
        let mut suffixes: Vec<Vec<EdgeId>> = vec![Vec::new(); columns.len()];
        let mut row = BitVec::new();
        for idx in (pivot.index() + 1)..self.num_items {
            self.store.assemble_row(idx, &mut row)?;
            for (slot, &col) in columns.iter().enumerate() {
                if row.get(col) {
                    suffixes[slot].push(EdgeId::new(idx as u32));
                }
            }
        }
        // Merge identical suffixes into weighted entries.
        suffixes.sort();
        let mut merged: ProjectedRows = Vec::new();
        for suffix in suffixes {
            if suffix.is_empty() {
                continue;
            }
            match merged.last_mut() {
                Some((prev, count)) if *prev == suffix => *count += 1,
                _ => merged.push((suffix, 1)),
            }
        }
        Ok(merged)
    }

    /// Bytes resident in main memory: window bookkeeping, the reused chunk
    /// buffers, plus — for the memory backend — the segment payloads.
    pub fn resident_bytes(&self) -> usize {
        let bookkeeping = self.window.num_batches() * std::mem::size_of::<(u64, usize)>();
        let scratch: usize = self.spare_chunks.iter().map(BitVec::heap_bytes).sum();
        bookkeeping + scratch + self.store.resident_bytes()
    }

    /// Bytes written to disk by the live segments (zero for the memory
    /// backend).
    pub fn on_disk_bytes(&self) -> u64 {
        self.store.on_disk_bytes()
    }

    fn report_memory(&self) {
        if let Some(tracker) = &self.tracker {
            tracker.set(Self::TRACK_CATEGORY, self.resident_bytes() as u64);
        }
    }
}

impl std::fmt::Debug for DsMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsMatrix")
            .field("items", &self.num_items)
            .field("transactions", &self.num_cols)
            .field("batches", &self.window.num_batches())
            .field("disk_backed", &self.is_disk_backed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_types::Transaction;

    /// The nine graphs of the paper's Figure 1, as transactions over the edge
    /// symbols a..f, grouped into batches of three.
    fn paper_batches() -> Vec<Batch> {
        let e = |raw: &[u32]| Transaction::from_raw(raw.iter().copied());
        vec![
            Batch::from_transactions(0, vec![e(&[2, 3, 5]), e(&[0, 4, 5]), e(&[0, 2, 5])]),
            Batch::from_transactions(1, vec![e(&[0, 2, 3, 5]), e(&[0, 3, 4, 5]), e(&[0, 1, 2])]),
            Batch::from_transactions(2, vec![e(&[0, 2, 5]), e(&[0, 2, 3, 5]), e(&[1, 2, 3])]),
        ]
    }

    fn matrix(backend: StorageBackend) -> DsMatrix {
        DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(2).unwrap(),
            backend,
            6,
        ))
        .unwrap()
    }

    fn row_string(m: &mut DsMatrix, item: u32) -> String {
        let row = m.row(EdgeId::new(item)).unwrap();
        (0..row.len())
            .map(|i| if row.get(i) { '1' } else { '0' })
            .collect()
    }

    #[test]
    fn matches_paper_example_1_after_two_batches() {
        for backend in [StorageBackend::Memory, StorageBackend::DiskTemp] {
            let mut m = matrix(backend);
            let batches = paper_batches();
            m.ingest_batch(&batches[0]).unwrap();
            m.ingest_batch(&batches[1]).unwrap();

            assert_eq!(m.num_transactions(), 6);
            assert_eq!(m.boundaries(), vec![3, 6]);
            // DSMatrix capturing E1–E6 (Example 1).
            assert_eq!(row_string(&mut m, 0), "011111", "row a");
            assert_eq!(row_string(&mut m, 1), "000001", "row b");
            assert_eq!(row_string(&mut m, 2), "101101", "row c");
            assert_eq!(row_string(&mut m, 3), "100110", "row d");
            assert_eq!(row_string(&mut m, 4), "010010", "row e");
            assert_eq!(row_string(&mut m, 5), "111110", "row f");
        }
    }

    #[test]
    fn matches_paper_example_1_after_window_slide() {
        for backend in [StorageBackend::Memory, StorageBackend::DiskTemp] {
            let mut m = matrix(backend);
            for batch in paper_batches() {
                m.ingest_batch(&batch).unwrap();
            }
            assert_eq!(m.num_transactions(), 6);
            assert_eq!(m.boundaries(), vec![3, 6]);
            // DSMatrix capturing E4–E9 (Example 1 after the slide).
            assert_eq!(row_string(&mut m, 0), "111110", "row a");
            assert_eq!(row_string(&mut m, 1), "001001", "row b");
            assert_eq!(row_string(&mut m, 2), "101111", "row c");
            assert_eq!(row_string(&mut m, 3), "110011", "row d");
            assert_eq!(row_string(&mut m, 4), "010000", "row e");
            assert_eq!(row_string(&mut m, 5), "110110", "row f");
        }
    }

    #[test]
    fn singleton_supports_match_example_5() {
        let mut m = matrix(StorageBackend::Memory);
        for batch in paper_batches() {
            m.ingest_batch(&batch).unwrap();
        }
        let supports = m.singleton_supports().unwrap();
        let expected = [5u64, 2, 5, 4, 1, 4]; // a, b, c, d, e, f
        for (idx, &want) in expected.iter().enumerate() {
            assert_eq!(supports[idx].1, want, "support of row {idx}");
        }
    }

    #[test]
    fn projection_matches_example_2() {
        let mut m = matrix(StorageBackend::Memory);
        for batch in paper_batches() {
            m.ingest_batch(&batch).unwrap();
        }
        // {a}-projected database: {c,d,f}, {d,e,f}, {b,c}, {c,f}, {c,d,f}
        // (with the two identical suffixes merged).
        let db = m.project(EdgeId::new(0)).unwrap();
        let total: Support = db.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5);
        let as_strings: Vec<(String, Support)> = db
            .iter()
            .map(|(items, c)| (items.iter().map(|e| e.symbol()).collect::<String>(), *c))
            .collect();
        assert!(as_strings.contains(&("cdf".to_string(), 2)));
        assert!(as_strings.contains(&("def".to_string(), 1)));
        assert!(as_strings.contains(&("bc".to_string(), 1)));
        assert!(as_strings.contains(&("cf".to_string(), 1)));

        // {b}-projected database: {c} and {c,d} (Example 2).
        let db_b = m.project(EdgeId::new(1)).unwrap();
        let as_strings: Vec<(String, Support)> = db_b
            .iter()
            .map(|(items, c)| (items.iter().map(|e| e.symbol()).collect::<String>(), *c))
            .collect();
        assert_eq!(as_strings.len(), 2);
        assert!(as_strings.contains(&("c".to_string(), 1)));
        assert!(as_strings.contains(&("cd".to_string(), 1)));

        // Projecting the last edge yields an empty database.
        assert!(m.project(EdgeId::new(5)).unwrap().is_empty());
    }

    #[test]
    fn column_reconstructs_transactions() {
        let mut m = matrix(StorageBackend::Memory);
        for batch in paper_batches() {
            m.ingest_batch(&batch).unwrap();
        }
        // After the slide, column 0 is E4 = {a,c,d,f}.
        assert_eq!(m.column(0).unwrap().to_string(), "{a,c,d,f}");
        // Column 5 is E9 = {b,c,d}.
        assert_eq!(m.column(5).unwrap().to_string(), "{b,c,d}");
        assert!(m.column(6).is_err());
    }

    #[test]
    fn new_edges_in_later_batches_get_padded_rows() {
        let mut m = DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(3).unwrap(),
            StorageBackend::Memory,
            0,
        ))
        .unwrap();
        m.ingest_batch(&Batch::from_transactions(
            0,
            vec![Transaction::from_raw([0])],
        ))
        .unwrap();
        m.ingest_batch(&Batch::from_transactions(
            1,
            vec![Transaction::from_raw([2])],
        ))
        .unwrap();
        assert_eq!(m.num_items(), 3);
        assert_eq!(row_string(&mut m, 2), "01", "row created late is padded");
        assert_eq!(row_string(&mut m, 1), "00", "never-seen edge is all zeros");
        assert_eq!(m.support(EdgeId::new(0)).unwrap(), 1);
    }

    #[test]
    fn unknown_rows_read_as_zero() {
        let mut m = matrix(StorageBackend::Memory);
        m.ingest_batch(&paper_batches()[0]).unwrap();
        assert_eq!(m.support(EdgeId::new(40)).unwrap(), 0);
        assert_eq!(m.row(EdgeId::new(40)).unwrap().len(), 3);
    }

    #[test]
    fn disk_backend_keeps_rows_off_heap() {
        let mut m = matrix(StorageBackend::DiskTemp);
        for batch in paper_batches() {
            m.ingest_batch(&batch).unwrap();
        }
        assert!(m.is_disk_backed());
        assert!(m.on_disk_bytes() > 0);
        assert!(
            m.resident_bytes() < 4096,
            "resident footprint is only bookkeeping, got {}",
            m.resident_bytes()
        );
        // An in-memory matrix of the same contents keeps its payload resident.
        let mut mem = matrix(StorageBackend::Memory);
        for batch in paper_batches() {
            mem.ingest_batch(&batch).unwrap();
        }
        assert!(!mem.is_disk_backed());
        assert_eq!(mem.on_disk_bytes(), 0);
        assert!(mem.resident_bytes() > 0);
    }

    #[test]
    fn tracker_reports_resident_bytes() {
        let tracker = MemoryTracker::new();
        let mut m = matrix(StorageBackend::Memory);
        m.set_tracker(tracker.clone());
        for batch in paper_batches() {
            m.ingest_batch(&batch).unwrap();
        }
        assert!(tracker.peak_of(DsMatrix::TRACK_CATEGORY) > 0);
    }

    #[test]
    fn empty_matrix_reports_sane_values() {
        let m = matrix(StorageBackend::Memory);
        assert!(m.is_empty());
        assert_eq!(m.num_transactions(), 0);
        assert!(m.boundaries().is_empty());
        assert_eq!(m.num_batches(), 0);
    }
}
